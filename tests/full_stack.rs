//! Cross-crate integration: every kernel, every architecture, verified
//! numerics and the paper's qualitative performance ordering.

use revel_core::compiler::BuildCfg;
use revel_core::engine;
use revel_core::Bench;

fn run_all(b: &Bench) -> (u64, u64, u64) {
    let c = b.compare().expect("bench runs");
    (c.revel.cycles, c.systolic_cycles, c.dataflow_cycles)
}

/// Comparison cycles for every bench, fanned across the engine's job pool
/// (and, after the first test that needs them, served from its run cache).
fn run_suite(benches: &[Bench]) -> Vec<(Bench, (u64, u64, u64))> {
    engine::par_map(benches, |b| (*b, run_all(b)))
}

#[test]
fn all_kernels_verify_on_all_architectures_small() {
    for (b, (r, s, d)) in run_suite(&Bench::suite_small()) {
        assert!(r > 0 && s > 0 && d > 0, "{}", b.name());
    }
}

#[test]
fn revel_never_loses_to_the_baselines() {
    for (b, (r, s, d)) in run_suite(&Bench::suite_large()) {
        assert!(r <= s, "{}: revel {r} vs systolic {s}", b.name());
        assert!(r <= d, "{}: revel {r} vs dataflow {d}", b.name());
    }
}

#[test]
fn inductive_kernels_gain_most_from_the_hybrid_fabric() {
    // The factorizations (inductive) should beat the systolic baseline by
    // a large factor; the regular kernels (GEMM/FIR/FFT) by construction
    // run identically on both (dedicated PEs suffice) — exactly the
    // paper's taxonomy argument.
    for (b, (r, s, _)) in run_suite(&Bench::suite_large()) {
        let gain = s as f64 / r as f64;
        match b.name() {
            "cholesky" | "qr" => {
                assert!(gain > 2.0, "{} gain {gain:.2}", b.name())
            }
            "solver" | "svd" => assert!(gain > 1.4, "{} gain {gain:.2}", b.name()),
            _ => assert!(gain >= 0.99, "{} gain {gain:.2}", b.name()),
        }
    }
}

#[test]
fn dataflow_baseline_pays_instruction_overhead_everywhere() {
    for (b, (r, _, d)) in run_suite(&Bench::suite_large()) {
        assert!(d as f64 > 1.2 * r as f64, "{}: dataflow {d} vs revel {r}", b.name());
    }
}

#[test]
fn revel_beats_the_dsp_model_on_every_kernel() {
    for b in Bench::suite_large() {
        let c = b.compare().expect("runs");
        assert!(c.speedup_vs_dsp() > 1.0, "{}: {:.2}x", b.name(), c.speedup_vs_dsp());
    }
}

#[test]
fn batch8_throughput_scales() {
    // Running 8 independent instances on 8 lanes should take well under
    // 8x a single instance (vector-stream control amortizes in space).
    for b in [Bench::Cholesky { n: 12 }, Bench::Solver { n: 12 }, Bench::Fft { n: 64 }] {
        let one = b.run(&BuildCfg::revel(1)).expect("1 lane");
        one.assert_ok(b.name());
        let eight = b.run(&BuildCfg::revel(8)).expect("8 lanes");
        eight.assert_ok(b.name());
        assert!(
            (eight.cycles as f64) < 3.0 * one.cycles as f64,
            "{}: batch8 {} vs single {}",
            b.name(),
            eight.cycles,
            one.cycles
        );
    }
}

#[test]
fn ablation_full_revel_is_strictly_better_than_base_on_inductive_kernels() {
    use revel_core::compiler::AblationStep;
    for b in [Bench::Cholesky { n: 24 }, Bench::Qr { n: 24 }, Bench::Solver { n: 24 }] {
        let base = b.run(&BuildCfg::ablation(AblationStep::Systolic, b.lanes())).expect("base");
        base.assert_ok(b.name());
        let full =
            b.run(&BuildCfg::ablation(AblationStep::StreamPredication, b.lanes())).expect("full");
        full.assert_ok(b.name());
        // The solver is recurrence-latency-bound, so its gain is smaller
        // than the throughput-bound factorizations'.
        let threshold = if b.name() == "solver" { 1.5 } else { 2.0 };
        assert!(
            (full.cycles as f64) * threshold <= base.cycles as f64,
            "{}: full {} vs base {}",
            b.name(),
            full.cycles,
            base.cycles
        );
    }
}
