//! The binary encoding must round-trip every real kernel program: the
//! REVEL builds of all seven kernels are encodable command streams.

use revel_core::compiler::BuildCfg;
use revel_core::isa::{decode_program, encode_program};
use revel_core::sim::ControlStep;
use revel_core::Bench;

#[test]
fn all_revel_kernel_programs_roundtrip() {
    for b in Bench::suite_small() {
        let built = b.workload().build(&BuildCfg::revel(b.lanes()));
        let commands: Vec<_> = built
            .program
            .control
            .iter()
            .filter_map(|s| match s {
                ControlStep::Command(vc) => Some(vc.clone()),
                ControlStep::Dyn(_) | ControlStep::Host(_) => None,
            })
            .collect();
        assert!(!commands.is_empty(), "{}", b.name());
        let words = encode_program(&commands);
        let decoded = decode_program(&words).expect("decodes");
        assert_eq!(decoded.len(), commands.len(), "{}", b.name());
        for (d, c) in decoded.iter().zip(&commands) {
            assert_eq!(d.cmd, c.cmd, "{}", b.name());
            assert_eq!(d.lanes, c.lanes);
        }
    }
}

#[test]
fn revel_programs_have_no_host_fallbacks() {
    // The hybrid fabric runs everything; host steps only exist on the
    // systolic baseline.
    for b in Bench::suite_small() {
        let built = b.workload().build(&BuildCfg::revel(b.lanes()));
        let hosts =
            built.program.control.iter().filter(|s| matches!(s, ControlStep::Host(_))).count();
        assert_eq!(hosts, 0, "{} uses the host in a REVEL build", b.name());
    }
}

#[test]
fn command_counts_show_control_amortization() {
    // Inductive streams compress the control stream: the systolic
    // baseline's program has far more commands than REVEL's.
    let b = Bench::Cholesky { n: 24 };
    let revel = b.workload().build(&BuildCfg::revel(1)).program.num_commands();
    let baseline = b.workload().build(&BuildCfg::systolic_baseline(1)).program.num_commands();
    assert!(baseline as f64 > 2.0 * revel as f64, "baseline {baseline} vs revel {revel} commands");
}
