//! Cross-layer lint gate for the whole evaluation suite: every paper
//! workload, built for every architecture, must come out of `revel-verify`
//! with zero findings — not just zero errors. A warning on a suite kernel
//! is either a kernel bug or a lint false positive; both deserve a red
//! test.

use revel_core::compiler::{AblationStep, BuildCfg};
use revel_core::engine;
use revel_core::verify::{program_lints, Context, Verifier};
use revel_core::Bench;

fn assert_clean(bench: &Bench, cfg: &BuildCfg, label: &str) {
    let diags = bench.lint(cfg);
    assert!(
        diags.is_empty(),
        "{} ({label}) has lint findings:\n{}",
        bench.name(),
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}

/// Fans one lint per bench across the engine's job pool (a worker panic —
/// i.e. a lint finding — still fails the test at scope join).
fn assert_suite_clean(benches: &[Bench], cfg_of: impl Fn(&Bench) -> BuildCfg + Sync, label: &str) {
    engine::par_map(benches, |b| assert_clean(b, &cfg_of(b), label));
}

#[test]
fn suite_lints_clean_on_revel() {
    assert_suite_clean(&Bench::suite_small(), |b| BuildCfg::revel(b.lanes()), "revel");
}

#[test]
fn suite_lints_clean_on_systolic_baseline() {
    assert_suite_clean(
        &Bench::suite_small(),
        |b| BuildCfg::systolic_baseline(b.lanes()),
        "systolic",
    );
}

#[test]
fn suite_lints_clean_on_dataflow_baseline() {
    assert_suite_clean(
        &Bench::suite_small(),
        |b| BuildCfg::dataflow_baseline(b.lanes()),
        "dataflow",
    );
}

#[test]
fn suite_lints_clean_on_ablation_ladder() {
    for step in AblationStep::LADDER {
        assert_suite_clean(
            &Bench::suite_small(),
            |b| BuildCfg::ablation(step, b.lanes()),
            step.label(),
        );
    }
}

#[test]
fn large_suite_lints_clean_on_revel() {
    assert_suite_clean(&Bench::suite_large(), |b| BuildCfg::revel(b.lanes()), "revel");
}

/// Property over the whole suite: every lint individually reports nothing
/// on every built kernel, and the lint context agrees with the build
/// configuration about lane count.
#[test]
fn per_lint_property_over_suite() {
    for b in Bench::suite_small() {
        let cfg = BuildCfg::revel(b.lanes());
        let built = b.workload().build(&cfg);
        let machine_cfg = cfg.machine_config();
        let ctx = Context::new(&built.program, &machine_cfg);
        assert_eq!(ctx.lanes.len(), machine_cfg.num_lanes, "{}", b.name());
        for lint in program_lints() {
            let mut out = Vec::new();
            lint.check(&ctx, &mut out);
            assert!(out.is_empty(), "{} / {}: {out:#?}", b.name(), lint.name());
        }
    }
}

/// Mutation check at the suite level: breaking a real workload program in
/// a representative way is caught by the verifier (the suite isn't lint-
/// clean merely because the lints are vacuous).
#[test]
fn mutated_suite_program_is_flagged() {
    let b = Bench::Solver { n: 12 };
    let cfg = BuildCfg::revel(b.lanes());
    let mut built = b.workload().build(&cfg);
    // Drop every store: all out-ports become undrained (V003 at minimum).
    built.program.control.retain(|step| {
        !matches!(
            step,
            revel_core::sim::ControlStep::Command(vc)
                if matches!(vc.cmd, revel_core::isa::StreamCommand::Store { .. })
        )
    });
    let diags = Verifier::program_only().verify(&built.program, &cfg.machine_config());
    assert!(!diags.is_empty(), "gutted solver program still lints clean");
}
