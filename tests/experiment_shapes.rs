//! The experiment generators must reproduce the *shapes* of the paper's
//! evaluation: who wins, by roughly what factor, where the crossovers are.

use revel_core::{experiments as ex, Bench};

fn parse_ratio(s: &str) -> f64 {
    s.trim_end_matches('x').parse().unwrap()
}

fn parse_pct(s: &str) -> f64 {
    s.trim_end_matches('%').parse().unwrap()
}

#[test]
fn fig01_platforms_far_below_ideal_on_factorizations() {
    let t = ex::fig01_percent_ideal();
    // rows: svd, qr, cholesky, solver, fft, gemm, fir
    for row in &t.rows {
        let dsp = parse_pct(&row[3]);
        assert!(dsp < 100.0, "{row:?}");
        if ["svd", "cholesky", "fft"].contains(&row[0].as_str()) {
            assert!(dsp < 25.0, "inductive kernel near peak on DSP: {row:?}");
        }
    }
}

#[test]
fn fig06_dependences_are_kilo_instruction_scale() {
    let t = ex::fig06_dep_distance();
    for row in &t.rows {
        let p_10k = parse_pct(&row[6]);
        assert!(p_10k > 99.0, "{row:?}");
    }
}

#[test]
fn fig19_geomeans_match_paper_ordering() {
    let comps = ex::run_comparisons(&Bench::suite_large());
    let t = ex::fig19_batch1(&comps);
    for row in &t.rows {
        let revel = parse_ratio(&row[2]);
        assert!(revel > 1.0, "REVEL must beat the DSP: {row:?}");
        let systolic = parse_ratio(&row[3]);
        let dataflow = parse_ratio(&row[4]);
        assert!(revel >= systolic - 1e-9, "{row:?}");
        assert!(revel > dataflow, "{row:?}");
    }
}

#[test]
fn fig23_breakdown_sums_to_one() {
    let comps = ex::run_comparisons(&[Bench::Cholesky { n: 16 }, Bench::Fft { n: 64 }]);
    let t = ex::fig23_bottlenecks(&comps);
    for row in &t.rows {
        let total: f64 = row[2..].iter().map(|c| parse_pct(c)).sum();
        assert!((total - 100.0).abs() < 1.0, "breakdown sums to {total}: {row:?}");
    }
}

#[test]
fn fig23_fft_shows_barrier_or_drain_overhead() {
    let comps = ex::run_comparisons(&[Bench::Fft { n: 64 }]);
    let t = ex::fig23_bottlenecks(&comps);
    // columns: kernel, params, multi-issue, issue, temporal, drain,
    // scr-b/w, scr-barrier, stream-dpd, ctrl-ovhd, idle
    let row = &t.rows[0];
    let drain = parse_pct(&row[5]) + parse_pct(&row[7]);
    assert!(drain > 1.0, "small FFT should show drain/barrier cycles: {row:?}");
}

#[test]
fn tab07_power_overhead_near_2x() {
    let comps = ex::run_comparisons(&Bench::suite_large());
    let t = ex::tab07_asic_overhead(&comps);
    for row in &t.rows {
        let p = parse_ratio(&row[1]);
        assert!((1.0..6.0).contains(&p), "power overhead out of family: {row:?}");
    }
}

#[test]
fn fig22_ladder_never_regresses_at_the_top() {
    let t = ex::fig22_ablation();
    for row in &t.rows {
        let full = parse_ratio(&row[4]);
        assert!(full >= 0.95, "full REVEL slower than systolic base: {row:?}");
        if ["cholesky", "qr", "solver", "svd"].contains(&row[0].as_str()) {
            assert!(full > 1.3, "inductive kernel should gain: {row:?}");
        }
    }
}
