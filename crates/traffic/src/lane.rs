//! Per-connection lane state machines.
//!
//! A [`Lane`] owns one connection's slice of a phase's arrival plan and
//! decides, at every instant, whether to send, wait for a reply, sleep
//! until the next arrival, or stop. It is pure simulated-time logic: the
//! executor (the `revel_client --scenario` runner, or a test harness with
//! a fake clock) performs the I/O and feeds observations back in.
//!
//! Two properties live here and nowhere else:
//!
//! * **Open-loop pacing / coordinated-omission correctness.** Every
//!   request has an *intended* send time on the arrival grid. Latency is
//!   measured from that intended time — a stalled server cannot shrink
//!   offered load or flatter the tail. Sends that slip more than
//!   [`LaneCfg::late_threshold_us`] behind the grid increment
//!   [`Lane::late_sends`], so a saturated generator is visible in the
//!   report instead of silently lying.
//! * **Deterministic-jitter retries.** Retryable failures reschedule with
//!   capped exponential backoff jittered into `[raw/2, raw]` by the lane's
//!   seeded RNG, with any server `retry_after_ms` hint as a floor — the
//!   same policy as `revel_serve::client`, reproduced bit-for-bit from the
//!   lane seed.
//!
//! Replies correlate FIFO: the serving protocol answers each connection's
//! requests strictly in arrival order (DESIGN.md §11), so the oldest
//! in-flight entry always matches the next reply on the wire.

use revel_isa::Rng;
use std::collections::VecDeque;

/// Lane configuration, shared by every lane of a scenario run.
#[derive(Debug, Clone, Copy)]
pub struct LaneCfg {
    /// Maximum requests outstanding on the connection at once.
    pub max_inflight: usize,
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff base for retry attempt 1, milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// A send this many µs behind its intended time counts as late.
    pub late_threshold_us: u64,
}

impl Default for LaneCfg {
    fn default() -> Self {
        LaneCfg {
            max_inflight: 1,
            max_attempts: 1,
            backoff_base_ms: 5,
            backoff_cap_ms: 200,
            late_threshold_us: 1_000,
        }
    }
}

/// What the executor should do next, as decided by [`Lane::next_action`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Write request `slot` (attempt `attempt`) to the connection now.
    /// The lane has already moved the slot in-flight; on a write failure
    /// call [`Lane::on_transport_error`].
    Send {
        /// Index into the lane's planned-request slice.
        slot: usize,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// Block on the connection for a reply. `wait_until_us` bounds the
    /// wait when a future send is scheduled; `None` means no send is
    /// pending, wait as long as it takes.
    Recv {
        /// Absolute µs timestamp of the next scheduled send, if any.
        wait_until_us: Option<u64>,
    },
    /// Nothing in flight and nothing due: sleep until this µs timestamp.
    Sleep {
        /// Absolute µs timestamp of the next scheduled send.
        until_us: u64,
    },
    /// Every planned request has completed; the lane is finished.
    Done,
}

/// Terminal classification of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A successful (non-error) response.
    Ok,
    /// The server reported a deadline expiry.
    TimedOut,
    /// Admission-rejected (queue full) and retries exhausted.
    Overloaded,
    /// Any other failure: protocol error, injected fault that out-lived
    /// retries, or a dead connection.
    Error,
}

/// How the executor classified a reply frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyClass {
    /// Terminal reply — record the outcome.
    Final(Outcome),
    /// Retryable failure (overloaded / injected fault / shutting down /
    /// fleet unavailable), with the server's optional backoff hint.
    Retryable {
        /// Outcome to record if retries are exhausted.
        outcome: Outcome,
        /// Server `retry_after_ms` hint, used as a backoff floor.
        hint_ms: Option<u64>,
    },
}

/// The full accounting record of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Index into the lane's planned-request slice.
    pub slot: usize,
    /// Intended send time from the arrival grid (absolute µs).
    pub intended_us: u64,
    /// When attempt 1 actually hit the wire (absolute µs).
    pub first_send_us: u64,
    /// When the terminal reply (or give-up) landed (absolute µs).
    pub done_us: u64,
    /// Attempts consumed (≥ 1).
    pub attempts: u32,
    /// Terminal classification.
    pub outcome: Outcome,
}

impl Completion {
    /// Coordinated-omission-correct latency: terminal reply minus
    /// *intended* send time, never minus the (possibly late) actual send.
    pub fn latency_us(&self) -> u64 {
        self.done_us.saturating_sub(self.intended_us)
    }
}

#[derive(Debug, Clone, Copy)]
struct Flight {
    slot: usize,
    intended_us: u64,
    first_send_us: u64,
    attempts: u32,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    retry_at_us: u64,
    flight: Flight,
}

/// One connection's state machine over a phase plan. Drive it with
/// [`next_action`](Lane::next_action) / [`on_sent`](Lane::on_sent) /
/// [`on_reply`](Lane::on_reply) / [`on_transport_error`](Lane::on_transport_error).
#[derive(Debug)]
pub struct Lane {
    cfg: LaneCfg,
    rng: Rng,
    /// Intended send times (absolute µs), sorted ascending.
    planned: Vec<u64>,
    next_new: usize,
    inflight: VecDeque<Flight>,
    /// Retry queue, kept sorted by `retry_at_us` (ties: insertion order).
    pending: Vec<Pending>,
    /// In between `next_action` handing out a `Send` and the executor
    /// confirming with `on_sent`, the flight lives here.
    sending: Option<Flight>,
    completions: Vec<Completion>,
    late_sends: u64,
    retries: u64,
}

impl Lane {
    /// A lane over `planned` intended send times (absolute µs, ascending),
    /// with its own decorrelated RNG stream for retry jitter.
    pub fn new(cfg: LaneCfg, seed: u64, planned: Vec<u64>) -> Self {
        debug_assert!(planned.windows(2).all(|w| w[0] <= w[1]));
        Lane {
            cfg,
            rng: Rng::seed_from_u64(seed),
            planned,
            next_new: 0,
            inflight: VecDeque::new(),
            pending: Vec::new(),
            sending: None,
            completions: Vec::new(),
            late_sends: 0,
            retries: 0,
        }
    }

    /// Completed requests, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Sends that slipped behind the arrival grid by more than the
    /// configured threshold.
    pub fn late_sends(&self) -> u64 {
        self.late_sends
    }

    /// Retry attempts performed (attempt 2 and beyond).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Requests currently outstanding on the wire.
    pub fn inflight(&self) -> usize {
        self.inflight.len() + usize::from(self.sending.is_some())
    }

    /// Planned requests on this lane.
    pub fn planned_len(&self) -> usize {
        self.planned.len()
    }

    fn next_due(&self) -> Option<(bool, u64)> {
        // (is_retry, due_at). Retries outrank new sends when both are due —
        // they are older work.
        let retry = self.pending.first().map(|p| p.retry_at_us);
        let fresh = self.planned.get(self.next_new).copied();
        match (retry, fresh) {
            (Some(r), Some(f)) => Some(if r <= f { (true, r) } else { (false, f) }),
            (Some(r), None) => Some((true, r)),
            (None, Some(f)) => Some((false, f)),
            (None, None) => None,
        }
    }

    /// Decide the next step at absolute time `now_us`. A returned
    /// [`Action::Send`] moves the chosen request in-flight immediately;
    /// the executor must follow up with [`on_sent`](Lane::on_sent) or
    /// [`on_transport_error`](Lane::on_transport_error).
    pub fn next_action(&mut self, now_us: u64) -> Action {
        debug_assert!(self.sending.is_none(), "previous Send not confirmed");
        let can_send = self.inflight.len() < self.cfg.max_inflight;
        match self.next_due() {
            Some((is_retry, due)) if can_send && due <= now_us => {
                let flight = if is_retry {
                    self.pending.remove(0).flight
                } else {
                    let slot = self.next_new;
                    self.next_new += 1;
                    Flight {
                        slot,
                        intended_us: self.planned[slot],
                        first_send_us: now_us,
                        attempts: 0,
                    }
                };
                self.sending = Some(flight);
                Action::Send { slot: flight.slot, attempt: flight.attempts + 1 }
            }
            Some((_, due)) if can_send => {
                if self.inflight.is_empty() {
                    Action::Sleep { until_us: due }
                } else {
                    Action::Recv { wait_until_us: Some(due) }
                }
            }
            // At the in-flight cap (or nothing due yet but work on the
            // wire): drain a reply first.
            Some((_, due)) => Action::Recv { wait_until_us: Some(due) },
            None if !self.inflight.is_empty() => Action::Recv { wait_until_us: None },
            None => Action::Done,
        }
    }

    /// Confirm that the request handed out by the last [`Action::Send`]
    /// hit the wire at `now_us`.
    pub fn on_sent(&mut self, now_us: u64) {
        let mut flight = self.sending.take().expect("on_sent without a pending Send");
        flight.attempts += 1;
        if flight.attempts == 1 {
            flight.first_send_us = now_us;
            if now_us.saturating_sub(flight.intended_us) > self.cfg.late_threshold_us {
                self.late_sends += 1;
            }
        } else {
            self.retries += 1;
        }
        self.inflight.push_back(flight);
    }

    /// Feed the reply for the oldest in-flight request (FIFO — the
    /// protocol answers per-connection requests in order), observed at
    /// `now_us`.
    pub fn on_reply(&mut self, class: ReplyClass, now_us: u64) {
        let flight = self.inflight.pop_front().expect("reply with nothing in flight");
        match class {
            ReplyClass::Retryable { outcome: _, hint_ms }
                if flight.attempts < self.cfg.max_attempts =>
            {
                let wait_ms = self.backoff_ms(flight.attempts, hint_ms);
                self.schedule_retry(flight, now_us + wait_ms * 1000);
            }
            ReplyClass::Retryable { outcome, .. } | ReplyClass::Final(outcome) => {
                self.complete(flight, outcome, now_us);
            }
        }
    }

    /// The connection died (write failure, read error, or a protocol
    /// violation): every in-flight request either reschedules as a retry
    /// or completes as [`Outcome::Error`]. The executor is expected to
    /// reconnect before the next `Send`.
    pub fn on_transport_error(&mut self, now_us: u64) {
        if let Some(flight) = self.sending.take() {
            // The unconfirmed send never made the wire; requeue it as-is.
            self.inflight.push_back(flight);
        }
        while let Some(flight) = self.inflight.pop_front() {
            if flight.attempts < self.cfg.max_attempts {
                let wait_ms = self.backoff_ms(flight.attempts, None);
                self.schedule_retry(flight, now_us + wait_ms * 1000);
            } else {
                self.complete(flight, Outcome::Error, now_us);
            }
        }
    }

    /// Give up on the whole lane: every request still outstanding — in
    /// flight, queued for retry, or never sent — completes as
    /// [`Outcome::Error`]. The executor calls this when the transport is
    /// persistently unavailable (reconnects keep failing), so the report
    /// still accounts for the full offered load instead of silently
    /// dropping the tail.
    pub fn abort(&mut self, now_us: u64) {
        if let Some(flight) = self.sending.take() {
            self.inflight.push_back(flight);
        }
        while let Some(flight) = self.inflight.pop_front() {
            self.complete(flight, Outcome::Error, now_us);
        }
        for pending in std::mem::take(&mut self.pending) {
            self.complete(pending.flight, Outcome::Error, now_us);
        }
        while self.next_new < self.planned.len() {
            let slot = self.next_new;
            self.next_new += 1;
            let flight = Flight {
                slot,
                intended_us: self.planned[slot],
                first_send_us: now_us,
                attempts: 0,
            };
            self.complete(flight, Outcome::Error, now_us);
        }
    }

    fn schedule_retry(&mut self, flight: Flight, retry_at_us: u64) {
        let at = self.pending.partition_point(|p| p.retry_at_us <= retry_at_us);
        self.pending.insert(at, Pending { retry_at_us, flight });
    }

    fn complete(&mut self, flight: Flight, outcome: Outcome, now_us: u64) {
        let attempts = flight.attempts.max(1);
        self.completions.push(Completion {
            slot: flight.slot,
            intended_us: flight.intended_us,
            first_send_us: flight.first_send_us,
            done_us: now_us,
            attempts,
            outcome,
        });
    }

    /// Capped exponential backoff with deterministic jitter into
    /// `[raw/2, raw]`, floored by the server hint — the `revel_serve`
    /// client policy, driven by the lane's seeded RNG.
    fn backoff_ms(&mut self, attempt: u32, hint_ms: Option<u64>) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        let raw = self.cfg.backoff_base_ms.saturating_mul(1u64 << exp).min(self.cfg.backoff_cap_ms);
        let raw = raw.max(1);
        let jittered = raw / 2 + self.rng.gen_index((raw - raw / 2 + 1) as usize) as u64;
        jittered.max(hint_ms.unwrap_or(0)).min(self.cfg.backoff_cap_ms.max(hint_ms.unwrap_or(0)))
    }
}
