//! Composable arrival processes over phased timelines.
//!
//! A [`PatternKind`] describes *when* requests arrive inside one phase; the
//! [`PatternEngine`] expands it into a sorted list of arrival offsets in
//! simulated microseconds. Everything is pure and seeded — generating a
//! ten-minute Poisson storm takes microseconds of wall clock, which is what
//! makes the shape tests (mean-rate sanity over long horizons) cheap.

use revel_isa::Rng;

/// Hard cap on arrivals a single phase may expand to. A scenario that
/// requests more is rejected with a structured error instead of allocating
/// without bound — scenario files are untrusted input like wire frames.
pub const MAX_ARRIVALS_PER_PHASE: usize = 1_000_000;

/// Highest accepted rate, in requests/second. Enough for any storm this
/// harness can deliver; anything above is a typo or hostile input.
pub const MAX_RPS: f64 = 1_000_000.0;

/// An arrival process for one phase. Rates are open-loop: arrivals are laid
/// on an absolute grid up front and the load generator is expected to chase
/// the grid, not the server (coordinated-omission correctness lives in
/// [`crate::lane`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PatternKind {
    /// No arrivals — a quiet gap (e.g. the drain before a thundering herd).
    Silence,
    /// Evenly spaced arrivals at a fixed rate: arrival `k` at `k / rps`.
    Constant {
        /// Steady request rate, requests/second.
        rps: f64,
    },
    /// Open-loop Poisson process: exponential inter-arrival gaps with the
    /// given mean rate.
    Poisson {
        /// Mean request rate, requests/second.
        rps: f64,
    },
    /// A burst train: every `every_ms`, `count` requests land together,
    /// optionally smeared uniformly over `spread_ms`.
    Burst {
        /// Requests per burst.
        count: u64,
        /// Burst period, milliseconds.
        every_ms: u64,
        /// Uniform smear applied to each request inside its burst, ms.
        spread_ms: u64,
    },
    /// Linear ramp from `from_rps` to `to_rps` across the phase; arrival
    /// times invert the cumulative intensity analytically, so the schedule
    /// is exact and deterministic.
    Ramp {
        /// Rate at phase start, requests/second.
        from_rps: f64,
        /// Rate at phase end, requests/second.
        to_rps: f64,
    },
    /// Diurnal sine: rate(t) = base + amplitude * sin(2πt / period),
    /// realized by Lewis–Shedler thinning of a Poisson process at the peak
    /// rate. `amplitude_rps` must not exceed `base_rps` (rates stay ≥ 0).
    Diurnal {
        /// Mean rate around which the sine swings, requests/second.
        base_rps: f64,
        /// Swing amplitude, requests/second.
        amplitude_rps: f64,
        /// Full sine period, milliseconds.
        period_ms: u64,
    },
    /// Replay a recorded arrival trace (offsets from phase start, ms),
    /// time-compressed by `speedup` (2.0 ⇒ twice as fast).
    Replay {
        /// Recorded arrival offsets from phase start, milliseconds.
        offsets_ms: Vec<u64>,
        /// Time compression factor; 1.0 replays in real time.
        speedup: f64,
    },
    /// Superimpose several processes (e.g. a diurnal baseline with a burst
    /// train on top): the union of all parts' arrivals, re-sorted.
    Overlay {
        /// The component processes.
        parts: Vec<PatternKind>,
    },
}

/// A structured pattern-expansion failure (bad parameter or blowup past
/// [`MAX_ARRIVALS_PER_PHASE`]). Never a panic: scenario files are input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Human-readable reason, e.g. `"burst would produce 2000000 arrivals"`.
    pub message: String,
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for PatternError {}

fn err(message: impl Into<String>) -> PatternError {
    PatternError { message: message.into() }
}

fn check_rate(name: &str, rps: f64) -> Result<(), PatternError> {
    if !rps.is_finite() || rps < 0.0 {
        return Err(err(format!("{name} must be a finite non-negative rate, got {rps}")));
    }
    if rps > MAX_RPS {
        return Err(err(format!("{name} {rps} exceeds the {MAX_RPS} rps cap")));
    }
    Ok(())
}

fn push_capped(out: &mut Vec<u64>, at_us: u64) -> Result<(), PatternError> {
    if out.len() >= MAX_ARRIVALS_PER_PHASE {
        return Err(err(format!("phase expands past the {MAX_ARRIVALS_PER_PHASE}-arrival cap")));
    }
    out.push(at_us);
    Ok(())
}

impl PatternKind {
    /// Validate parameters without expanding arrivals. [`arrivals_us`]
    /// re-checks everything; this exists so scenario parsing can reject a
    /// bad pattern eagerly with a field-level error.
    ///
    /// [`arrivals_us`]: PatternKind::arrivals_us
    pub fn validate(&self) -> Result<(), PatternError> {
        match self {
            PatternKind::Silence => Ok(()),
            PatternKind::Constant { rps } => check_rate("rps", *rps),
            PatternKind::Poisson { rps } => check_rate("rps", *rps),
            PatternKind::Burst { count, every_ms, spread_ms } => {
                if *every_ms == 0 {
                    return Err(err("burst every_ms must be >= 1"));
                }
                if *count as usize > MAX_ARRIVALS_PER_PHASE {
                    return Err(err(format!("burst count {count} exceeds the arrival cap")));
                }
                if *spread_ms >= *every_ms {
                    return Err(err("burst spread_ms must be smaller than every_ms"));
                }
                Ok(())
            }
            PatternKind::Ramp { from_rps, to_rps } => {
                check_rate("from_rps", *from_rps)?;
                check_rate("to_rps", *to_rps)
            }
            PatternKind::Diurnal { base_rps, amplitude_rps, period_ms } => {
                check_rate("base_rps", *base_rps)?;
                check_rate("amplitude_rps", *amplitude_rps)?;
                if *amplitude_rps > *base_rps {
                    return Err(err("diurnal amplitude_rps must not exceed base_rps"));
                }
                if *period_ms == 0 {
                    return Err(err("diurnal period_ms must be >= 1"));
                }
                Ok(())
            }
            PatternKind::Replay { offsets_ms, speedup } => {
                if !speedup.is_finite() || *speedup <= 0.0 {
                    return Err(err(format!("replay speedup must be > 0, got {speedup}")));
                }
                if offsets_ms.len() > MAX_ARRIVALS_PER_PHASE {
                    return Err(err("replay trace exceeds the arrival cap"));
                }
                Ok(())
            }
            PatternKind::Overlay { parts } => {
                if parts.is_empty() {
                    return Err(err("overlay needs at least one part"));
                }
                if parts.len() > 16 {
                    return Err(err("overlay is capped at 16 parts"));
                }
                for (i, part) in parts.iter().enumerate() {
                    if matches!(part, PatternKind::Overlay { .. }) {
                        return Err(err(format!("overlay part {i}: overlays do not nest")));
                    }
                    part.validate()?;
                }
                Ok(())
            }
        }
    }

    /// Expand this pattern into sorted arrival offsets (µs from phase
    /// start, strictly `< duration_us`). Pure: the same `rng` state yields
    /// the same schedule.
    pub fn arrivals_us(&self, duration_us: u64, rng: &mut Rng) -> Result<Vec<u64>, PatternError> {
        self.validate()?;
        let dur_s = duration_us as f64 / 1e6;
        let mut out = Vec::new();
        match self {
            PatternKind::Silence => {}
            PatternKind::Constant { rps } => {
                if *rps > 0.0 {
                    let mut k = 0u64;
                    loop {
                        let t = k as f64 / rps;
                        if t >= dur_s {
                            break;
                        }
                        push_capped(&mut out, (t * 1e6) as u64)?;
                        k += 1;
                    }
                }
            }
            PatternKind::Poisson { rps } => {
                if *rps > 0.0 {
                    let mut t = 0.0f64;
                    loop {
                        // Exponential gap; 1 - u ∈ (0, 1] so ln is finite.
                        t += -(1.0 - rng.gen_f64()).ln() / rps;
                        if t >= dur_s {
                            break;
                        }
                        push_capped(&mut out, (t * 1e6) as u64)?;
                    }
                }
            }
            PatternKind::Burst { count, every_ms, spread_ms } => {
                let mut base_us = 0u64;
                while base_us < duration_us {
                    for _ in 0..*count {
                        let jitter_us = if *spread_ms == 0 {
                            0
                        } else {
                            rng.gen_index((*spread_ms * 1000 + 1) as usize) as u64
                        };
                        let at = base_us + jitter_us;
                        if at < duration_us {
                            push_capped(&mut out, at)?;
                        }
                    }
                    base_us += every_ms * 1000;
                }
            }
            PatternKind::Ramp { from_rps, to_rps } => {
                // Cumulative intensity Λ(t) = from·t + (to−from)·t²/(2D);
                // arrival k solves Λ(t) = k. The citardauq form
                // t = 2k / (from + sqrt(from² + 4ak)), a = (to−from)/(2D),
                // stays stable as a → 0 and handles decreasing ramps.
                let (r0, r1) = (*from_rps, *to_rps);
                if r0 > 0.0 || r1 > 0.0 {
                    let a = (r1 - r0) / (2.0 * dur_s);
                    let mut k = 0u64;
                    loop {
                        let t = if k == 0 {
                            if r0 > 0.0 {
                                0.0
                            } else {
                                // Rate starts at zero: first arrival once
                                // the ramp has accumulated unit intensity.
                                k = 1;
                                continue;
                            }
                        } else {
                            let disc = r0 * r0 + 4.0 * a * k as f64;
                            if disc < 0.0 {
                                break; // decreasing ramp ran out of mass
                            }
                            let denom = r0 + disc.sqrt();
                            if denom <= 0.0 {
                                break;
                            }
                            if a == 0.0 {
                                k as f64 / r0
                            } else {
                                2.0 * k as f64 / denom
                            }
                        };
                        if !t.is_finite() || t >= dur_s {
                            break;
                        }
                        push_capped(&mut out, (t * 1e6) as u64)?;
                        k += 1;
                    }
                }
            }
            PatternKind::Diurnal { base_rps, amplitude_rps, period_ms } => {
                let peak = base_rps + amplitude_rps;
                if peak > 0.0 {
                    let period_s = *period_ms as f64 / 1e3;
                    let mut t = 0.0f64;
                    loop {
                        t += -(1.0 - rng.gen_f64()).ln() / peak;
                        if t >= dur_s {
                            break;
                        }
                        let rate = base_rps
                            + amplitude_rps * (2.0 * std::f64::consts::PI * t / period_s).sin();
                        if rng.gen_f64() * peak < rate {
                            push_capped(&mut out, (t * 1e6) as u64)?;
                        }
                    }
                }
            }
            PatternKind::Replay { offsets_ms, speedup } => {
                for &off_ms in offsets_ms {
                    let at = (off_ms as f64 * 1000.0 / speedup) as u64;
                    if at < duration_us {
                        push_capped(&mut out, at)?;
                    }
                }
            }
            PatternKind::Overlay { parts } => {
                for part in parts {
                    let sub = part.arrivals_us(duration_us, rng)?;
                    if out.len() + sub.len() > MAX_ARRIVALS_PER_PHASE {
                        return Err(err(format!(
                            "overlay expands past the {MAX_ARRIVALS_PER_PHASE}-arrival cap"
                        )));
                    }
                    out.extend(sub);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

/// Expands patterns into arrival schedules with per-phase seed streams, so
/// phase `i` of a scenario always sees the same randomness regardless of
/// what earlier phases consumed.
#[derive(Debug, Clone, Copy)]
pub struct PatternEngine {
    seed: u64,
}

impl PatternEngine {
    /// An engine rooted at `seed`; the same seed reproduces every phase.
    pub fn new(seed: u64) -> Self {
        PatternEngine { seed }
    }

    /// The root seed this engine was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Expand `pattern` for phase `phase_index` over `duration_ms` into
    /// sorted arrival offsets in µs from phase start.
    pub fn phase_arrivals(
        &self,
        phase_index: usize,
        pattern: &PatternKind,
        duration_ms: u64,
    ) -> Result<Vec<u64>, PatternError> {
        let mut rng = Rng::seed_from_u64(crate::stream_seed(self.seed, phase_index as u64));
        pattern.arrivals_us(duration_ms.saturating_mul(1000), &mut rng)
    }
}
