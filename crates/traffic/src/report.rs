//! Per-phase reporting and SLO evaluation.
//!
//! The runner aggregates each phase's [`crate::lane::Completion`]s plus a
//! server-side stats window into a [`PhaseSummary`]; this module renders
//! the stable JSON report line (via [`crate::json`], so field order and
//! number formatting are byte-deterministic) and checks the scenario's
//! [`Slo`]s, returning one [`SloViolation`] per broken gate.

use crate::json::Value;
use crate::lane::{Completion, Outcome};
use crate::scenario::Slo;

/// Nearest-rank percentile over a **sorted** sample slice. Returns 0 for
/// an empty slice; `p` is clamped into `(0, 100]`.
pub fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let p = p.clamp(f64::MIN_POSITIVE, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The server-side counter window bracketing one phase (deltas of the
/// engine stats between the phase's start and end snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsWindow {
    /// Cache hits during the phase.
    pub hits: u64,
    /// Cache misses during the phase.
    pub misses: u64,
    /// Trace-replay hits during the phase.
    pub trace_hits: u64,
    /// Disk-tier hits during the phase.
    pub disk_hits: u64,
}

impl StatsWindow {
    /// hits / (hits + misses); `None` when the window saw no lookups.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Component-wise sum (for whole-run aggregation).
    pub fn merged(&self, other: &StatsWindow) -> StatsWindow {
        StatsWindow {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            trace_hits: self.trace_hits + other.trace_hits,
            disk_hits: self.disk_hits + other.disk_hits,
        }
    }
}

/// Everything the report knows about one phase (or the whole run).
#[derive(Debug, Clone, Default)]
pub struct PhaseSummary {
    /// Requests the plan offered.
    pub offered: u64,
    /// Successful completions.
    pub ok: u64,
    /// Deadline expiries.
    pub timed_out: u64,
    /// Overload rejections that out-lived retries.
    pub overloaded: u64,
    /// Other terminal failures.
    pub errors: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Sends that slipped behind the arrival grid.
    pub late_sends: u64,
    /// Coordinated-omission-correct latencies, µs, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Server-side counter window, when a stats connection was available.
    pub window: Option<StatsWindow>,
    /// Wall-clock phase length, seconds.
    pub wall_s: f64,
}

impl PhaseSummary {
    /// Fold a batch of lane completions (and counters) into the summary.
    /// Call [`seal`](PhaseSummary::seal) once after the last fold.
    pub fn fold(&mut self, completions: &[Completion], late_sends: u64, retries: u64) {
        self.offered += completions.len() as u64;
        self.late_sends += late_sends;
        self.retries += retries;
        for c in completions {
            match c.outcome {
                Outcome::Ok => self.ok += 1,
                Outcome::TimedOut => self.timed_out += 1,
                Outcome::Overloaded => self.overloaded += 1,
                Outcome::Error => self.errors += 1,
            }
            self.latencies_us.push(c.latency_us());
        }
    }

    /// Sort the latency samples (percentiles need it).
    pub fn seal(&mut self) {
        self.latencies_us.sort_unstable();
    }

    /// ok / offered; 1.0 for an empty phase (nothing failed).
    pub fn success_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.ok as f64 / self.offered as f64
        }
    }

    /// Latency percentile in milliseconds (samples must be sealed).
    pub fn p_ms(&self, p: f64) -> f64 {
        percentile_us(&self.latencies_us, p) as f64 / 1000.0
    }

    /// Merge another phase into a whole-run aggregate.
    pub fn absorb(&mut self, other: &PhaseSummary) {
        self.offered += other.offered;
        self.ok += other.ok;
        self.timed_out += other.timed_out;
        self.overloaded += other.overloaded;
        self.errors += other.errors;
        self.retries += other.retries;
        self.late_sends += other.late_sends;
        self.latencies_us.extend_from_slice(&other.latencies_us);
        self.window = match (self.window, other.window) {
            (Some(a), Some(b)) => Some(a.merged(&b)),
            (a, b) => a.or(b),
        };
        self.wall_s += other.wall_s;
    }

    /// The stable one-line JSON report for this phase.
    pub fn json_line(&self, scenario: &str, phase: &str) -> String {
        let mut fields = vec![
            ("type".to_string(), Value::Str("scenario_phase".into())),
            ("scenario".to_string(), Value::Str(scenario.into())),
            ("phase".to_string(), Value::Str(phase.into())),
            ("offered".to_string(), Value::Num(self.offered as f64)),
            ("ok".to_string(), Value::Num(self.ok as f64)),
            ("timed_out".to_string(), Value::Num(self.timed_out as f64)),
            ("overloaded".to_string(), Value::Num(self.overloaded as f64)),
            ("errors".to_string(), Value::Num(self.errors as f64)),
            ("retries".to_string(), Value::Num(self.retries as f64)),
            ("late_sends".to_string(), Value::Num(self.late_sends as f64)),
            ("success_rate".to_string(), Value::Num(round3(self.success_rate()))),
            ("p50_ms".to_string(), Value::Num(round3(self.p_ms(50.0)))),
            ("p90_ms".to_string(), Value::Num(round3(self.p_ms(90.0)))),
            ("p99_ms".to_string(), Value::Num(round3(self.p_ms(99.0)))),
        ];
        if let Some(w) = &self.window {
            if let Some(hr) = w.hit_rate() {
                fields.push(("hit_rate".to_string(), Value::Num(round3(hr))));
            }
            fields.push(("trace_hits".to_string(), Value::Num(w.trace_hits as f64)));
            fields.push(("disk_hits".to_string(), Value::Num(w.disk_hits as f64)));
        }
        fields.push(("wall_s".to_string(), Value::Num(round3(self.wall_s))));
        Value::Obj(fields).render()
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// One broken SLO gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloViolation {
    /// The SLO's name from the scenario file.
    pub slo: String,
    /// What broke, with measured vs pinned values.
    pub detail: String,
}

impl std::fmt::Display for SloViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SLO {}: {}", self.slo, self.detail)
    }
}

/// Check every SLO against the per-phase summaries (and the whole-run
/// aggregate for `phase: "all"` gates). Phase names were validated at
/// parse time, so a missing phase here is a violation, not a panic.
pub fn evaluate_slos(
    slos: &[Slo],
    per_phase: &[(String, PhaseSummary)],
    total: &PhaseSummary,
) -> Vec<SloViolation> {
    let mut out = Vec::new();
    for slo in slos {
        let (scope, summary) = match &slo.phase {
            None => ("all".to_string(), Some(total)),
            Some(name) => (name.clone(), per_phase.iter().find(|(n, _)| n == name).map(|(_, s)| s)),
        };
        let Some(s) = summary else {
            out.push(SloViolation {
                slo: slo.name.clone(),
                detail: format!("phase {scope:?} produced no summary"),
            });
            continue;
        };
        let mut fail = |detail: String| out.push(SloViolation { slo: slo.name.clone(), detail });
        if let Some(cap) = slo.max_p50_ms {
            let got = s.p_ms(50.0);
            if got > cap {
                fail(format!("p50 {got:.3}ms above the {cap}ms ceiling (phase {scope})"));
            }
        }
        if let Some(cap) = slo.max_p99_ms {
            let got = s.p_ms(99.0);
            if got > cap {
                fail(format!("p99 {got:.3}ms above the {cap}ms ceiling (phase {scope})"));
            }
        }
        if let Some(floor) = slo.min_success_rate {
            let got = s.success_rate();
            if got < floor {
                fail(format!("success rate {got:.4} below the {floor} floor (phase {scope})"));
            }
        }
        if let Some(floor) = slo.min_hit_rate {
            match s.window.as_ref().and_then(StatsWindow::hit_rate) {
                Some(got) if got >= floor => {}
                Some(got) => {
                    fail(format!("hit rate {got:.3} below the {floor} floor (phase {scope})"))
                }
                None => fail(format!("hit rate unavailable (phase {scope}, no stats window)")),
            }
        }
        if let Some(floor) = slo.min_trace_hits {
            match s.window {
                Some(w) if w.trace_hits >= floor => {}
                Some(w) => fail(format!(
                    "trace hits {} below the {floor} floor (phase {scope})",
                    w.trace_hits
                )),
                None => fail(format!("trace hits unavailable (phase {scope}, no stats window)")),
            }
        }
    }
    out
}
