//! A minimal JSON value model, parser, and serializer.
//!
//! The workspace is intentionally dependency-free (it must build with no
//! crates registry), so the wire format is hand-rolled: a recursive-descent
//! parser with an explicit depth limit and a serializer that preserves
//! object key order (objects are ordered `(key, value)` lists, not maps),
//! keeping every encoded frame byte-deterministic.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Wire frames are flat request
/// objects; a deeply nested payload is hostile input, not a real request.
pub const MAX_DEPTH: usize = 32;

/// A JSON value. Numbers are `f64` (every counter this protocol carries is
/// far below 2^53, so round-tripping is exact); objects preserve insertion
/// order so encodings are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rejects fractions and
    /// negatives — every integer field in this protocol is a count).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Convenience constructor: a `u64` count (exact below 2^53).
    pub fn u64(n: u64) -> Value {
        Value::Num(n as f64)
    }

    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Serializes to compact single-line JSON (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError { at: self.i, reason: reason.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.i..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid; find the next char boundary).
                    let start = self.i;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..end]).expect("valid UTF-8"));
                    self.i = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("non-hex in \\u escape"))?;
            v = (v << 4) | d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.i]).expect("ascii");
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            r#""hello""#,
            r#"{"a":1,"b":[true,null,"x"],"c":{"d":2.5}}"#,
            "[]",
            "{}",
        ];
        for c in cases {
            let v = parse(c).unwrap_or_else(|e| panic!("{c}: {e}"));
            assert_eq!(v.render(), c, "render must reproduce the canonical form");
            assert_eq!(parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::str("line\nquote\"slash\\tab\tctrl\u{1}unicode✓");
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert!(rendered.contains("\\n") && rendered.contains("\\u0001"));
        // Standard escapes and surrogate pairs parse too.
        assert_eq!(parse(r#""A😀\/\b\f""#).unwrap(), Value::str("A😀/\u{8}\u{c}"));
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("z").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "truth",
            "1 2",
            r#""unterminated"#,
            r#""bad \q escape""#,
            r#""\ud800""#,
            "nan",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&deep).expect_err("depth bomb must be rejected");
        assert!(err.reason.contains("nesting"), "{err}");
        // At the limit it still parses.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        parse(&ok).expect("nesting at the limit parses");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::u64(50_000_000).render(), "50000000");
        assert_eq!(Value::Num(2.5).render(), "2.5");
        assert_eq!(parse("50000000").unwrap().as_u64(), Some(50_000_000));
        assert_eq!(parse("2.5").unwrap().as_u64(), None, "fractions are not counts");
        assert_eq!(parse("-3").unwrap().as_u64(), None, "negatives are not counts");
    }
}
