//! # revel-traffic — reproducible traffic storms
//!
//! A std-only, seeded-deterministic scenario engine for load-testing the
//! REVEL serving tier. The crate is deliberately transport-agnostic: it
//! knows about *arrival times*, *lanes* (per-connection state machines),
//! and *SLOs* — not about sockets or the wire protocol. `revel-serve`'s
//! `revel_client --scenario` runner supplies the I/O.
//!
//! The pieces compose bottom-up:
//!
//! * [`json`] — the hand-rolled JSON layer shared with the wire protocol
//!   (moved here from `revel-serve` so scenario files and protocol frames
//!   are parsed by the same code).
//! * [`pattern`] — composable arrival processes ([`pattern::PatternKind`]):
//!   constant, open-loop Poisson, burst trains, linear ramp, diurnal sine,
//!   trace replay with speedup, and overlay composition. A
//!   [`pattern::PatternEngine`] turns a pattern plus a phase index and a
//!   seed into a sorted arrival schedule in simulated microseconds —
//!   no wall clock anywhere, so shape tests run instantly.
//! * [`lane`] — the per-connection state machine: in-flight caps,
//!   deterministic-jitter retry backoff, and coordinated-omission-correct
//!   accounting (latency is measured from the *intended* send time on the
//!   arrival grid, and sends that slip behind the grid are counted).
//! * [`scenario`] — the versioned `scenario.json` file format: phased
//!   timelines, workload mixes, scripted fleet events (`kill_shard`), and
//!   named SLO assertions; [`scenario::Scenario::plan`] expands a scenario
//!   into a fully materialized, seed-deterministic arrival plan.
//! * [`report`] — per-phase summaries, nearest-rank percentiles, SLO
//!   evaluation, and the stable JSON report line.
//!
//! Determinism contract: every stochastic choice (Poisson gaps, diurnal
//! thinning, burst spread, mix sampling, retry jitter) draws from
//! [`revel_isa::Rng`] streams derived from one scenario seed, so two runs
//! with the same seed produce byte-identical request sequences.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod lane;
pub mod pattern;
pub mod report;
pub mod scenario;

/// Decorrelation constant for deriving per-stream seeds from one scenario
/// seed (the SplitMix64 golden-ratio increment — the same constant the
/// fleet and chaos layers use for per-lane streams).
pub const STREAM_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derive the seed for an indexed sub-stream (lane, phase, mix) from a
/// root seed. Index 0 maps to a distinct stream, not the root itself.
pub fn stream_seed(root: u64, index: u64) -> u64 {
    root ^ index.wrapping_add(1).wrapping_mul(STREAM_GOLDEN)
}
