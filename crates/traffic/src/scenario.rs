//! The versioned `scenario.json` file format and its seed-deterministic
//! expansion into an executable plan.
//!
//! A scenario is untrusted input, parsed by the same hand-rolled JSON
//! layer as the wire protocol ([`crate::json`]): oversized files, unknown
//! versions, and malformed fields come back as structured
//! [`ScenarioError`]s — never a panic. Unknown *fields* are ignored (the
//! same forward-compatibility posture the protocol takes), unknown
//! *enumerations* (pattern kinds, event actions) are errors.
//!
//! ## File shape (version 1)
//!
//! ```json
//! {
//!   "version": 1,
//!   "name": "thundering_herd",
//!   "seed": 7,
//!   "connections": 8,
//!   "inflight": 2,
//!   "retries": 3,
//!   "backoff_base_ms": 5,
//!   "backoff_cap_ms": 200,
//!   "mix": [
//!     {"weight": 3, "bench": "solver", "params": "n=12", "arch": "revel"},
//!     {"weight": 1, "grid": true},
//!     {"weight": 1, "bench": "fft", "params": "n=64", "arch": "revel", "batch": 8}
//!   ],
//!   "phases": [
//!     {"name": "warm", "duration_ms": 2000, "pattern": {"kind": "constant", "rps": 40}},
//!     {"name": "drain", "duration_ms": 500, "pattern": {"kind": "silence"}},
//!     {"name": "stampede", "duration_ms": 2000, "reconnect": true,
//!      "pattern": {"kind": "burst", "count": 40, "every_ms": 400, "spread_ms": 10},
//!      "events": [{"at_ms": 700, "kill_shard": {"shard": 0}, "wipe_snapshot": true}]}
//!   ],
//!   "slos": [
//!     {"name": "tail", "phase": "stampede", "max_p99_ms": 1500},
//!     {"name": "served", "phase": "all", "min_success_rate": 0.995}
//!   ]
//! }
//! ```
//!
//! `mix` entries name an explicit grid cell (optionally a batch lane via
//! `"batch": N`) or `{"grid": true}`, which walks the whole 42-cell
//! evaluation grid round-robin. A phase may override `mix`, and an event's
//! victim may be `{"shard": N}` or `{"owner_of": {"bench", "params",
//! "arch"}}` (the ring owner of that cell, resolved server-side).

use crate::json::{self, Value};
use crate::pattern::{PatternEngine, PatternKind};
use revel_isa::Rng;

/// Scenario files larger than this are rejected before parsing. Generous:
/// the catalog files are ~2 KiB; replay traces dominate legitimate size.
pub const MAX_SCENARIO_BYTES: usize = 256 * 1024;

/// The only scenario file version this build understands.
pub const SCENARIO_VERSION: u64 = 1;

/// A structured scenario rejection: where in the file, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Dotted path of the offending field, e.g. `"phases[2].pattern.rps"`.
    pub at: String,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario error at {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ScenarioError {}

fn serr(at: impl Into<String>, reason: impl Into<String>) -> ScenarioError {
    ScenarioError { at: at.into(), reason: reason.into() }
}

/// One weighted entry of a workload mix.
#[derive(Debug, Clone, PartialEq)]
pub struct MixEntry {
    /// Relative sampling weight (> 0, finite).
    pub weight: f64,
    /// What this entry resolves to.
    pub cell: MixCell,
}

/// The workload a mix entry selects.
#[derive(Debug, Clone, PartialEq)]
pub enum MixCell {
    /// Walk the full evaluation grid round-robin (each draw of this entry
    /// consumes the next grid cursor value).
    Grid,
    /// A fixed cell, optionally as a batched-replay lane.
    Cell {
        /// Workload name, e.g. `"solver"`.
        bench: String,
        /// Parameter string, e.g. `"n=12"`.
        params: String,
        /// Architecture, e.g. `"revel"`.
        arch: String,
        /// Batch width; 0 means a plain (non-batched) simulate.
        batch: u64,
    },
}

/// A scripted fleet event inside a phase.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEvent {
    /// Offset from phase start, milliseconds.
    pub at_ms: u64,
    /// Which shard dies.
    pub victim: Victim,
    /// Also wipe the victim's snapshot directory before it respawns
    /// (turns a warm restart into a cache-cold stampede).
    pub wipe_snapshot: bool,
}

/// Victim selector for a kill event.
#[derive(Debug, Clone, PartialEq)]
pub enum Victim {
    /// An explicit shard id.
    Shard(u64),
    /// The ring owner of a cell, resolved by the fleet frontend at event
    /// time — this is how `shard_kill_ramp` guarantees it kills a shard
    /// that is actually serving traffic.
    OwnerOf {
        /// Workload name.
        bench: String,
        /// Parameter string.
        params: String,
        /// Architecture.
        arch: String,
    },
}

/// One phase of the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name (unique; SLOs reference it).
    pub name: String,
    /// Phase length, milliseconds.
    pub duration_ms: u64,
    /// Arrival process for this phase.
    pub pattern: PatternKind,
    /// Tear down and re-dial every connection at phase start (the
    /// reconnect stampede of `thundering_herd`).
    pub reconnect: bool,
    /// Phase-local mix override; `None` uses the scenario-level mix.
    pub mix: Option<Vec<MixEntry>>,
    /// Scripted fleet events, sorted by `at_ms`.
    pub events: Vec<FleetEvent>,
}

/// A named SLO assertion over one phase (or `"all"` for the whole run).
/// Unset gates are not checked; an SLO with no gate at all is rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// Assertion name, printed on violation.
    pub name: String,
    /// Phase this applies to; `None` = the whole run.
    pub phase: Option<String>,
    /// Ceiling on p50 latency, milliseconds.
    pub max_p50_ms: Option<f64>,
    /// Ceiling on p99 latency, milliseconds.
    pub max_p99_ms: Option<f64>,
    /// Floor on the server-side cache hit rate over the phase window.
    pub min_hit_rate: Option<f64>,
    /// Floor on ok / offered.
    pub min_success_rate: Option<f64>,
    /// Floor on trace-replay hits over the phase window.
    pub min_trace_hits: Option<u64>,
}

impl Slo {
    fn has_gate(&self) -> bool {
        self.max_p50_ms.is_some()
            || self.max_p99_ms.is_some()
            || self.min_hit_rate.is_some()
            || self.min_success_rate.is_some()
            || self.min_trace_hits.is_some()
    }
}

/// A parsed, validated scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (reports and SLO output carry it).
    pub name: String,
    /// Root seed; `--seed` on the command line overrides it.
    pub seed: u64,
    /// Lane (connection) count.
    pub connections: usize,
    /// Per-lane in-flight cap.
    pub max_inflight: usize,
    /// Attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Retry backoff base, ms.
    pub backoff_base_ms: u64,
    /// Retry backoff ceiling, ms.
    pub backoff_cap_ms: u64,
    /// Late-send threshold, ms.
    pub late_threshold_ms: u64,
    /// Scenario-level workload mix.
    pub mix: Vec<MixEntry>,
    /// The phased timeline.
    pub phases: Vec<Phase>,
    /// Named SLO assertions.
    pub slos: Vec<Slo>,
}

// ---------------------------------------------------------------------------
// Parsing

fn want_obj<'v>(v: &'v Value, at: &str) -> Result<&'v [(String, Value)], ScenarioError> {
    match v {
        Value::Obj(fields) => Ok(fields),
        _ => Err(serr(at, "expected an object")),
    }
}

fn want_arr<'v>(v: &'v Value, at: &str) -> Result<&'v [Value], ScenarioError> {
    v.as_arr().ok_or_else(|| serr(at, "expected an array"))
}

fn opt_u64(v: &Value, key: &str, at: &str) -> Result<Option<u64>, ScenarioError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(f) => f
            .as_u64()
            .map(Some)
            .ok_or_else(|| serr(format!("{at}.{key}"), "expected a non-negative integer")),
    }
}

fn opt_f64(v: &Value, key: &str, at: &str) -> Result<Option<f64>, ScenarioError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(f) => f
            .as_f64()
            .filter(|x| x.is_finite())
            .map(Some)
            .ok_or_else(|| serr(format!("{at}.{key}"), "expected a finite number")),
    }
}

fn opt_bool(v: &Value, key: &str, at: &str) -> Result<bool, ScenarioError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(f) => f.as_bool().ok_or_else(|| serr(format!("{at}.{key}"), "expected a boolean")),
    }
}

fn req_str(v: &Value, key: &str, at: &str) -> Result<String, ScenarioError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| serr(format!("{at}.{key}"), "expected a string"))
}

fn req_f64(v: &Value, key: &str, at: &str) -> Result<f64, ScenarioError> {
    opt_f64(v, key, at)?.ok_or_else(|| serr(format!("{at}.{key}"), "missing required number"))
}

fn parse_pattern(v: &Value, at: &str) -> Result<PatternKind, ScenarioError> {
    want_obj(v, at)?;
    let kind = req_str(v, "kind", at)?;
    let pat = match kind.as_str() {
        "silence" => PatternKind::Silence,
        "constant" => PatternKind::Constant { rps: req_f64(v, "rps", at)? },
        "poisson" => PatternKind::Poisson { rps: req_f64(v, "rps", at)? },
        "burst" => PatternKind::Burst {
            count: opt_u64(v, "count", at)?
                .ok_or_else(|| serr(format!("{at}.count"), "missing"))?,
            every_ms: opt_u64(v, "every_ms", at)?
                .ok_or_else(|| serr(format!("{at}.every_ms"), "missing"))?,
            spread_ms: opt_u64(v, "spread_ms", at)?.unwrap_or(0),
        },
        "ramp" => PatternKind::Ramp {
            from_rps: req_f64(v, "from_rps", at)?,
            to_rps: req_f64(v, "to_rps", at)?,
        },
        "diurnal" => PatternKind::Diurnal {
            base_rps: req_f64(v, "base_rps", at)?,
            amplitude_rps: req_f64(v, "amplitude_rps", at)?,
            period_ms: opt_u64(v, "period_ms", at)?
                .ok_or_else(|| serr(format!("{at}.period_ms"), "missing"))?,
        },
        "replay" => {
            let arr = v
                .get("offsets_ms")
                .ok_or_else(|| serr(format!("{at}.offsets_ms"), "missing"))
                .and_then(|a| want_arr(a, &format!("{at}.offsets_ms")))?;
            let mut offsets_ms = Vec::with_capacity(arr.len());
            for (i, off) in arr.iter().enumerate() {
                offsets_ms.push(off.as_u64().ok_or_else(|| {
                    serr(format!("{at}.offsets_ms[{i}]"), "expected a non-negative integer")
                })?);
            }
            PatternKind::Replay { offsets_ms, speedup: opt_f64(v, "speedup", at)?.unwrap_or(1.0) }
        }
        "overlay" => {
            let arr = v
                .get("parts")
                .ok_or_else(|| serr(format!("{at}.parts"), "missing"))
                .and_then(|a| want_arr(a, &format!("{at}.parts")))?;
            let mut parts = Vec::with_capacity(arr.len());
            for (i, part) in arr.iter().enumerate() {
                parts.push(parse_pattern(part, &format!("{at}.parts[{i}]"))?);
            }
            PatternKind::Overlay { parts }
        }
        other => return Err(serr(format!("{at}.kind"), format!("unknown pattern kind {other:?}"))),
    };
    pat.validate().map_err(|e| serr(at, e.message))?;
    Ok(pat)
}

fn parse_mix(v: &Value, at: &str) -> Result<Vec<MixEntry>, ScenarioError> {
    let arr = want_arr(v, at)?;
    if arr.is_empty() {
        return Err(serr(at, "mix must not be empty"));
    }
    if arr.len() > 64 {
        return Err(serr(at, "mix is capped at 64 entries"));
    }
    let mut out = Vec::with_capacity(arr.len());
    for (i, entry) in arr.iter().enumerate() {
        let eat = format!("{at}[{i}]");
        want_obj(entry, &eat)?;
        let weight = opt_f64(entry, "weight", &eat)?.unwrap_or(1.0);
        if weight <= 0.0 || weight > 1e6 {
            return Err(serr(format!("{eat}.weight"), "weight must be in (0, 1e6]"));
        }
        let cell = if entry.get("grid").and_then(Value::as_bool).unwrap_or(false) {
            MixCell::Grid
        } else {
            MixCell::Cell {
                bench: req_str(entry, "bench", &eat)?,
                params: entry.get("params").and_then(Value::as_str).unwrap_or("").to_string(),
                arch: entry.get("arch").and_then(Value::as_str).unwrap_or("").to_string(),
                batch: opt_u64(entry, "batch", &eat)?.unwrap_or(0),
            }
        };
        if let MixCell::Cell { batch, .. } = cell {
            if batch > 1024 {
                return Err(serr(format!("{eat}.batch"), "batch is capped at 1024"));
            }
        }
        out.push(MixEntry { weight, cell });
    }
    Ok(out)
}

fn parse_events(v: &Value, at: &str) -> Result<Vec<FleetEvent>, ScenarioError> {
    let arr = want_arr(v, at)?;
    if arr.len() > 16 {
        return Err(serr(at, "events are capped at 16 per phase"));
    }
    let mut out = Vec::with_capacity(arr.len());
    for (i, ev) in arr.iter().enumerate() {
        let eat = format!("{at}[{i}]");
        want_obj(ev, &eat)?;
        let at_ms =
            opt_u64(ev, "at_ms", &eat)?.ok_or_else(|| serr(format!("{eat}.at_ms"), "missing"))?;
        let kill = ev
            .get("kill_shard")
            .ok_or_else(|| serr(&eat, "unknown event: only kill_shard is supported"))?;
        let kat = format!("{eat}.kill_shard");
        want_obj(kill, &kat)?;
        let victim = if let Some(shard) = opt_u64(kill, "shard", &kat)? {
            Victim::Shard(shard)
        } else if let Some(owner) = kill.get("owner_of") {
            let oat = format!("{kat}.owner_of");
            want_obj(owner, &oat)?;
            Victim::OwnerOf {
                bench: req_str(owner, "bench", &oat)?,
                params: owner.get("params").and_then(Value::as_str).unwrap_or("").to_string(),
                arch: owner.get("arch").and_then(Value::as_str).unwrap_or("").to_string(),
            }
        } else {
            return Err(serr(kat, "kill_shard needs a shard id or an owner_of cell"));
        };
        out.push(FleetEvent { at_ms, victim, wipe_snapshot: opt_bool(ev, "wipe_snapshot", &eat)? });
    }
    out.sort_by_key(|e| e.at_ms);
    Ok(out)
}

fn parse_slos(v: &Value, at: &str) -> Result<Vec<Slo>, ScenarioError> {
    let arr = want_arr(v, at)?;
    if arr.len() > 64 {
        return Err(serr(at, "slos are capped at 64 entries"));
    }
    let mut out = Vec::with_capacity(arr.len());
    for (i, slo) in arr.iter().enumerate() {
        let sat = format!("{at}[{i}]");
        want_obj(slo, &sat)?;
        let phase = match slo.get("phase").and_then(Value::as_str) {
            None | Some("all") => None,
            Some(name) => Some(name.to_string()),
        };
        let parsed = Slo {
            name: req_str(slo, "name", &sat)?,
            phase,
            max_p50_ms: opt_f64(slo, "max_p50_ms", &sat)?,
            max_p99_ms: opt_f64(slo, "max_p99_ms", &sat)?,
            min_hit_rate: opt_f64(slo, "min_hit_rate", &sat)?,
            min_success_rate: opt_f64(slo, "min_success_rate", &sat)?,
            min_trace_hits: opt_u64(slo, "min_trace_hits", &sat)?,
        };
        if !parsed.has_gate() {
            return Err(serr(sat, "slo asserts nothing: set at least one gate"));
        }
        out.push(parsed);
    }
    Ok(out)
}

impl Scenario {
    /// Parse and validate a scenario file. Size, version, and every field
    /// are checked; failures are structured [`ScenarioError`]s.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        if text.len() > MAX_SCENARIO_BYTES {
            return Err(serr(
                "$",
                format!("scenario file is {} bytes; the cap is {MAX_SCENARIO_BYTES}", text.len()),
            ));
        }
        let root = json::parse(text)
            .map_err(|e| serr("$", format!("invalid JSON at byte {}: {}", e.at, e.reason)))?;
        want_obj(&root, "$")?;
        let version = opt_u64(&root, "version", "$")?
            .ok_or_else(|| serr("$.version", "missing scenario version"))?;
        if version != SCENARIO_VERSION {
            return Err(serr(
                "$.version",
                format!(
                    "unknown scenario version {version} (this build speaks {SCENARIO_VERSION})"
                ),
            ));
        }
        let name = req_str(&root, "name", "$")?;
        let connections = opt_u64(&root, "connections", "$")?.unwrap_or(4);
        if connections == 0 || connections > 256 {
            return Err(serr("$.connections", "connections must be in 1..=256"));
        }
        let max_inflight = opt_u64(&root, "inflight", "$")?.unwrap_or(1);
        if max_inflight == 0 || max_inflight > 64 {
            return Err(serr("$.inflight", "inflight must be in 1..=64"));
        }
        let retries = opt_u64(&root, "retries", "$")?.unwrap_or(0);
        if retries > 16 {
            return Err(serr("$.retries", "retries are capped at 16"));
        }
        let mix = parse_mix(
            root.get("mix").ok_or_else(|| serr("$.mix", "missing workload mix"))?,
            "$.mix",
        )?;
        let phases_v = want_arr(
            root.get("phases").ok_or_else(|| serr("$.phases", "missing phases"))?,
            "$.phases",
        )?;
        if phases_v.is_empty() {
            return Err(serr("$.phases", "a scenario needs at least one phase"));
        }
        if phases_v.len() > 32 {
            return Err(serr("$.phases", "phases are capped at 32"));
        }
        let mut phases = Vec::with_capacity(phases_v.len());
        for (i, phase) in phases_v.iter().enumerate() {
            let pat = format!("$.phases[{i}]");
            want_obj(phase, &pat)?;
            let duration_ms = opt_u64(phase, "duration_ms", &pat)?
                .ok_or_else(|| serr(format!("{pat}.duration_ms"), "missing"))?;
            if duration_ms == 0 || duration_ms > 3_600_000 {
                return Err(serr(
                    format!("{pat}.duration_ms"),
                    "duration_ms must be in 1..=3600000",
                ));
            }
            let name = req_str(phase, "name", &pat)?;
            if phases.iter().any(|p: &Phase| p.name == name) {
                return Err(serr(format!("{pat}.name"), format!("duplicate phase name {name:?}")));
            }
            phases.push(Phase {
                name,
                duration_ms,
                pattern: parse_pattern(
                    phase
                        .get("pattern")
                        .ok_or_else(|| serr(format!("{pat}.pattern"), "missing"))?,
                    &format!("{pat}.pattern"),
                )?,
                reconnect: opt_bool(phase, "reconnect", &pat)?,
                mix: match phase.get("mix") {
                    None | Some(Value::Null) => None,
                    Some(m) => Some(parse_mix(m, &format!("{pat}.mix"))?),
                },
                events: match phase.get("events") {
                    None | Some(Value::Null) => Vec::new(),
                    Some(e) => parse_events(e, &format!("{pat}.events"))?,
                },
            });
            let phase_ref = phases.last().expect("just pushed");
            for (j, ev) in phase_ref.events.iter().enumerate() {
                if ev.at_ms > phase_ref.duration_ms {
                    return Err(serr(
                        format!("{pat}.events[{j}].at_ms"),
                        "event fires after the phase ends",
                    ));
                }
            }
        }
        let slos = match root.get("slos") {
            None | Some(Value::Null) => Vec::new(),
            Some(s) => parse_slos(s, "$.slos")?,
        };
        for (i, slo) in slos.iter().enumerate() {
            if let Some(phase) = &slo.phase {
                if !phases.iter().any(|p| &p.name == phase) {
                    return Err(serr(
                        format!("$.slos[{i}].phase"),
                        format!("references unknown phase {phase:?}"),
                    ));
                }
            }
        }
        Ok(Scenario {
            name,
            seed: opt_u64(&root, "seed", "$")?.unwrap_or(0),
            connections: connections as usize,
            max_inflight: max_inflight as usize,
            max_attempts: retries as u32 + 1,
            backoff_base_ms: opt_u64(&root, "backoff_base_ms", "$")?.unwrap_or(5),
            backoff_cap_ms: opt_u64(&root, "backoff_cap_ms", "$")?.unwrap_or(200),
            late_threshold_ms: opt_u64(&root, "late_threshold_ms", "$")?.unwrap_or(1),
            mix,
            phases,
            slos,
        })
    }

    /// The mix a given phase samples from (its override, else the
    /// scenario-level mix).
    pub fn effective_mix(&self, phase_index: usize) -> &[MixEntry] {
        self.phases[phase_index].mix.as_deref().unwrap_or(&self.mix)
    }

    /// Expand the scenario into a fully materialized plan under
    /// `seed_override` (or the file's own seed). Same seed ⇒ identical
    /// plan, byte for byte.
    pub fn plan(&self, seed_override: Option<u64>) -> Result<ScenarioPlan, ScenarioError> {
        let seed = seed_override.unwrap_or(self.seed);
        let engine = PatternEngine::new(seed);
        // Mix sampling uses its own stream so adding a phase never
        // perturbs arrival times, and vice versa.
        let mut mix_rng = Rng::seed_from_u64(crate::stream_seed(seed, 0xA11C));
        let mut grid_cursor = 0u64;
        let mut phases = Vec::with_capacity(self.phases.len());
        for (i, phase) in self.phases.iter().enumerate() {
            let times = engine
                .phase_arrivals(i, &phase.pattern, phase.duration_ms)
                .map_err(|e| serr(format!("$.phases[{i}].pattern"), e.message))?;
            let mix = self.effective_mix(i);
            let total_weight: f64 = mix.iter().map(|m| m.weight).sum();
            let mut arrivals = Vec::with_capacity(times.len());
            for at_us in times {
                let mut pick = mix_rng.gen_f64() * total_weight;
                let mut entry = mix.len() - 1;
                for (j, m) in mix.iter().enumerate() {
                    if pick < m.weight {
                        entry = j;
                        break;
                    }
                    pick -= m.weight;
                }
                let grid_cursor_val = if matches!(mix[entry].cell, MixCell::Grid) {
                    let v = grid_cursor;
                    grid_cursor += 1;
                    Some(v)
                } else {
                    None
                };
                arrivals.push(PlannedArrival {
                    at_us,
                    mix_entry: entry,
                    grid_cursor: grid_cursor_val,
                });
            }
            phases.push(PhasePlan {
                name: phase.name.clone(),
                duration_us: phase.duration_ms * 1000,
                reconnect: phase.reconnect,
                arrivals,
                events: phase.events.clone(),
            });
        }
        Ok(ScenarioPlan { seed, phases })
    }
}

/// One materialized arrival: when, and which mix entry it samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedArrival {
    /// Offset from phase start, µs.
    pub at_us: u64,
    /// Index into the phase's effective mix.
    pub mix_entry: usize,
    /// For [`MixCell::Grid`] entries, the round-robin cursor this arrival
    /// consumed (the runner maps it onto the 42-cell grid).
    pub grid_cursor: Option<u64>,
}

/// One phase of an expanded plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePlan {
    /// Phase name.
    pub name: String,
    /// Phase length, µs.
    pub duration_us: u64,
    /// Re-dial every lane at phase start.
    pub reconnect: bool,
    /// Sorted arrivals.
    pub arrivals: Vec<PlannedArrival>,
    /// Scripted fleet events (sorted by `at_ms`).
    pub events: Vec<FleetEvent>,
}

impl PhasePlan {
    /// Split this phase's arrivals over `lanes` connections round-robin in
    /// arrival order (arrival `i` → lane `i % lanes`), returning each
    /// lane's `(arrival_index, at_us)` slice. Round-robin in time order
    /// keeps per-lane load even under every pattern shape.
    pub fn lane_slices(&self, lanes: usize) -> Vec<Vec<(usize, u64)>> {
        let mut out = vec![Vec::new(); lanes.max(1)];
        for (i, a) in self.arrivals.iter().enumerate() {
            out[i % lanes.max(1)].push((i, a.at_us));
        }
        out
    }
}

/// A fully expanded, seed-deterministic scenario plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPlan {
    /// The seed the plan was expanded under.
    pub seed: u64,
    /// One entry per scenario phase.
    pub phases: Vec<PhasePlan>,
}
