//! Scenario-file parsing: defaults, structured rejections, and a
//! seeded-mutation fuzz loop. A scenario file is untrusted input — every
//! failure in here must be a `ScenarioError`, never a panic.

use revel_isa::Rng;
use revel_traffic::scenario::{MixCell, Scenario, Victim, MAX_SCENARIO_BYTES};

const VALID: &str = r#"{
  "version": 1,
  "name": "demo",
  "seed": 9,
  "connections": 8,
  "inflight": 2,
  "retries": 3,
  "mix": [
    {"weight": 3, "bench": "solver", "params": "n=12", "arch": "revel"},
    {"weight": 1, "grid": true},
    {"bench": "fft", "params": "n=64", "arch": "revel", "batch": 8}
  ],
  "phases": [
    {"name": "warm", "duration_ms": 2000, "pattern": {"kind": "constant", "rps": 40}},
    {"name": "storm", "duration_ms": 1500, "reconnect": true,
     "pattern": {"kind": "burst", "count": 20, "every_ms": 300, "spread_ms": 10},
     "events": [{"at_ms": 700, "kill_shard": {"shard": 0}, "wipe_snapshot": true}]},
    {"name": "owner", "duration_ms": 500, "pattern": {"kind": "silence"},
     "events": [{"at_ms": 100,
                 "kill_shard": {"owner_of": {"bench": "qr", "params": "n=12", "arch": "revel"}}}]}
  ],
  "slos": [
    {"name": "tail", "phase": "storm", "max_p99_ms": 1500},
    {"name": "served", "phase": "all", "min_success_rate": 0.995}
  ]
}"#;

#[test]
fn valid_scenario_parses_with_defaults() {
    let s = Scenario::parse(VALID).expect("valid scenario");
    assert_eq!(s.name, "demo");
    assert_eq!(s.seed, 9);
    assert_eq!(s.connections, 8);
    assert_eq!(s.max_inflight, 2);
    assert_eq!(s.max_attempts, 4, "retries 3 = 4 attempts");
    assert_eq!(s.backoff_base_ms, 5, "default backoff base");
    assert_eq!(s.backoff_cap_ms, 200, "default backoff cap");
    assert_eq!(s.mix.len(), 3);
    assert_eq!(s.mix[2].weight, 1.0, "weight defaults to 1");
    assert!(matches!(s.mix[1].cell, MixCell::Grid));
    assert!(matches!(&s.mix[2].cell, MixCell::Cell { batch: 8, .. }));
    assert_eq!(s.phases.len(), 3);
    assert!(s.phases[1].reconnect);
    assert_eq!(s.phases[1].events.len(), 1);
    assert!(s.phases[1].events[0].wipe_snapshot);
    assert!(matches!(s.phases[1].events[0].victim, Victim::Shard(0)));
    assert!(
        matches!(&s.phases[2].events[0].victim, Victim::OwnerOf { bench, .. } if bench == "qr")
    );
    assert_eq!(s.slos.len(), 2);
    assert_eq!(s.slos[0].phase.as_deref(), Some("storm"));
    assert_eq!(s.slos[1].phase, None, "phase \"all\" means the whole run");
}

#[test]
fn plan_is_seed_deterministic() {
    let s = Scenario::parse(VALID).unwrap();
    let a = s.plan(None).unwrap();
    let b = s.plan(None).unwrap();
    assert_eq!(a, b, "same seed must expand to an identical plan");
    let c = s.plan(Some(1234)).unwrap();
    assert_eq!(c.seed, 1234);
    assert_ne!(a.phases[0].arrivals, c.phases[0].arrivals, "seed override must change the plan");
}

/// Each case: (mutation of the valid file, substring the error must carry).
fn rejection_cases() -> Vec<(String, &'static str)> {
    vec![
        (VALID.replace("\"version\": 1", "\"version\": 2"), "version"),
        (VALID.replace("\"version\": 1,", ""), "version"),
        (VALID.replace("\"name\": \"demo\",", ""), "name"),
        (
            VALID.replace("\"kind\": \"constant\", \"rps\": 40", "\"kind\": \"warp\""),
            "unknown pattern",
        ),
        (VALID.replace("\"rps\": 40", "\"rps\": -3"), "rate"),
        (VALID.replace("\"duration_ms\": 2000", "\"duration_ms\": 0"), "duration_ms"),
        (VALID.replace("\"connections\": 8", "\"connections\": 0"), "connections"),
        (VALID.replace("\"connections\": 8", "\"connections\": 9999"), "connections"),
        (VALID.replace("\"retries\": 3", "\"retries\": 99"), "retries"),
        (VALID.replace("\"weight\": 3", "\"weight\": -1"), "weight"),
        (VALID.replace("\"batch\": 8", "\"batch\": 99999"), "batch"),
        (VALID.replace("\"at_ms\": 700", "\"at_ms\": 5000"), "after the phase ends"),
        (
            VALID.replace(
                "{\"name\": \"tail\", \"phase\": \"storm\", \"max_p99_ms\": 1500}",
                "{\"name\": \"tail\", \"phase\": \"storm\"}",
            ),
            "asserts nothing",
        ),
        (VALID.replace("\"phase\": \"storm\"", "\"phase\": \"nope\""), "unknown phase"),
        (VALID.replace("\"name\": \"warm\"", "\"name\": \"storm\""), "duplicate phase"),
        (VALID.replace("\"shard\": 0", "\"ship\": 0"), "kill_shard"),
        ("not json at all".to_string(), "invalid JSON"),
        ("[1, 2, 3]".to_string(), "expected an object"),
        ("{\"version\": 1, \"name\": \"x\", \"mix\": [], \"phases\": []}".to_string(), "mix"),
    ]
}

#[test]
fn malformed_scenarios_reject_with_structured_errors() {
    for (text, needle) in rejection_cases() {
        let err = Scenario::parse(&text)
            .expect_err(&format!("must reject (wanted {needle:?}): {text:.120}"));
        let msg = err.to_string();
        assert!(
            msg.contains(needle),
            "error {msg:?} does not mention {needle:?} for mutation {text:.120}"
        );
        assert!(msg.starts_with("scenario error at "), "unstructured error: {msg}");
    }
}

#[test]
fn oversized_scenario_is_rejected_before_parsing() {
    let huge = format!("{{\"pad\": \"{}\"}}", "x".repeat(MAX_SCENARIO_BYTES));
    let err = Scenario::parse(&huge).unwrap_err();
    assert!(err.reason.contains("cap"), "unexpected: {err}");
}

#[test]
fn arrival_blowup_is_rejected_at_plan_time() {
    // Parses fine, but 1e6 rps × 3600s explodes the arrival cap: plan()
    // must return an error, not allocate gigabytes.
    let text = VALID
        .replace("\"rps\": 40", "\"rps\": 1000000")
        .replace("\"duration_ms\": 2000", "\"duration_ms\": 3600000");
    let s = Scenario::parse(&text).expect("parse is cheap; the cap bites at plan time");
    let err = s.plan(None).unwrap_err();
    assert!(err.reason.contains("cap"), "unexpected: {err}");
}

/// 10k seeded mutations of the valid file: random byte edits, truncations,
/// and splices. Parsing must return `Ok` or `Err` — any panic fails the
/// test (and would break `--scenario` on hostile input).
#[test]
fn fuzz_lite_mutations_never_panic() {
    let base = VALID.as_bytes();
    let mut rng = Rng::seed_from_u64(0xF022_BEEF);
    for _ in 0..10_000 {
        let mut bytes = base.to_vec();
        match rng.gen_index(4) {
            0 => {
                // Flip a handful of bytes.
                for _ in 0..=rng.gen_index(8) {
                    let i = rng.gen_index(bytes.len());
                    bytes[i] = (rng.gen_f64() * 255.0) as u8;
                }
            }
            1 => {
                // Truncate.
                bytes.truncate(rng.gen_index(bytes.len()));
            }
            2 => {
                // Splice a chunk onto a random prefix.
                let cut = rng.gen_index(bytes.len());
                let from = rng.gen_index(bytes.len());
                let len = rng.gen_index(bytes.len() - from);
                let chunk = base[from..from + len].to_vec();
                bytes.truncate(cut);
                bytes.extend_from_slice(&chunk);
            }
            _ => {
                // Duplicate a random infix in place.
                let from = rng.gen_index(bytes.len());
                let len = rng.gen_index((bytes.len() - from).min(64));
                let chunk = base[from..from + len].to_vec();
                let at = rng.gen_index(bytes.len());
                for (k, b) in chunk.into_iter().enumerate() {
                    bytes.insert(at + k, b);
                }
            }
        }
        let text = String::from_utf8_lossy(&bytes);
        // Ok or Err are both fine; planning a surviving parse must also
        // hold (it allocates bounded by the arrival cap).
        if let Ok(s) = Scenario::parse(&text) {
            let _ = s.plan(Some(1));
        }
    }
}
