//! Lane state-machine tests under a fake clock: coordinated-omission
//! accounting, in-flight caps, retry backoff, and determinism — no
//! sockets, no sleeping.

use revel_traffic::lane::{Action, Lane, LaneCfg, Outcome, ReplyClass};

fn cfg(max_inflight: usize, max_attempts: u32) -> LaneCfg {
    LaneCfg {
        max_inflight,
        max_attempts,
        backoff_base_ms: 5,
        backoff_cap_ms: 200,
        late_threshold_us: 1_000,
    }
}

/// Drive a lane against a scripted server with fixed reply latency,
/// returning the sequence of (slot, attempt) sends.
fn drive(
    lane: &mut Lane,
    reply_latency_us: u64,
    classify: impl Fn(usize, u32) -> ReplyClass,
) -> Vec<(usize, u32)> {
    let mut now = 0u64;
    let mut sends = Vec::new();
    // (ready_at, slot, attempt) of in-flight replies, FIFO.
    let mut wire: Vec<(u64, usize, u32)> = Vec::new();
    for _ in 0..100_000 {
        match lane.next_action(now) {
            Action::Send { slot, attempt } => {
                lane.on_sent(now);
                sends.push((slot, attempt));
                wire.push((now + reply_latency_us, slot, attempt));
            }
            Action::Recv { wait_until_us } => {
                let (ready, slot, attempt) = wire[0];
                match wait_until_us {
                    // Wake early for a pending send — unless time already
                    // reached it (the lane is at its cap and can only make
                    // progress by draining the reply).
                    Some(t) if t < ready && now < t => now = t,
                    _ => {
                        now = now.max(ready);
                        wire.remove(0);
                        lane.on_reply(classify(slot, attempt), now);
                    }
                }
            }
            Action::Sleep { until_us } => now = now.max(until_us),
            Action::Done => return sends,
        }
    }
    panic!("lane did not finish");
}

#[test]
fn sends_follow_the_plan_in_order() {
    let planned = vec![0, 10_000, 20_000, 30_000];
    let mut lane = Lane::new(cfg(1, 1), 1, planned.clone());
    let sends = drive(&mut lane, 500, |_, _| ReplyClass::Final(Outcome::Ok));
    assert_eq!(sends, vec![(0, 1), (1, 1), (2, 1), (3, 1)]);
    let comps = lane.completions();
    assert_eq!(comps.len(), 4);
    for (i, c) in comps.iter().enumerate() {
        assert_eq!(c.slot, i);
        assert_eq!(c.intended_us, planned[i]);
        assert_eq!(c.outcome, Outcome::Ok);
        assert_eq!(c.latency_us(), 500, "fast server, on-time sends: latency is the RTT");
    }
    assert_eq!(lane.late_sends(), 0);
}

#[test]
fn coordinated_omission_latency_from_intended_time() {
    // Three arrivals 1ms apart, one connection, server takes 10ms per
    // reply: sends 2 and 3 are forced late. Latency must stretch from the
    // *intended* slot, not the actual (late) send.
    let mut lane = Lane::new(cfg(1, 1), 1, vec![0, 1_000, 2_000]);
    let sends = drive(&mut lane, 10_000, |_, _| ReplyClass::Final(Outcome::Ok));
    assert_eq!(sends.len(), 3);
    let comps = lane.completions();
    // Slot 0: sent at 0, done at 10ms → 10ms.
    assert_eq!(comps[0].latency_us(), 10_000);
    // Slot 1: intended 1ms, sent 10ms, done 20ms → 19ms (not 10ms).
    assert_eq!(comps[1].latency_us(), 19_000);
    // Slot 2: intended 2ms, sent 20ms, done 30ms → 28ms.
    assert_eq!(comps[2].latency_us(), 28_000);
    assert_eq!(lane.late_sends(), 2, "slots 1 and 2 slipped past the 1ms threshold");
}

#[test]
fn inflight_cap_is_respected() {
    // 10 arrivals all due at t=0, cap 3: the lane must never hold more
    // than 3 on the wire.
    let mut lane = Lane::new(cfg(3, 1), 1, vec![0; 10]);
    let mut now = 0u64;
    let mut wire: Vec<u64> = Vec::new();
    let mut peak = 0usize;
    loop {
        match lane.next_action(now) {
            Action::Send { .. } => {
                lane.on_sent(now);
                wire.push(now + 5_000);
                peak = peak.max(lane.inflight());
                assert!(lane.inflight() <= 3, "in-flight cap breached");
            }
            Action::Recv { .. } => {
                now = now.max(wire.remove(0));
                lane.on_reply(ReplyClass::Final(Outcome::Ok), now);
            }
            Action::Sleep { until_us } => now = now.max(until_us),
            Action::Done => break,
        }
    }
    assert_eq!(peak, 3, "the cap should actually be reached");
    assert_eq!(lane.completions().len(), 10);
}

#[test]
fn retryable_replies_back_off_and_eventually_succeed() {
    // First two attempts of every request bounce as overloaded.
    let mut lane = Lane::new(cfg(1, 4), 7, vec![0, 1_000]);
    let sends = drive(&mut lane, 100, |_, attempt| {
        if attempt < 3 {
            ReplyClass::Retryable { outcome: Outcome::Overloaded, hint_ms: None }
        } else {
            ReplyClass::Final(Outcome::Ok)
        }
    });
    assert_eq!(sends.len(), 6, "2 requests × 3 attempts");
    assert_eq!(lane.retries(), 4);
    for c in lane.completions() {
        assert_eq!(c.outcome, Outcome::Ok);
        assert_eq!(c.attempts, 3);
    }
}

#[test]
fn retries_exhaust_to_the_retryable_outcome() {
    let mut lane = Lane::new(cfg(1, 3), 7, vec![0]);
    drive(&mut lane, 100, |_, _| ReplyClass::Retryable {
        outcome: Outcome::Overloaded,
        hint_ms: Some(10),
    });
    let comps = lane.completions();
    assert_eq!(comps.len(), 1);
    assert_eq!(comps[0].outcome, Outcome::Overloaded);
    assert_eq!(comps[0].attempts, 3);
    // Backoff with a 10ms hint floor, two waits: at least 20ms of delay.
    assert!(comps[0].done_us >= 20_000, "hinted backoff not respected: {}", comps[0].done_us);
}

#[test]
fn backoff_is_seed_deterministic_and_decorrelated() {
    let run = |seed: u64| {
        let mut lane = Lane::new(cfg(1, 5), seed, vec![0]);
        drive(&mut lane, 100, |_, _| ReplyClass::Retryable {
            outcome: Outcome::Error,
            hint_ms: None,
        });
        lane.completions()[0].done_us
    };
    assert_eq!(run(42), run(42), "same seed, same jittered backoff schedule");
    assert_ne!(run(42), run(43), "different seeds must decorrelate jitter");
}

#[test]
fn transport_error_retries_then_errors_out() {
    // max_attempts 2: a transport error after the first send reschedules;
    // a second transport error (attempts exhausted) completes as Error.
    let mut lane = Lane::new(cfg(1, 2), 1, vec![0]);
    let mut now = 0;
    let Action::Send { .. } = lane.next_action(now) else { panic!("expected send") };
    lane.on_sent(now);
    lane.on_transport_error(now);
    assert!(lane.completions().is_empty(), "one attempt left: must retry, not complete");
    // The retry is scheduled with backoff; skip to it.
    now = 1_000_000;
    let Action::Send { slot: 0, attempt: 2 } = lane.next_action(now) else {
        panic!("expected retry send")
    };
    lane.on_sent(now);
    lane.on_transport_error(now);
    let comps = lane.completions();
    assert_eq!(comps.len(), 1);
    assert_eq!(comps[0].outcome, Outcome::Error);
    assert_eq!(comps[0].attempts, 2);
    assert!(matches!(lane.next_action(now), Action::Done));
}

#[test]
fn unsent_flight_survives_a_write_failure() {
    // A write failure between Send and on_sent must not lose the request
    // or count an attempt.
    let mut lane = Lane::new(cfg(1, 2), 1, vec![0]);
    let Action::Send { slot: 0, attempt: 1 } = lane.next_action(0) else { panic!("expected send") };
    lane.on_transport_error(0);
    // Attempt was never consumed: the redo is still attempt 1.
    let retry_at = match lane.next_action(0) {
        Action::Send { slot: 0, attempt: 1 } => 0,
        Action::Sleep { until_us } => until_us,
        other => panic!("unexpected {other:?}"),
    };
    let Action::Send { slot: 0, attempt: 1 } = lane.next_action(retry_at) else {
        panic!("expected the requeued first attempt")
    };
}

#[test]
fn abort_accounts_for_the_whole_plan() {
    let mut lane = Lane::new(cfg(2, 3), 1, vec![0, 0, 5_000, 10_000]);
    // Two on the wire, two never sent.
    let Action::Send { .. } = lane.next_action(0) else { panic!() };
    lane.on_sent(0);
    let Action::Send { .. } = lane.next_action(0) else { panic!() };
    lane.on_sent(0);
    lane.abort(1_000);
    let comps = lane.completions();
    assert_eq!(comps.len(), 4, "abort must account for in-flight AND unsent requests");
    assert!(comps.iter().all(|c| c.outcome == Outcome::Error));
    assert!(matches!(lane.next_action(2_000), Action::Done));
}

#[test]
fn retries_outrank_fresh_sends() {
    // A retry due at the same instant as a fresh arrival goes first (it
    // is older work). A 300ms hint above the 200ms cap pins the backoff
    // to exactly 300ms (hint is a floor), making the tie constructible.
    let mut lane = Lane::new(cfg(1, 2), 1, vec![0, 300_050]);
    let Action::Send { slot: 0, .. } = lane.next_action(0) else { panic!() };
    lane.on_sent(0);
    lane.on_reply(ReplyClass::Retryable { outcome: Outcome::Overloaded, hint_ms: Some(300) }, 50);
    // Both the retry (due 300_050) and the fresh arrival (due 300_050)
    // are now runnable; the retry must go first.
    let Action::Send { slot: 0, attempt: 2 } = lane.next_action(1_000_000) else {
        panic!("retry must outrank the fresh send")
    };
}
