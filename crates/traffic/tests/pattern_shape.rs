//! Shape and determinism tests for the arrival-pattern engine — pure
//! simulated time, no sockets, no sleeping.

use revel_traffic::pattern::{PatternEngine, PatternKind};

fn arrivals(seed: u64, pattern: &PatternKind, duration_ms: u64) -> Vec<u64> {
    PatternEngine::new(seed).phase_arrivals(0, pattern, duration_ms).expect("valid pattern")
}

#[test]
fn same_seed_same_arrivals() {
    let patterns = [
        PatternKind::Constant { rps: 37.0 },
        PatternKind::Poisson { rps: 120.0 },
        PatternKind::Burst { count: 50, every_ms: 250, spread_ms: 40 },
        PatternKind::Ramp { from_rps: 5.0, to_rps: 90.0 },
        PatternKind::Diurnal { base_rps: 40.0, amplitude_rps: 30.0, period_ms: 2_000 },
        PatternKind::Overlay {
            parts: vec![
                PatternKind::Constant { rps: 10.0 },
                PatternKind::Poisson { rps: 25.0 },
                PatternKind::Burst { count: 8, every_ms: 500, spread_ms: 20 },
            ],
        },
    ];
    for pat in &patterns {
        let a = arrivals(99, pat, 10_000);
        let b = arrivals(99, pat, 10_000);
        assert_eq!(a, b, "same seed must reproduce byte-identical arrivals for {pat:?}");
        assert!(!a.is_empty(), "{pat:?} produced no arrivals over 10s");
    }
}

#[test]
fn different_phase_different_stream() {
    let engine = PatternEngine::new(5);
    let pat = PatternKind::Poisson { rps: 200.0 };
    let a = engine.phase_arrivals(0, &pat, 5_000).unwrap();
    let b = engine.phase_arrivals(1, &pat, 5_000).unwrap();
    assert_ne!(a, b, "phases must draw from decorrelated streams");
}

#[test]
fn arrivals_sorted_and_in_range() {
    let pats = [
        PatternKind::Poisson { rps: 333.0 },
        PatternKind::Burst { count: 100, every_ms: 100, spread_ms: 90 },
        PatternKind::Diurnal { base_rps: 100.0, amplitude_rps: 99.0, period_ms: 700 },
        PatternKind::Ramp { from_rps: 0.0, to_rps: 500.0 },
    ];
    for pat in &pats {
        let a = arrivals(3, pat, 4_000);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "{pat:?} arrivals unsorted");
        assert!(a.iter().all(|&t| t < 4_000_000), "{pat:?} arrival past phase end");
    }
}

#[test]
fn constant_rate_is_exact() {
    let a = arrivals(0, &PatternKind::Constant { rps: 50.0 }, 10_000);
    assert_eq!(a.len(), 500);
    // Evenly spaced: k-th arrival at k/rps.
    assert_eq!(a[0], 0);
    assert_eq!(a[1], 20_000);
    assert_eq!(a[250], 5_000_000);
}

#[test]
fn poisson_mean_rate_converges() {
    // 100 rps over 200 simulated seconds: 20k expected arrivals. A 5%
    // tolerance is ~11 standard deviations — this fails only if the
    // process is wrong, not by luck of the seed.
    let a = arrivals(21, &PatternKind::Poisson { rps: 100.0 }, 200_000);
    let expected = 20_000.0;
    let got = a.len() as f64;
    assert!(
        (got - expected).abs() / expected < 0.05,
        "poisson offered {got} arrivals, expected ~{expected}"
    );
}

#[test]
fn burst_count_and_spread() {
    // 10 trains of 30 over 5s.
    let a = arrivals(8, &PatternKind::Burst { count: 30, every_ms: 500, spread_ms: 50 }, 5_000);
    assert_eq!(a.len(), 300);
    // Every arrival stays within its train's spread window.
    for (i, &t) in a.iter().enumerate() {
        let train = i / 30;
        let base = train as u64 * 500_000;
        assert!(t >= base && t < base + 50_000 + 1_000, "arrival {i} at {t} out of train {train}");
    }
}

#[test]
fn ramp_mean_rate_and_monotone_density() {
    // 10 → 110 rps over 100s: mean 60 rps ⇒ ~6000 arrivals, exact for the
    // deterministic quadratic inversion.
    let a = arrivals(0, &PatternKind::Ramp { from_rps: 10.0, to_rps: 110.0 }, 100_000);
    let got = a.len() as f64;
    assert!((got - 6_000.0).abs() < 60.0, "ramp offered {got}, expected ~6000");
    // The second half must hold more arrivals than the first.
    let half = a.iter().filter(|&&t| t < 50_000_000).count();
    assert!(
        (a.len() - half) > half + a.len() / 10,
        "ramp density not increasing: {half} early vs {} late",
        a.len() - half
    );
}

#[test]
fn diurnal_mean_rate_converges() {
    // Sine around 50 rps integrates to the base rate over whole periods:
    // 60s of 2s periods ⇒ ~3000 arrivals.
    let pat = PatternKind::Diurnal { base_rps: 50.0, amplitude_rps: 40.0, period_ms: 2_000 };
    let a = arrivals(17, &pat, 60_000);
    let got = a.len() as f64;
    assert!((got - 3_000.0).abs() / 3_000.0 < 0.08, "diurnal offered {got}, expected ~3000");
}

#[test]
fn replay_speedup_compresses_offsets() {
    let pat = PatternKind::Replay { offsets_ms: vec![0, 100, 400, 900], speedup: 2.0 };
    let a = arrivals(0, &pat, 1_000);
    assert_eq!(a, vec![0, 50_000, 200_000, 450_000]);
    // Offsets past the (sped-up) phase end are dropped.
    let pat = PatternKind::Replay { offsets_ms: vec![0, 100, 2_500], speedup: 1.0 };
    assert_eq!(arrivals(0, &pat, 1_000).len(), 2);
}

#[test]
fn overlay_sums_its_parts() {
    let constant = PatternKind::Constant { rps: 20.0 };
    let burst = PatternKind::Burst { count: 10, every_ms: 1_000, spread_ms: 0 };
    let overlay = PatternKind::Overlay { parts: vec![constant.clone(), burst.clone()] };
    let a = arrivals(4, &overlay, 10_000);
    let c = arrivals(4, &constant, 10_000);
    let b = arrivals(4, &burst, 10_000);
    assert_eq!(a.len(), c.len() + b.len());
    assert!(a.windows(2).all(|w| w[0] <= w[1]), "overlay must merge sorted");
}

#[test]
fn silence_is_silent() {
    assert!(arrivals(1, &PatternKind::Silence, 60_000).is_empty());
}

#[test]
fn invalid_patterns_are_rejected() {
    let bad = [
        PatternKind::Constant { rps: -1.0 },
        PatternKind::Constant { rps: f64::NAN },
        PatternKind::Poisson { rps: 2e6 },
        PatternKind::Burst { count: 10, every_ms: 0, spread_ms: 0 },
        PatternKind::Burst { count: 10, every_ms: 100, spread_ms: 100 },
        PatternKind::Diurnal { base_rps: 10.0, amplitude_rps: 20.0, period_ms: 1_000 },
        PatternKind::Replay { offsets_ms: vec![0], speedup: 0.0 },
        PatternKind::Overlay { parts: vec![] },
        PatternKind::Overlay {
            parts: vec![PatternKind::Overlay { parts: vec![PatternKind::Silence] }],
        },
    ];
    for pat in &bad {
        assert!(pat.validate().is_err(), "{pat:?} must be rejected");
    }
}

#[test]
fn arrival_cap_is_enforced() {
    // 1e6 rps × 3600s would be 3.6e9 arrivals; the engine must refuse,
    // not allocate.
    let err = PatternEngine::new(0)
        .phase_arrivals(0, &PatternKind::Constant { rps: 1e6 }, 3_600_000)
        .unwrap_err();
    assert!(err.message.contains("cap"), "unexpected error: {}", err.message);
}
