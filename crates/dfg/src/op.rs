/// The functional-unit class an operation executes on.
///
/// The default REVEL lane provisions 14 adders, 9 multipliers and 3
/// divide/square-root units (Table III); the scheduler matches [`OpCode`]s
/// to PEs whose FU has the right class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Adder/ALU: add, sub, compares, select, min/max, reductions.
    Adder,
    /// Multiplier.
    Multiplier,
    /// Iterative divide / square-root unit (long latency, not fully
    /// pipelined).
    DivSqrt,
}

impl FuClass {
    /// All FU classes, in display order.
    pub const ALL: [FuClass; 3] = [FuClass::Adder, FuClass::Multiplier, FuClass::DivSqrt];
}

impl core::fmt::Display for FuClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            FuClass::Adder => "add",
            FuClass::Multiplier => "mul",
            FuClass::DivSqrt => "div/sqrt",
        };
        f.write_str(s)
    }
}

/// An operation executed by a processing element.
///
/// The set covers what the paper's seven linear-algebra kernels need:
/// arithmetic, divide/square-root (for factorizations), select/compare (for
/// rotations), and an in-fabric vector reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCode {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `sqrt(a)`
    Sqrt,
    /// `1 / sqrt(a)`
    Rsqrt,
    /// `1 / a`
    Recip,
    /// `-a`
    Neg,
    /// `|a|`
    Abs,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `1.0` if `a < b` else `0.0`
    CmpLt,
    /// `c != 0.0 ? a : b`
    Select,
    /// Identity / routing hop (register move).
    Mov,
    /// Sum of all valid vector lanes of `a`, broadcast to every lane.
    ReduceAdd,
    /// Packed single-precision complex add: each 64-bit word holds
    /// `(re: f32, im: f32)` (Table III's 2-way FP subword SIMD).
    CAdd,
    /// Packed complex subtract.
    CSub,
    /// Packed complex multiply.
    CMul,
}

/// Packs a single-precision complex number into a 64-bit word
/// (`re` in the low half, `im` in the high half).
pub fn pack_complex(re: f32, im: f32) -> f64 {
    let bits = (re.to_bits() as u64) | ((im.to_bits() as u64) << 32);
    f64::from_bits(bits)
}

/// Unpacks a single-precision complex number from a 64-bit word.
pub fn unpack_complex(w: f64) -> (f32, f32) {
    let bits = w.to_bits();
    (f32::from_bits(bits as u32), f32::from_bits((bits >> 32) as u32))
}

impl OpCode {
    /// Number of input operands.
    pub fn arity(&self) -> usize {
        match self {
            OpCode::Sqrt
            | OpCode::Rsqrt
            | OpCode::Recip
            | OpCode::Neg
            | OpCode::Abs
            | OpCode::Mov
            | OpCode::ReduceAdd => 1,
            OpCode::Select => 3,
            _ => 2,
        }
    }

    /// The FU class this op occupies.
    pub fn fu_class(&self) -> FuClass {
        match self {
            OpCode::Mul | OpCode::CMul => FuClass::Multiplier,
            OpCode::Div | OpCode::Sqrt | OpCode::Rsqrt | OpCode::Recip => FuClass::DivSqrt,
            _ => FuClass::Adder,
        }
    }

    /// Pipeline latency in cycles with the paper's default FU timings:
    /// adders 2 cycles, multipliers 4, divide/square-root 12 (Table III).
    pub fn latency(&self) -> u32 {
        match self.fu_class() {
            FuClass::Adder => 2,
            FuClass::Multiplier => 4,
            FuClass::DivSqrt => 12,
        }
    }

    /// Initiation interval: cycles between successive issues to the same FU.
    /// Divide/sqrt units accept a new operation every 5 cycles (Table III);
    /// everything else is fully pipelined.
    pub fn initiation_interval(&self) -> u32 {
        match self.fu_class() {
            FuClass::DivSqrt => 5,
            _ => 1,
        }
    }

    /// Scalar semantics of the op (vector semantics are elementwise except
    /// [`OpCode::ReduceAdd`], which the evaluator special-cases).
    pub fn apply(&self, args: &[f64]) -> f64 {
        debug_assert_eq!(args.len(), self.arity(), "{self:?} arity");
        match self {
            OpCode::Add => args[0] + args[1],
            OpCode::Sub => args[0] - args[1],
            OpCode::Mul => args[0] * args[1],
            OpCode::Div => args[0] / args[1],
            OpCode::Sqrt => args[0].sqrt(),
            OpCode::Rsqrt => 1.0 / args[0].sqrt(),
            OpCode::Recip => 1.0 / args[0],
            OpCode::Neg => -args[0],
            OpCode::Abs => args[0].abs(),
            OpCode::Min => args[0].min(args[1]),
            OpCode::Max => args[0].max(args[1]),
            OpCode::CmpLt => {
                if args[0] < args[1] {
                    1.0
                } else {
                    0.0
                }
            }
            OpCode::Select => {
                if args[2] != 0.0 {
                    args[0]
                } else {
                    args[1]
                }
            }
            OpCode::Mov | OpCode::ReduceAdd => args[0],
            OpCode::CAdd => {
                let (ar, ai) = unpack_complex(args[0]);
                let (br, bi) = unpack_complex(args[1]);
                pack_complex(ar + br, ai + bi)
            }
            OpCode::CSub => {
                let (ar, ai) = unpack_complex(args[0]);
                let (br, bi) = unpack_complex(args[1]);
                pack_complex(ar - br, ai - bi)
            }
            OpCode::CMul => {
                let (ar, ai) = unpack_complex(args[0]);
                let (br, bi) = unpack_complex(args[1]);
                pack_complex(ar * br - ai * bi, ar * bi + ai * br)
            }
        }
    }
}

impl core::fmt::Display for OpCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            OpCode::Add => "add",
            OpCode::Sub => "sub",
            OpCode::Mul => "mul",
            OpCode::Div => "div",
            OpCode::Sqrt => "sqrt",
            OpCode::Rsqrt => "rsqrt",
            OpCode::Recip => "recip",
            OpCode::Neg => "neg",
            OpCode::Abs => "abs",
            OpCode::Min => "min",
            OpCode::Max => "max",
            OpCode::CmpLt => "cmplt",
            OpCode::Select => "select",
            OpCode::Mov => "mov",
            OpCode::ReduceAdd => "redadd",
            OpCode::CAdd => "cadd",
            OpCode::CSub => "csub",
            OpCode::CMul => "cmul",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_class() {
        assert_eq!(OpCode::Add.arity(), 2);
        assert_eq!(OpCode::Sqrt.arity(), 1);
        assert_eq!(OpCode::Select.arity(), 3);
        assert_eq!(OpCode::Mul.fu_class(), FuClass::Multiplier);
        assert_eq!(OpCode::Rsqrt.fu_class(), FuClass::DivSqrt);
        assert_eq!(OpCode::CmpLt.fu_class(), FuClass::Adder);
    }

    #[test]
    fn latency_matches_table_iii() {
        assert_eq!(OpCode::Div.latency(), 12);
        assert_eq!(OpCode::Div.initiation_interval(), 5);
        assert_eq!(OpCode::Add.initiation_interval(), 1);
    }

    #[test]
    fn scalar_semantics() {
        assert_eq!(OpCode::Add.apply(&[2.0, 3.0]), 5.0);
        assert_eq!(OpCode::Sub.apply(&[2.0, 3.0]), -1.0);
        assert_eq!(OpCode::Div.apply(&[1.0, 4.0]), 0.25);
        assert_eq!(OpCode::Sqrt.apply(&[9.0]), 3.0);
        assert_eq!(OpCode::Rsqrt.apply(&[4.0]), 0.5);
        assert_eq!(OpCode::CmpLt.apply(&[1.0, 2.0]), 1.0);
        assert_eq!(OpCode::Select.apply(&[5.0, 6.0, 0.0]), 6.0);
        assert_eq!(OpCode::Select.apply(&[5.0, 6.0, 1.0]), 5.0);
        assert_eq!(OpCode::Min.apply(&[1.0, 2.0]), 1.0);
        assert_eq!(OpCode::Max.apply(&[1.0, 2.0]), 2.0);
        assert_eq!(OpCode::Abs.apply(&[-3.0]), 3.0);
        assert_eq!(OpCode::Neg.apply(&[-3.0]), 3.0);
        assert_eq!(OpCode::Recip.apply(&[8.0]), 0.125);
        assert_eq!(OpCode::Mov.apply(&[7.0]), 7.0);
    }

    #[test]
    fn packed_complex_ops() {
        let a = pack_complex(1.0, 2.0);
        let b = pack_complex(3.0, -1.0);
        let s = OpCode::CAdd.apply(&[a, b]);
        assert_eq!(unpack_complex(s), (4.0, 1.0));
        let d = OpCode::CSub.apply(&[a, b]);
        assert_eq!(unpack_complex(d), (-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        let p = OpCode::CMul.apply(&[a, b]);
        assert_eq!(unpack_complex(p), (5.0, 5.0));
        assert_eq!(OpCode::CMul.fu_class(), FuClass::Multiplier);
        assert_eq!(OpCode::CAdd.fu_class(), FuClass::Adder);
        assert_eq!(OpCode::CAdd.arity(), 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(OpCode::ReduceAdd.to_string(), "redadd");
        assert_eq!(FuClass::DivSqrt.to_string(), "div/sqrt");
    }
}
