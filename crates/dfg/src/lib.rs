//! # revel-dfg — inductive dataflow graphs
//!
//! Computation graphs for the REVEL hybrid systolic-dataflow architecture
//! (HPCA 2020). A [`Dfg`] is the *computation* half of a program region: a
//! DAG of functional-unit operations fed by input ports and draining to
//! output ports. The *communication* half (streams, rates) lives in
//! [`revel_isa`].
//!
//! Graphs here carry the two pieces of inductive-dataflow semantics that
//! matter inside the fabric:
//!
//! * **Stream predication** (§IV-A, Fig. 12): values are vectors of up to 8
//!   lanes with a predicate mask; lanes padded by a port on an inductive
//!   stream boundary are predicated off, the predicate propagates through
//!   ops, and memory writes ignore invalid lanes. See [`VecVal`].
//! * **Inductive accumulation**: an [`Node::Accum`] node sums across fires
//!   and emits/resets every `len(j)` fires where `len` is a
//!   [`revel_isa::RateFsm`] — the dependence-stream rate applied to a
//!   reduction.
//!
//! ```
//! use revel_dfg::{Dfg, OpCode, VecVal};
//! use revel_isa::{InPortId, OutPortId};
//!
//! // out = a * b (2-wide vector region)
//! let mut g = Dfg::new("mul");
//! let a = g.input(InPortId(0));
//! let b = g.input(InPortId(1));
//! let m = g.op(OpCode::Mul, &[a, b]);
//! g.output(m, OutPortId(0));
//!
//! let mut ev = g.evaluator(2);
//! let outs = ev.fire(&[VecVal::splat(3.0, 2), VecVal::splat(4.0, 2)]);
//! assert_eq!(outs[0].1.get(0), Some(12.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod graph;
mod op;
mod region;

pub use eval::{DfgEvaluator, VecVal, MAX_VEC_WIDTH};
pub use graph::{Dfg, DfgError, Node, NodeId};
pub use op::{pack_complex, unpack_complex, FuClass, OpCode};
pub use region::{Region, RegionId, RegionKind};
