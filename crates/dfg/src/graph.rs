use crate::{DfgEvaluator, FuClass, OpCode};
use revel_isa::{InPortId, OutPortId, RateFsm};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node within a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A node of an inductive dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Reads one vector per fire from an input port.
    Input {
        /// The port this node reads.
        port: InPortId,
        /// True if the node reads a scalar broadcast to every vector lane
        /// (the port runs at logical width 1 regardless of its hardware
        /// width); false for full-width vector operands.
        scalar: bool,
    },
    /// A compile-time constant, broadcast to every vector lane.
    Const {
        /// The constant value.
        value: f64,
    },
    /// A functional-unit operation.
    Op {
        /// The operation.
        op: OpCode,
        /// Argument nodes (must precede this node).
        args: Vec<NodeId>,
    },
    /// A stateful accumulator: adds its (vector-reduced) argument every
    /// fire; after `len(j)` fires it emits the sum and resets, with the
    /// outer index `j` advancing per emission. This is how reductions with
    /// inductively-shrinking trip counts (e.g. `i = j..n`) map onto a
    /// systolic PE's accumulator register.
    Accum {
        /// The value accumulated each fire.
        arg: NodeId,
        /// Fires per emission, as an inductive rate.
        len: RateFsm,
    },
    /// A per-lane vector accumulator: adds its argument elementwise every
    /// fire; after `len(j)` fires it emits the accumulated vector and
    /// resets. This maps a vectorized reduction-per-lane (e.g. GEMM's
    /// `c[j] += a_i · b[i,j]` over `i`, or FIR's tap accumulation) onto the
    /// systolic PEs' accumulator registers.
    AccumVec {
        /// The vector accumulated each fire.
        arg: NodeId,
        /// Fires per emission, as an inductive rate.
        len: RateFsm,
    },
    /// Drains one vector per fire to an output port.
    Output {
        /// The value node written out.
        arg: NodeId,
        /// The port this node writes.
        port: OutPortId,
    },
}

impl Node {
    /// Argument nodes of this node.
    pub fn args(&self) -> &[NodeId] {
        match self {
            Node::Input { .. } | Node::Const { .. } => &[],
            Node::Op { args, .. } => args,
            Node::Accum { arg, .. } | Node::AccumVec { arg, .. } | Node::Output { arg, .. } => {
                std::slice::from_ref(arg)
            }
        }
    }
}

/// Structural error detected by [`Dfg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// An op has the wrong number of arguments.
    BadArity {
        /// Offending node.
        node: NodeId,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        actual: usize,
    },
    /// Two input nodes read the same port.
    DuplicateInputPort {
        /// The port bound twice.
        port: InPortId,
    },
    /// Two output nodes write the same port.
    DuplicateOutputPort {
        /// The port bound twice.
        port: OutPortId,
    },
    /// The graph has no output and therefore no observable effect.
    NoOutput,
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::BadArity { node, expected, actual } => {
                write!(f, "node {} expects {expected} args, got {actual}", node.0)
            }
            DfgError::DuplicateInputPort { port } => {
                write!(f, "input port {port} bound to more than one node")
            }
            DfgError::DuplicateOutputPort { port } => {
                write!(f, "output port {port} bound to more than one node")
            }
            DfgError::NoOutput => write!(f, "graph has no output node"),
        }
    }
}

impl std::error::Error for DfgError {}

/// A dataflow computation graph.
///
/// Nodes are appended through the builder methods ([`Dfg::input`],
/// [`Dfg::op`], …) which only accept already-created nodes as arguments, so
/// a `Dfg` is topologically ordered by construction and acyclic by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
}

impl Dfg {
    /// Creates an empty graph with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Dfg { name: name.into(), nodes: Vec::new() }
    }

    /// The graph's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Adds a vector input node reading `port` at the region's full width.
    pub fn input(&mut self, port: InPortId) -> NodeId {
        self.push(Node::Input { port, scalar: false })
    }

    /// Adds a scalar input node: the port delivers one value per logical
    /// element, broadcast across the region's vector lanes (e.g. the pivot
    /// `b[j]` in the solver).
    pub fn input_scalar(&mut self, port: InPortId) -> NodeId {
        self.push(Node::Input { port, scalar: true })
    }

    /// Adds a constant node.
    pub fn konst(&mut self, value: f64) -> NodeId {
        self.push(Node::Const { value })
    }

    /// Adds an operation node.
    ///
    /// # Panics
    /// Panics if any argument id is not an existing node (which would break
    /// the topological-by-construction invariant).
    pub fn op(&mut self, op: OpCode, args: &[NodeId]) -> NodeId {
        for a in args {
            assert!((a.0 as usize) < self.nodes.len(), "argument {} does not exist yet", a.0);
        }
        self.push(Node::Op { op, args: args.to_vec() })
    }

    /// Adds an accumulator node emitting every `len(j)` fires.
    pub fn accum(&mut self, arg: NodeId, len: RateFsm) -> NodeId {
        assert!((arg.0 as usize) < self.nodes.len(), "argument does not exist yet");
        self.push(Node::Accum { arg, len })
    }

    /// Adds a per-lane vector accumulator emitting every `len(j)` fires.
    pub fn accum_vec(&mut self, arg: NodeId, len: RateFsm) -> NodeId {
        assert!((arg.0 as usize) < self.nodes.len(), "argument does not exist yet");
        self.push(Node::AccumVec { arg, len })
    }

    /// Adds an output node draining `arg` to `port`.
    pub fn output(&mut self, arg: NodeId, port: OutPortId) -> NodeId {
        assert!((arg.0 as usize) < self.nodes.len(), "argument does not exist yet");
        self.push(Node::Output { arg, port })
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterator over `(NodeId, &Node)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Input ports read by this graph, in node order.
    pub fn input_ports(&self) -> Vec<InPortId> {
        self.input_bindings().into_iter().map(|(p, _)| p).collect()
    }

    /// Input ports with their scalar/vector binding, in node order.
    pub fn input_bindings(&self) -> Vec<(InPortId, bool)> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Input { port, scalar } => Some((*port, *scalar)),
                _ => None,
            })
            .collect()
    }

    /// Output ports written by this graph, in node order.
    pub fn output_ports(&self) -> Vec<OutPortId> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Output { port, .. } => Some(*port),
                _ => None,
            })
            .collect()
    }

    /// Number of compute instructions (op + accumulator nodes): what
    /// occupies PEs.
    pub fn num_instructions(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Op { .. } | Node::Accum { .. } | Node::AccumVec { .. }))
            .count()
    }

    /// How many FUs of each class the graph needs when spatially mapped
    /// (one dedicated PE per instruction).
    pub fn fu_demand(&self) -> BTreeMap<FuClass, usize> {
        let mut demand = BTreeMap::new();
        for n in &self.nodes {
            let class = match n {
                Node::Op { op, .. } => op.fu_class(),
                Node::Accum { .. } | Node::AccumVec { .. } => FuClass::Adder,
                _ => continue,
            };
            *demand.entry(class).or_insert(0) += 1;
        }
        demand
    }

    /// Critical-path latency in cycles through FU pipelines only (network
    /// hops are added by the spatial scheduler).
    pub fn critical_path_latency(&self) -> u32 {
        let mut arrival = vec![0u32; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            let input_ready = n.args().iter().map(|a| arrival[a.0 as usize]).max().unwrap_or(0);
            let lat = match n {
                Node::Op { op, .. } => op.latency(),
                Node::Accum { .. } | Node::AccumVec { .. } => OpCode::Add.latency(),
                _ => 0,
            };
            arrival[i] = input_ready + lat;
        }
        arrival.into_iter().max().unwrap_or(0)
    }

    /// Per-node number of consumers (fan-out), used by the scheduler.
    pub fn fanout(&self) -> Vec<u32> {
        let mut fanout = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            for a in n.args() {
                fanout[a.0 as usize] += 1;
            }
        }
        fanout
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    /// See [`DfgError`].
    pub fn validate(&self) -> Result<(), DfgError> {
        let mut in_ports = std::collections::BTreeSet::new();
        let mut out_ports = std::collections::BTreeSet::new();
        let mut has_output = false;
        for (i, n) in self.nodes.iter().enumerate() {
            match n {
                Node::Input { port, .. } if !in_ports.insert(*port) => {
                    return Err(DfgError::DuplicateInputPort { port: *port });
                }
                Node::Output { port, .. } => {
                    has_output = true;
                    if !out_ports.insert(*port) {
                        return Err(DfgError::DuplicateOutputPort { port: *port });
                    }
                }
                Node::Op { op, args } if args.len() != op.arity() => {
                    return Err(DfgError::BadArity {
                        node: NodeId(i as u32),
                        expected: op.arity(),
                        actual: args.len(),
                    });
                }
                _ => {}
            }
        }
        if !has_output {
            return Err(DfgError::NoOutput);
        }
        Ok(())
    }

    /// Creates an evaluator for this graph at the given vector width.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds [`crate::MAX_VEC_WIDTH`].
    pub fn evaluator(&self, width: usize) -> DfgEvaluator {
        DfgEvaluator::new(self, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axpy_graph() -> Dfg {
        let mut g = Dfg::new("axpy");
        let a = g.input(InPortId(0));
        let x = g.input(InPortId(1));
        let y = g.input(InPortId(2));
        let ax = g.op(OpCode::Mul, &[a, x]);
        let r = g.op(OpCode::Add, &[ax, y]);
        g.output(r, OutPortId(0));
        g
    }

    #[test]
    fn build_and_validate() {
        let g = axpy_graph();
        assert!(g.validate().is_ok());
        assert_eq!(g.num_instructions(), 2);
        assert_eq!(g.input_ports().len(), 3);
        assert_eq!(g.output_ports(), [OutPortId(0)]);
    }

    #[test]
    fn fu_demand_counts() {
        let g = axpy_graph();
        let d = g.fu_demand();
        assert_eq!(d.get(&FuClass::Multiplier), Some(&1));
        assert_eq!(d.get(&FuClass::Adder), Some(&1));
        assert_eq!(d.get(&FuClass::DivSqrt), None);
    }

    #[test]
    fn critical_path() {
        // mul (4) then add (2) = 6
        assert_eq!(axpy_graph().critical_path_latency(), 6);
    }

    #[test]
    fn fanout_counts() {
        let mut g = Dfg::new("fan");
        let a = g.input(InPortId(0));
        let s = g.op(OpCode::Mul, &[a, a]);
        g.output(s, OutPortId(0));
        assert_eq!(g.fanout()[a.0 as usize], 2);
    }

    #[test]
    fn duplicate_ports_rejected() {
        let mut g = Dfg::new("dup");
        let a = g.input(InPortId(0));
        let _b = g.input(InPortId(0));
        g.output(a, OutPortId(0));
        assert!(matches!(g.validate(), Err(DfgError::DuplicateInputPort { .. })));
    }

    #[test]
    fn missing_output_rejected() {
        let mut g = Dfg::new("noout");
        let _ = g.input(InPortId(0));
        assert_eq!(g.validate(), Err(DfgError::NoOutput));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut g = Dfg::new("arity");
        let a = g.input(InPortId(0));
        // Bypass `op`'s arity-agnostic builder by pushing a malformed node
        // through the public API: op() does not check arity (validate does).
        let bad = g.op(OpCode::Add, &[a]);
        g.output(bad, OutPortId(0));
        assert!(matches!(g.validate(), Err(DfgError::BadArity { .. })));
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_panics() {
        let mut g = Dfg::new("fwd");
        let _ = g.op(OpCode::Neg, &[NodeId(5)]);
    }
}
