use crate::Dfg;
use revel_isa::{InPortId, OutPortId};

/// Identifier of a program region within a lane configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

/// How a region executes on the hybrid fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Dedicated-PE, statically-timed execution: one instruction per PE,
    /// fires when *all* input ports have a (possibly predicated) full
    /// vector; perfectly pipelined at II=1. Used for high-rate inner loops.
    Systolic,
    /// Temporally-shared, tagged-dataflow execution on the dataflow PE(s):
    /// instructions fire when their operands arrive, one instruction per
    /// dPE per cycle. Used for low-rate outer-loop regions.
    Temporal,
}

impl core::fmt::Display for RegionKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RegionKind::Systolic => f.write_str("systolic"),
            RegionKind::Temporal => f.write_str("temporal"),
        }
    }
}

/// A program region: a [`Dfg`] plus its execution style and vector width.
///
/// A lane configuration holds several concurrent regions (e.g. Cholesky's
/// point, vector, and matrix regions) which fire independently, providing
/// the paper's *inductive parallelism across regions*.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Diagnostic name (e.g. `"matrix"`).
    pub name: String,
    /// Execution style.
    pub kind: RegionKind,
    /// The computation graph.
    pub dfg: Dfg,
    /// Vector width: how many logical inner-loop iterations one firing
    /// covers (realized by unrolling the datapath / widening the ports).
    pub unroll: usize,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    /// Panics if `unroll` is 0 or exceeds [`crate::MAX_VEC_WIDTH`].
    pub fn new(name: impl Into<String>, kind: RegionKind, dfg: Dfg, unroll: usize) -> Self {
        assert!(
            (1..=crate::MAX_VEC_WIDTH).contains(&unroll),
            "unroll must be 1..={}, got {unroll}",
            crate::MAX_VEC_WIDTH
        );
        Region { name: name.into(), kind, dfg, unroll }
    }

    /// A systolic region (inner loop).
    pub fn systolic(name: impl Into<String>, dfg: Dfg, unroll: usize) -> Self {
        Self::new(name, RegionKind::Systolic, dfg, unroll)
    }

    /// A scalar temporal/dataflow region (typical for outer loops).
    pub fn temporal(name: impl Into<String>, dfg: Dfg) -> Self {
        Self::new(name, RegionKind::Temporal, dfg, 1)
    }

    /// A vectorized temporal region: tagged-dataflow fabrics replicate the
    /// datapath across instruction slots (used by the pure-dataflow
    /// baseline to express inner-loop parallelism).
    pub fn temporal_unrolled(name: impl Into<String>, dfg: Dfg, unroll: usize) -> Self {
        Self::new(name, RegionKind::Temporal, dfg, unroll)
    }

    /// Input ports read by the region.
    pub fn input_ports(&self) -> Vec<InPortId> {
        self.dfg.input_ports()
    }

    /// Input ports with scalar/vector binding.
    pub fn input_bindings(&self) -> Vec<(InPortId, bool)> {
        self.dfg.input_bindings()
    }

    /// The logical width an input port runs at for this region.
    pub fn port_logical_width(&self, scalar: bool) -> usize {
        if scalar {
            1
        } else {
            self.unroll
        }
    }

    /// Output ports written by the region.
    pub fn output_ports(&self) -> Vec<OutPortId> {
        self.dfg.output_ports()
    }

    /// Compute instructions after unrolling: what the fabric must provision
    /// (systolic PEs or dataflow instruction slots).
    pub fn mapped_instructions(&self) -> usize {
        self.dfg.num_instructions() * self.unroll
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpCode;

    fn small_dfg() -> Dfg {
        let mut g = Dfg::new("g");
        let a = g.input(InPortId(0));
        let n = g.op(OpCode::Neg, &[a]);
        g.output(n, OutPortId(0));
        g
    }

    #[test]
    fn systolic_region_unrolls() {
        let r = Region::systolic("inner", small_dfg(), 4);
        assert_eq!(r.kind, RegionKind::Systolic);
        assert_eq!(r.mapped_instructions(), 4);
    }

    #[test]
    fn temporal_region_is_scalar() {
        let r = Region::temporal("outer", small_dfg());
        assert_eq!(r.unroll, 1);
        assert_eq!(r.mapped_instructions(), 1);
    }

    #[test]
    fn temporal_unrolled_region() {
        let r = Region::temporal_unrolled("inner", small_dfg(), 4);
        assert_eq!(r.mapped_instructions(), 4);
    }

    #[test]
    #[should_panic(expected = "unroll must be")]
    fn zero_unroll_panics() {
        let _ = Region::new("bad", RegionKind::Systolic, small_dfg(), 0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(RegionKind::Systolic.to_string(), "systolic");
        assert_eq!(RegionKind::Temporal.to_string(), "temporal");
    }
}
