use crate::{Dfg, Node, NodeId, OpCode};
use revel_isa::OutPortId;

/// Maximum vector width of a region (the widest port is 512 bits = 8 words).
pub const MAX_VEC_WIDTH: usize = 8;

/// A vector value with a predicate mask: the unit of data flowing through a
/// (possibly vectorized) program region.
///
/// Lane `k` is valid when bit `k` of `pred` is set. Stream predication
/// (§IV-A) pads the final sub-vector of an inductive stream with invalid
/// lanes; the mask propagates through computation and memory writes skip
/// invalid lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VecVal {
    vals: [f64; MAX_VEC_WIDTH],
    pred: u8,
    width: u8,
}

impl VecVal {
    /// A value with every lane equal to `x` and valid.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds [`MAX_VEC_WIDTH`].
    pub fn splat(x: f64, width: usize) -> Self {
        assert!((1..=MAX_VEC_WIDTH).contains(&width), "bad vector width {width}");
        let mut vals = [0.0; MAX_VEC_WIDTH];
        vals[..width].fill(x);
        VecVal { vals, pred: mask_all(width), width: width as u8 }
    }

    /// A value from explicit lanes, all valid.
    ///
    /// # Panics
    /// Panics if `lanes` is empty or longer than [`MAX_VEC_WIDTH`].
    pub fn from_lanes(lanes: &[f64]) -> Self {
        assert!(!lanes.is_empty() && lanes.len() <= MAX_VEC_WIDTH);
        let mut vals = [0.0; MAX_VEC_WIDTH];
        vals[..lanes.len()].copy_from_slice(lanes);
        VecVal { vals, pred: mask_all(lanes.len()), width: lanes.len() as u8 }
    }

    /// A value from explicit lanes and an explicit predicate mask.
    ///
    /// # Panics
    /// Panics if `lanes` is empty or longer than [`MAX_VEC_WIDTH`].
    pub fn with_pred(lanes: &[f64], pred: u8) -> Self {
        let mut v = Self::from_lanes(lanes);
        v.pred = pred & mask_all(lanes.len());
        v
    }

    /// A fully predicated-off value (no valid lanes).
    pub fn invalid(width: usize) -> Self {
        let mut v = Self::splat(0.0, width);
        v.pred = 0;
        v
    }

    /// Vector width.
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// The predicate mask.
    pub fn pred(&self) -> u8 {
        self.pred
    }

    /// Lane `k`'s value, or `None` if the lane is invalid or out of range.
    pub fn get(&self, k: usize) -> Option<f64> {
        if k < self.width() && self.pred & (1 << k) != 0 {
            Some(self.vals[k])
        } else {
            None
        }
    }

    /// Lane `k`'s raw value regardless of the predicate.
    pub fn raw(&self, k: usize) -> f64 {
        self.vals[k]
    }

    /// Overwrites lane `k`'s value, leaving the predicate unchanged (used
    /// by the simulator's bit-flip fault injection).
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn set_raw(&mut self, k: usize, v: f64) {
        assert!(k < self.width(), "lane {k} out of range");
        self.vals[k] = v;
    }

    /// True if any lane is valid.
    pub fn any_valid(&self) -> bool {
        self.pred != 0
    }

    /// Number of valid lanes.
    pub fn valid_count(&self) -> u32 {
        self.pred.count_ones()
    }

    /// Iterator over valid `(lane, value)` pairs.
    pub fn iter_valid(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        (0..self.width()).filter_map(move |k| self.get(k).map(|v| (k, v)))
    }

    /// Sum of valid lanes (0.0 if none).
    pub fn sum_valid(&self) -> f64 {
        self.iter_valid().map(|(_, v)| v).sum()
    }
}

fn mask_all(width: usize) -> u8 {
    ((1u16 << width) - 1) as u8
}

/// Functional evaluator of a [`Dfg`] at a fixed vector width.
///
/// The evaluator owns the accumulator state, so one evaluator corresponds
/// to one *configured instance* of the region on the fabric. Create it with
/// [`Dfg::evaluator`].
#[derive(Debug, Clone)]
pub struct DfgEvaluator {
    dfg: Dfg,
    width: usize,
    /// Per-accum-node state, indexed densely by accum order.
    accum: Vec<AccumState>,
    /// Map node index → accum state index (usize::MAX when not an accum).
    accum_index: Vec<usize>,
    /// Runtime-configured emission length (overrides the DFG's rate).
    accum_len_override: Option<revel_isa::RateFsm>,
    input_nodes: Vec<NodeId>,
}

#[derive(Debug, Clone)]
struct AccumState {
    sum: f64,
    /// Per-lane sums (AccumVec only).
    lanes: [f64; MAX_VEC_WIDTH],
    /// Union of predicates seen this accumulation window (AccumVec only).
    pred: u8,
    remaining: i64,
    j: i64,
}

impl AccumState {
    fn fresh(remaining: i64) -> Self {
        AccumState { sum: 0.0, lanes: [0.0; MAX_VEC_WIDTH], pred: 0, remaining, j: 0 }
    }
}

impl DfgEvaluator {
    /// Builds an evaluator; prefer [`Dfg::evaluator`].
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds [`MAX_VEC_WIDTH`].
    pub fn new(dfg: &Dfg, width: usize) -> Self {
        assert!((1..=MAX_VEC_WIDTH).contains(&width), "bad vector width {width}");
        let mut accum = Vec::new();
        let mut accum_index = vec![usize::MAX; dfg.len()];
        let mut input_nodes = Vec::new();
        for (id, node) in dfg.iter() {
            match node {
                Node::Accum { len, .. } | Node::AccumVec { len, .. } => {
                    accum_index[id.0 as usize] = accum.len();
                    accum.push(AccumState::fresh(len.count_at(0)));
                }
                Node::Input { .. } => input_nodes.push(id),
                _ => {}
            }
        }
        DfgEvaluator {
            dfg: dfg.clone(),
            width,
            accum,
            accum_index,
            accum_len_override: None,
            input_nodes,
        }
    }

    /// The vector width the evaluator runs at.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of input vectors [`DfgEvaluator::fire`] expects.
    pub fn num_inputs(&self) -> usize {
        self.input_nodes.len()
    }

    /// Reconfigures every accumulator's emission length and resets its
    /// state (the `SetAccumLen` stream command).
    pub fn set_accum_len(&mut self, len: revel_isa::RateFsm) {
        for st in &mut self.accum {
            *st = AccumState::fresh(len.count_at(0));
        }
        self.accum_len_override = Some(len);
    }

    /// Resets all accumulator state (used on reconfiguration).
    pub fn reset(&mut self) {
        let mut k = 0;
        for node in self.dfg.nodes() {
            if let Node::Accum { len, .. } | Node::AccumVec { len, .. } = node {
                self.accum[k] = AccumState::fresh(len.count_at(0));
                k += 1;
            }
        }
    }

    /// Executes one firing of the region: consumes one vector per input
    /// node (in input-node order) and returns the vectors produced at each
    /// output port (in output-node order).
    ///
    /// Accumulator nodes emit a fully-predicated-off value on non-emitting
    /// fires; callers (the simulator's output ports) drop values with no
    /// valid lanes.
    ///
    /// # Panics
    /// Panics if `inputs.len()` differs from [`DfgEvaluator::num_inputs`].
    pub fn fire(&mut self, inputs: &[VecVal]) -> Vec<(OutPortId, VecVal)> {
        assert_eq!(
            inputs.len(),
            self.input_nodes.len(),
            "region {} expects {} inputs",
            self.dfg.name(),
            self.input_nodes.len()
        );
        let mut values: Vec<VecVal> = Vec::with_capacity(self.dfg.len());
        let mut next_input = 0;
        let mut outputs = Vec::new();
        for (idx, node) in self.dfg.nodes().iter().enumerate() {
            let v = match node {
                Node::Input { .. } => {
                    let v = inputs[next_input];
                    next_input += 1;
                    assert_eq!(
                        v.width(),
                        self.width,
                        "input width mismatch in region {}",
                        self.dfg.name()
                    );
                    v
                }
                Node::Const { value } => VecVal::splat(*value, self.width),
                Node::Op { op, args } => self.eval_op(*op, args, &values),
                Node::Accum { arg, len } => {
                    let len = self.accum_len_override.unwrap_or(*len);
                    let input = values[arg.0 as usize];
                    let state = &mut self.accum[self.accum_index[idx]];
                    state.sum += input.sum_valid();
                    state.remaining -= 1;
                    if state.remaining <= 0 {
                        let mut out = VecVal::invalid(self.width);
                        out.vals[0] = state.sum;
                        out.pred = 1;
                        state.sum = 0.0;
                        state.j += 1;
                        state.remaining = len.count_at(state.j);
                        out
                    } else {
                        VecVal::invalid(self.width)
                    }
                }
                Node::AccumVec { arg, len } => {
                    let len = self.accum_len_override.unwrap_or(*len);
                    let input = values[arg.0 as usize];
                    let state = &mut self.accum[self.accum_index[idx]];
                    for (k, v) in input.iter_valid() {
                        state.lanes[k] += v;
                    }
                    state.pred |= input.pred();
                    state.remaining -= 1;
                    if state.remaining <= 0 {
                        let mut out = VecVal::splat(0.0, self.width);
                        out.vals = state.lanes;
                        out.pred = state.pred;
                        state.lanes = [0.0; MAX_VEC_WIDTH];
                        state.pred = 0;
                        state.j += 1;
                        state.remaining = len.count_at(state.j);
                        out
                    } else {
                        VecVal::invalid(self.width)
                    }
                }
                Node::Output { arg, port } => {
                    let v = values[arg.0 as usize];
                    outputs.push((*port, v));
                    v
                }
            };
            values.push(v);
        }
        outputs
    }

    fn eval_op(&self, op: OpCode, args: &[NodeId], values: &[VecVal]) -> VecVal {
        if op == OpCode::ReduceAdd {
            let a = values[args[0].0 as usize];
            return VecVal::splat(a.sum_valid(), self.width);
        }
        let mut out = VecVal::splat(0.0, self.width);
        // Result lane valid iff every argument lane is valid.
        let mut pred = mask_all(self.width);
        for a in args {
            pred &= values[a.0 as usize].pred;
        }
        for k in 0..self.width {
            let scalar_args: Vec<f64> = args.iter().map(|a| values[a.0 as usize].vals[k]).collect();
            out.vals[k] = op.apply(&scalar_args);
        }
        out.pred = pred;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dfg;
    use revel_isa::{InPortId, RateFsm};

    #[test]
    fn vecval_basics() {
        let v = VecVal::from_lanes(&[1.0, 2.0, 3.0]);
        assert_eq!(v.width(), 3);
        assert_eq!(v.get(1), Some(2.0));
        assert_eq!(v.get(3), None);
        assert_eq!(v.sum_valid(), 6.0);
        assert_eq!(v.valid_count(), 3);
    }

    #[test]
    fn vecval_predication() {
        let v = VecVal::with_pred(&[1.0, 2.0, 3.0, 4.0], 0b0101);
        assert_eq!(v.get(0), Some(1.0));
        assert_eq!(v.get(1), None);
        assert_eq!(v.sum_valid(), 4.0);
        assert!(v.any_valid());
        assert!(!VecVal::invalid(4).any_valid());
    }

    #[test]
    fn elementwise_fire() {
        let mut g = Dfg::new("sub");
        let a = g.input(InPortId(0));
        let b = g.input(InPortId(1));
        let d = g.op(OpCode::Sub, &[a, b]);
        g.output(d, OutPortId(0));
        let mut ev = g.evaluator(4);
        let out = ev.fire(&[
            VecVal::from_lanes(&[5.0, 6.0, 7.0, 8.0]),
            VecVal::from_lanes(&[1.0, 1.0, 1.0, 1.0]),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, OutPortId(0));
        assert_eq!(out[0].1.get(3), Some(7.0));
    }

    #[test]
    fn predicate_propagates_through_ops() {
        let mut g = Dfg::new("mask");
        let a = g.input(InPortId(0));
        let b = g.input(InPortId(1));
        let m = g.op(OpCode::Mul, &[a, b]);
        g.output(m, OutPortId(0));
        let mut ev = g.evaluator(4);
        let out = ev.fire(&[
            VecVal::with_pred(&[1.0; 4], 0b0011), // last two lanes padded
            VecVal::from_lanes(&[2.0; 4]),
        ]);
        assert_eq!(out[0].1.pred(), 0b0011);
        assert_eq!(out[0].1.get(2), None);
    }

    #[test]
    fn reduce_add_sums_valid_lanes() {
        let mut g = Dfg::new("red");
        let a = g.input(InPortId(0));
        let r = g.op(OpCode::ReduceAdd, &[a]);
        g.output(r, OutPortId(0));
        let mut ev = g.evaluator(4);
        let out = ev.fire(&[VecVal::with_pred(&[1.0, 2.0, 4.0, 8.0], 0b1011)]);
        assert_eq!(out[0].1.get(0), Some(11.0));
    }

    #[test]
    fn accumulator_fixed_length() {
        // Dot-product style: accumulate reduced products, emit every 3 fires.
        let mut g = Dfg::new("dot");
        let a = g.input(InPortId(0));
        let r = g.op(OpCode::ReduceAdd, &[a]);
        let acc = g.accum(r, RateFsm::fixed(3));
        g.output(acc, OutPortId(0));
        let mut ev = g.evaluator(2);
        let mut emitted = Vec::new();
        for fire in 0..6 {
            let v = VecVal::splat((fire + 1) as f64, 2);
            for (_, out) in ev.fire(&[v]) {
                if out.any_valid() {
                    emitted.push(out.get(0).unwrap());
                }
            }
        }
        // fires contribute 2*(f+1) each (width 2, reduced then re-reduced by
        // accum across lanes of the broadcast — ReduceAdd broadcasts, so
        // accum sums width copies). Use the observed algebra:
        // reduce(splat(x,2)) = 2x broadcast; accum adds sum_valid = 4x.
        // emissions: f=0..2 -> 4*(1+2+3) = 24; f=3..5 -> 4*(4+5+6) = 60.
        assert_eq!(emitted, [24.0, 60.0]);
    }

    #[test]
    fn accumulator_inductive_length() {
        // Shrinking reduction: emit after 3 fires, then 2, then 1.
        let mut g = Dfg::new("tri");
        let a = g.input(InPortId(0));
        let acc = g.accum(a, RateFsm::inductive(3, -1));
        g.output(acc, OutPortId(0));
        let mut ev = g.evaluator(1);
        let mut emitted = Vec::new();
        for _ in 0..6 {
            for (_, out) in ev.fire(&[VecVal::splat(1.0, 1)]) {
                if out.any_valid() {
                    emitted.push(out.get(0).unwrap());
                }
            }
        }
        assert_eq!(emitted, [3.0, 2.0, 1.0]);
    }

    #[test]
    fn accum_vec_per_lane() {
        // GEMM-style: c[j] += a * b[j], emit after 3 fires.
        let mut g = Dfg::new("gemmacc");
        let a = g.input(InPortId(0));
        let acc = g.accum_vec(a, RateFsm::fixed(3));
        g.output(acc, OutPortId(0));
        let mut ev = g.evaluator(4);
        let mut emitted = Vec::new();
        for f in 0..6 {
            let v = VecVal::from_lanes(&[f as f64, 1.0, 2.0, 3.0]);
            for (_, out) in ev.fire(&[v]) {
                if out.any_valid() {
                    emitted.push((0..4).map(|k| out.get(k).unwrap()).collect::<Vec<_>>());
                }
            }
        }
        assert_eq!(emitted.len(), 2);
        assert_eq!(emitted[0], [0.0 + 1.0 + 2.0, 3.0, 6.0, 9.0]);
        assert_eq!(emitted[1], [3.0 + 4.0 + 5.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn accum_vec_respects_predicates() {
        let mut g = Dfg::new("p");
        let a = g.input(InPortId(0));
        let acc = g.accum_vec(a, RateFsm::fixed(2));
        g.output(acc, OutPortId(0));
        let mut ev = g.evaluator(2);
        let _ = ev.fire(&[VecVal::with_pred(&[5.0, 7.0], 0b01)]);
        let out = ev.fire(&[VecVal::with_pred(&[1.0, 2.0], 0b01)]);
        let v = out[0].1;
        assert_eq!(v.get(0), Some(6.0));
        assert_eq!(v.get(1), None, "lane 1 never saw valid data");
    }

    #[test]
    fn reset_clears_accumulators() {
        let mut g = Dfg::new("acc");
        let a = g.input(InPortId(0));
        let acc = g.accum(a, RateFsm::fixed(2));
        g.output(acc, OutPortId(0));
        let mut ev = g.evaluator(1);
        let _ = ev.fire(&[VecVal::splat(5.0, 1)]);
        ev.reset();
        let _ = ev.fire(&[VecVal::splat(1.0, 1)]);
        let out = ev.fire(&[VecVal::splat(1.0, 1)]);
        assert_eq!(out[0].1.get(0), Some(2.0)); // 5.0 was discarded by reset
    }

    #[test]
    fn select_and_cmp() {
        let mut g = Dfg::new("sel");
        let a = g.input(InPortId(0));
        let b = g.input(InPortId(1));
        let c = g.op(OpCode::CmpLt, &[a, b]);
        let s = g.op(OpCode::Select, &[a, b, c]);
        g.output(s, OutPortId(0));
        let mut ev = g.evaluator(2);
        let out = ev.fire(&[VecVal::from_lanes(&[1.0, 9.0]), VecVal::from_lanes(&[5.0, 5.0])]);
        // lane0: 1<5 -> select a = 1 ; lane1: 9<5 false -> select b = 5
        assert_eq!(out[0].1.get(0), Some(1.0));
        assert_eq!(out[0].1.get(1), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_input_count_panics() {
        let mut g = Dfg::new("two");
        let a = g.input(InPortId(0));
        let b = g.input(InPortId(1));
        let s = g.op(OpCode::Add, &[a, b]);
        g.output(s, OutPortId(0));
        let mut ev = g.evaluator(1);
        let _ = ev.fire(&[VecVal::splat(1.0, 1)]);
    }
}
