//! Property-based tests for dataflow-graph evaluation: predication
//! propagation, accumulator algebra, and structural invariants.

use proptest::prelude::*;
use revel_dfg::{Dfg, OpCode, VecVal, MAX_VEC_WIDTH};
use revel_isa::{InPortId, OutPortId, RateFsm};

fn arb_lanes(width: usize) -> impl Strategy<Value = (Vec<f64>, u8)> {
    (
        proptest::collection::vec(-100.0f64..100.0, width..=width),
        1u8..(1 << width),
    )
}

proptest! {
    /// Elementwise binary ops: output predicate is the AND of input
    /// predicates, and valid lanes compute the scalar op exactly.
    #[test]
    fn binary_op_predication(
        width in 1usize..=MAX_VEC_WIDTH,
        a in proptest::collection::vec(-50.0f64..50.0, MAX_VEC_WIDTH),
        b in proptest::collection::vec(-50.0f64..50.0, MAX_VEC_WIDTH),
        pa in 0u8..=255,
        pb in 0u8..=255,
    ) {
        let mut g = Dfg::new("bin");
        let x = g.input(InPortId(0));
        let y = g.input(InPortId(1));
        let s = g.op(OpCode::Add, &[x, y]);
        g.output(s, OutPortId(0));
        let mut ev = g.evaluator(width);
        let va = VecVal::with_pred(&a[..width], pa);
        let vb = VecVal::with_pred(&b[..width], pb);
        let out = ev.fire(&[va, vb])[0].1;
        prop_assert_eq!(out.pred(), va.pred() & vb.pred());
        for k in 0..width {
            match (va.get(k), vb.get(k)) {
                (Some(x), Some(y)) => prop_assert_eq!(out.get(k), Some(x + y)),
                _ => prop_assert_eq!(out.get(k), None),
            }
        }
    }

    /// Scalar accumulator equals the running sum of valid lanes,
    /// partitioned by the emission length.
    #[test]
    fn accumulator_partitions_sums(
        (lanes, pred) in arb_lanes(4),
        groups in 1i64..5,
        fires_per_group in 1i64..5,
    ) {
        let mut g = Dfg::new("acc");
        let a = g.input(InPortId(0));
        let acc = g.accum(a, RateFsm::fixed(fires_per_group));
        g.output(acc, OutPortId(0));
        let mut ev = g.evaluator(4);
        let v = VecVal::with_pred(&lanes, pred);
        let per_fire = v.sum_valid();
        let mut emitted = Vec::new();
        for _ in 0..groups * fires_per_group {
            for (_, out) in ev.fire(&[v]) {
                if out.any_valid() {
                    emitted.push(out.get(0).unwrap());
                }
            }
        }
        prop_assert_eq!(emitted.len() as i64, groups);
        for e in emitted {
            prop_assert!((e - per_fire * fires_per_group as f64).abs() < 1e-9);
        }
    }

    /// AccumVec is an elementwise (per-lane) accumulator: lanes never mix.
    #[test]
    fn accum_vec_lanes_independent(
        (lanes, pred) in arb_lanes(4),
        fires in 1i64..6,
    ) {
        let mut g = Dfg::new("vacc");
        let a = g.input(InPortId(0));
        let acc = g.accum_vec(a, RateFsm::fixed(fires));
        g.output(acc, OutPortId(0));
        let mut ev = g.evaluator(4);
        let v = VecVal::with_pred(&lanes, pred);
        let mut result = None;
        for _ in 0..fires {
            for (_, out) in ev.fire(&[v]) {
                if out.any_valid() {
                    result = Some(out);
                }
            }
        }
        let out = result.expect("one emission");
        for k in 0..4 {
            match v.get(k) {
                Some(x) => {
                    let got = out.get(k).expect("lane valid");
                    prop_assert!((got - x * fires as f64).abs() < 1e-9);
                }
                None => prop_assert_eq!(out.get(k), None),
            }
        }
    }

    /// Critical-path latency is monotone under appending ops.
    #[test]
    fn critical_path_monotone(n_ops in 1usize..10) {
        let mut g = Dfg::new("chain");
        let a = g.input(InPortId(0));
        let mut v = a;
        let mut last = 0;
        for i in 0..n_ops {
            v = g.op(if i % 2 == 0 { OpCode::Add } else { OpCode::Mul }, &[v, a]);
            let now = g.critical_path_latency();
            prop_assert!(now >= last);
            last = now;
        }
        g.output(v, OutPortId(0));
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_instructions(), n_ops);
    }

    /// FU demand counts every instruction exactly once.
    #[test]
    fn fu_demand_total(n_add in 0usize..6, n_mul in 0usize..6, n_div in 0usize..3) {
        let mut g = Dfg::new("mix");
        let a = g.input(InPortId(0));
        let mut v = a;
        for _ in 0..n_add {
            v = g.op(OpCode::Add, &[v, a]);
        }
        for _ in 0..n_mul {
            v = g.op(OpCode::Mul, &[v, a]);
        }
        for _ in 0..n_div {
            v = g.op(OpCode::Div, &[v, a]);
        }
        g.output(v, OutPortId(0));
        let total: usize = g.fu_demand().values().sum();
        prop_assert_eq!(total, n_add + n_mul + n_div);
    }
}
