//! Property-style tests for dataflow-graph evaluation: predication
//! propagation, accumulator algebra, and structural invariants.
//!
//! Randomized-but-deterministic via the seeded `revel_isa::Rng` (the
//! workspace builds with no external crates, so `proptest` is unavailable).

use revel_dfg::{Dfg, OpCode, VecVal, MAX_VEC_WIDTH};
use revel_isa::{InPortId, OutPortId, RateFsm, Rng};

const CASES: usize = 200;

fn arb_lanes(r: &mut Rng, width: usize) -> (Vec<f64>, u8) {
    let vals = (0..width).map(|_| r.gen_range_f64(-100.0, 100.0)).collect();
    let pred = 1 + r.gen_index((1usize << width) - 1) as u8;
    (vals, pred)
}

/// Elementwise binary ops: output predicate is the AND of input
/// predicates, and valid lanes compute the scalar op exactly.
#[test]
fn binary_op_predication() {
    let mut r = Rng::seed_from_u64(0xDF6_0001);
    for case in 0..CASES {
        let width = 1 + r.gen_index(MAX_VEC_WIDTH);
        let a: Vec<f64> = (0..width).map(|_| r.gen_range_f64(-50.0, 50.0)).collect();
        let b: Vec<f64> = (0..width).map(|_| r.gen_range_f64(-50.0, 50.0)).collect();
        let pa = r.gen_index(256) as u8;
        let pb = r.gen_index(256) as u8;
        let mut g = Dfg::new("bin");
        let x = g.input(InPortId(0));
        let y = g.input(InPortId(1));
        let s = g.op(OpCode::Add, &[x, y]);
        g.output(s, OutPortId(0));
        let mut ev = g.evaluator(width);
        let va = VecVal::with_pred(&a, pa);
        let vb = VecVal::with_pred(&b, pb);
        let out = ev.fire(&[va, vb])[0].1;
        assert_eq!(out.pred(), va.pred() & vb.pred(), "case {case}");
        for k in 0..width {
            match (va.get(k), vb.get(k)) {
                (Some(x), Some(y)) => assert_eq!(out.get(k), Some(x + y), "case {case}"),
                _ => assert_eq!(out.get(k), None, "case {case}"),
            }
        }
    }
}

/// Scalar accumulator equals the running sum of valid lanes, partitioned
/// by the emission length.
#[test]
fn accumulator_partitions_sums() {
    let mut r = Rng::seed_from_u64(0xDF6_0002);
    for case in 0..CASES {
        let (lanes, pred) = arb_lanes(&mut r, 4);
        let groups = r.gen_range_i64(1, 5);
        let fires_per_group = r.gen_range_i64(1, 5);
        let mut g = Dfg::new("acc");
        let a = g.input(InPortId(0));
        let acc = g.accum(a, RateFsm::fixed(fires_per_group));
        g.output(acc, OutPortId(0));
        let mut ev = g.evaluator(4);
        let v = VecVal::with_pred(&lanes, pred);
        let per_fire = v.sum_valid();
        let mut emitted = Vec::new();
        for _ in 0..groups * fires_per_group {
            for (_, out) in ev.fire(&[v]) {
                if out.any_valid() {
                    emitted.push(out.get(0).unwrap());
                }
            }
        }
        assert_eq!(emitted.len() as i64, groups, "case {case}");
        for e in emitted {
            assert!((e - per_fire * fires_per_group as f64).abs() < 1e-9, "case {case}");
        }
    }
}

/// AccumVec is an elementwise (per-lane) accumulator: lanes never mix.
#[test]
fn accum_vec_lanes_independent() {
    let mut r = Rng::seed_from_u64(0xDF6_0003);
    for case in 0..CASES {
        let (lanes, pred) = arb_lanes(&mut r, 4);
        let fires = r.gen_range_i64(1, 6);
        let mut g = Dfg::new("vacc");
        let a = g.input(InPortId(0));
        let acc = g.accum_vec(a, RateFsm::fixed(fires));
        g.output(acc, OutPortId(0));
        let mut ev = g.evaluator(4);
        let v = VecVal::with_pred(&lanes, pred);
        let mut result = None;
        for _ in 0..fires {
            for (_, out) in ev.fire(&[v]) {
                if out.any_valid() {
                    result = Some(out);
                }
            }
        }
        let out = result.expect("one emission");
        for k in 0..4 {
            match v.get(k) {
                Some(x) => {
                    let got = out.get(k).expect("lane valid");
                    assert!((got - x * fires as f64).abs() < 1e-9, "case {case}");
                }
                None => assert_eq!(out.get(k), None, "case {case}"),
            }
        }
    }
}

/// Critical-path latency is monotone under appending ops.
#[test]
fn critical_path_monotone() {
    let mut r = Rng::seed_from_u64(0xDF6_0004);
    for case in 0..CASES {
        let n_ops = 1 + r.gen_index(9);
        let mut g = Dfg::new("chain");
        let a = g.input(InPortId(0));
        let mut v = a;
        let mut last = 0;
        for i in 0..n_ops {
            v = g.op(if i % 2 == 0 { OpCode::Add } else { OpCode::Mul }, &[v, a]);
            let now = g.critical_path_latency();
            assert!(now >= last, "case {case}");
            last = now;
        }
        g.output(v, OutPortId(0));
        assert!(g.validate().is_ok(), "case {case}");
        assert_eq!(g.num_instructions(), n_ops, "case {case}");
    }
}

/// FU demand counts every instruction exactly once.
#[test]
fn fu_demand_total() {
    let mut r = Rng::seed_from_u64(0xDF6_0005);
    for case in 0..CASES {
        let n_add = r.gen_index(6);
        let n_mul = r.gen_index(6);
        let n_div = r.gen_index(3);
        let mut g = Dfg::new("mix");
        let a = g.input(InPortId(0));
        let mut v = a;
        for _ in 0..n_add {
            v = g.op(OpCode::Add, &[v, a]);
        }
        for _ in 0..n_mul {
            v = g.op(OpCode::Mul, &[v, a]);
        }
        for _ in 0..n_div {
            v = g.op(OpCode::Div, &[v, a]);
        }
        g.output(v, OutPortId(0));
        let total: usize = g.fu_demand().values().sum();
        assert_eq!(total, n_add + n_mul + n_div, "case {case}");
    }
}
