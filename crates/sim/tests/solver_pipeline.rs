//! End-to-end simulator test: the paper's running example — the triangular
//! linear solver (Fig. 2/11/15) — built by hand against the raw ISA.
//!
//! Exercises every inductive mechanism at once: triangular memory streams
//! with stream predication, a keep-first inductive XFER feeding the
//! outer-loop divider, a drop-first (tail) XFER recirculating the updated
//! vector with destination row tracking, element-granular inductive reuse
//! of the broadcast pivot, and the hybrid systolic/temporal split.

use revel_dfg::{Dfg, OpCode, Region};
use revel_fabric::RevelConfig;
use revel_isa::{
    AffinePattern, ConfigId, InPortId, LaneId, LaneMask, MemTarget, OutPortId, RateFsm,
    StreamCommand, VectorCommand,
};
use revel_sim::{CycleClass, Machine, RevelProgram, SimOptions};

/// Reference solve of the upper-triangular system `A x = b` in the exact
/// elimination order the dataflow uses.
fn reference_solver(a: &[Vec<f64>], b: &mut [f64]) {
    let n = b.len();
    for j in 0..n {
        b[j] /= a[j][j];
        for i in j + 1..n {
            b[i] -= b[j] * a[j][i];
        }
    }
}

/// Port map (widths [8,8,4,4,2,1,1,1]):
///   in2 (w4): a[j, j+1:n] row stream (triangular load)
///   in3 (w4): b tail (initial load row 0, then drop-first XFER loopback)
///   in5 (w1): a[j,j] diagonal -> divider
///   in6 (w1): b[j] raw (seed + keep-first XFER of updated vector head)
///   in7 (w1): divided pivot b[j] (broadcast, reused n-1-j elements)
///   out0: updated b vector -> keep-first XFER to in6
///   out1: divider result    -> XFER to in7
///   out2: updated b vector -> drop-first XFER loopback to in3
///   out3: divider result    -> store to b[0..n] (the solution)
fn build_solver_program(n: i64) -> RevelProgram {
    let a_base = 0i64;
    let b_base = n * n;
    let x_base = n * n + n; // solution vector

    // Inner region (systolic, vectorized x4): newb = b[i] - pivot * a[j,i]
    let mut inner = Dfg::new("solver-inner");
    let pivot = inner.input_scalar(InPortId(7));
    let aji = inner.input(InPortId(2));
    let bi = inner.input(InPortId(3));
    let prod = inner.op(OpCode::Mul, &[pivot, aji]);
    let newb = inner.op(OpCode::Sub, &[bi, prod]);
    inner.output(newb, OutPortId(0));
    inner.output(newb, OutPortId(2));
    let inner_region = Region::systolic("inner", inner, 4);

    // Outer region (temporal, on the dPE): pivot = b[j] / a[j,j]
    let mut outer = Dfg::new("solver-outer");
    let braw = outer.input(InPortId(6));
    let diag = outer.input(InPortId(5));
    let bdiv = outer.op(OpCode::Div, &[braw, diag]);
    outer.output(bdiv, OutPortId(1));
    outer.output(bdiv, OutPortId(3));
    let outer_region = Region::temporal("outer", outer);

    let mut prog = RevelProgram::new("solver");
    let cfg = prog.add_config(vec![inner_region, outer_region]);
    let lane0 = LaneMask::single(LaneId(0));
    let push = |prog: &mut RevelProgram, cmd| prog.push(VectorCommand::broadcast(lane0, cmd));

    push(&mut prog, StreamCommand::Configure { config: ConfigId(cfg) });
    // Diagonal a[j,j] -> divider (n values).
    push(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::strided(a_base, n + 1, n),
            InPortId(5),
            RateFsm::ONCE,
        ),
    );
    // Seed b[0] -> divider's raw-b input.
    push(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::scalar(b_base),
            InPortId(6),
            RateFsm::ONCE,
        ),
    );
    // Triangular row stream a[j, j+1:n] -> inner region.
    push(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::two_d(a_base + 1, 1, n + 1, n - 1, n - 1, -1),
            InPortId(2),
            RateFsm::ONCE,
        ),
    );
    // Initial b[1:n] (iteration j=0's tail) -> inner region.
    push(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(b_base + 1, n - 1),
            InPortId(3),
            RateFsm::ONCE,
        ),
    );
    // Divided pivot: out1 -> in7, one value per outer iteration j=0..n-2,
    // reused (n-1-j) inner elements.
    push(
        &mut prog,
        StreamCommand::xfer(
            OutPortId(1),
            InPortId(7),
            n - 1,
            RateFsm::ONCE,
            RateFsm::inductive(n - 1, -1),
        ),
    );
    // Head of each updated vector (b[j+1] raw) -> divider.
    push(
        &mut prog,
        StreamCommand::xfer(
            OutPortId(0),
            InPortId(6),
            n - 1,
            RateFsm::inductive(n - 1, -1),
            RateFsm::ONCE,
        ),
    );
    // Tail of each updated vector recirculates as the next iteration's b,
    // delivered in shrinking rows (n-2-j words) for stream predication.
    let tail_total = (n - 1) * (n - 2) / 2;
    push(
        &mut prog,
        StreamCommand::xfer_tail(
            OutPortId(2),
            InPortId(3),
            tail_total,
            RateFsm::inductive(n - 1, -1),
            RateFsm::inductive(n - 2, -1),
        ),
    );
    // Solution: all n divider outputs -> x[0..n].
    push(
        &mut prog,
        StreamCommand::store(
            OutPortId(3),
            MemTarget::Private,
            AffinePattern::linear(x_base, n),
            RateFsm::ONCE,
        ),
    );
    push(&mut prog, StreamCommand::Wait);
    prog
}

fn test_matrix(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut a = vec![vec![0.0; n]; n];
    for (j, row) in a.iter_mut().enumerate() {
        for (i, v) in row.iter_mut().enumerate() {
            *v = if i == j {
                4.0 + j as f64 * 0.25
            } else if i > j {
                0.5 / (1.0 + (i + j) as f64)
            } else {
                0.0
            };
        }
    }
    let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
    (a, b)
}

fn run_solver(n: usize, predication: bool) -> (Vec<f64>, revel_sim::RunReport) {
    let (a, b) = test_matrix(n);
    let mut m = Machine::new(
        RevelConfig::single_lane(),
        SimOptions { predication, max_cycles: 500_000, ..SimOptions::default() },
    );
    let flat: Vec<f64> = a.iter().flatten().copied().collect();
    m.write_private(LaneId(0), 0, &flat);
    m.write_private(LaneId(0), (n * n) as i64, &b);
    let prog = build_solver_program(n as i64);
    let report = m.run(&prog).expect("sim ok");
    assert!(!report.timed_out, "solver n={n} deadlocked after {} cycles", report.cycles);
    let x = m.read_private(LaneId(0), (n * n + n) as i64, n);
    (x, report)
}

#[test]
fn solver_matches_reference_n6() {
    let n = 6;
    let (a, b0) = test_matrix(n);
    let mut b_ref = b0.clone();
    reference_solver(&a, &mut b_ref);
    let (x, report) = run_solver(n, true);
    for i in 0..n {
        assert!(
            (x[i] - b_ref[i]).abs() < 1e-9,
            "x[{i}] = {} != reference {} (n={n})",
            x[i],
            b_ref[i]
        );
    }
    assert!(report.cycles > 0);
    assert!(report.total_breakdown().busy() > 0);
}

#[test]
fn solver_matches_reference_larger_sizes() {
    for n in [8, 12, 16, 24] {
        let (a, b0) = test_matrix(n);
        let mut b_ref = b0.clone();
        reference_solver(&a, &mut b_ref);
        let (x, _) = run_solver(n, true);
        for i in 0..n {
            assert!((x[i] - b_ref[i]).abs() < 1e-8, "n={n}: x[{i}] = {} != {}", x[i], b_ref[i]);
        }
    }
}

#[test]
fn solver_correct_without_hw_predication() {
    // The solver is latency-bound by the divider recurrence at these sizes,
    // so predication is a correctness knob here (timing effects are tested
    // on a throughput-bound kernel below).
    let n = 16;
    let (a, b0) = test_matrix(n);
    let mut b_ref = b0.clone();
    reference_solver(&a, &mut b_ref);
    let (x_off, _) = run_solver(n, false);
    for i in 0..n {
        assert!((x_off[i] - b_ref[i]).abs() < 1e-9);
    }
}

/// A throughput-bound streaming kernel with inductive rows: without
/// hardware stream predication, each partially-valid vector fire degrades
/// to scalar-remainder timing, so the run must take more cycles.
fn run_streaming(n_rows: i64, row_len: i64, predication: bool) -> (Vec<f64>, u64) {
    let mut g = Dfg::new("neg");
    let a = g.input(InPortId(2)); // width 4
    let o = g.op(OpCode::Neg, &[a]);
    g.output(o, OutPortId(0));
    let region = Region::systolic("neg", g, 4);

    let mut prog = RevelProgram::new("stream");
    let cfg = prog.add_config(vec![region]);
    let lane0 = LaneMask::single(LaneId(0));
    let total = n_rows * row_len;
    prog.push(VectorCommand::broadcast(lane0, StreamCommand::Configure { config: ConfigId(cfg) }));
    // 2D pattern with short rows (row_len % 4 != 0) triggers predication.
    prog.push(VectorCommand::broadcast(
        lane0,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::two_d(0, 1, row_len, row_len, n_rows, 0),
            InPortId(2),
            RateFsm::ONCE,
        ),
    ));
    prog.push(VectorCommand::broadcast(
        lane0,
        StreamCommand::store(
            OutPortId(0),
            MemTarget::Private,
            AffinePattern::linear(total, total),
            RateFsm::ONCE,
        ),
    ));
    prog.push(VectorCommand::broadcast(lane0, StreamCommand::Wait));

    let mut m = Machine::new(
        RevelConfig::single_lane(),
        SimOptions { predication, max_cycles: 100_000, ..SimOptions::default() },
    );
    let input: Vec<f64> = (0..total).map(|i| i as f64).collect();
    m.write_private(LaneId(0), 0, &input);
    let report = m.run(&prog).expect("sim ok");
    assert!(!report.timed_out);
    (m.read_private(LaneId(0), total, total as usize), report.cycles)
}

#[test]
fn predication_off_costs_cycles_on_throughput_kernel() {
    let (out_on, cyc_on) = run_streaming(40, 6, true);
    let (out_off, cyc_off) = run_streaming(40, 6, false);
    let expect: Vec<f64> = (0..240).map(|i| -(i as f64)).collect();
    assert_eq!(out_on, expect);
    assert_eq!(out_off, expect);
    assert!(
        cyc_off > cyc_on,
        "scalar-remainder timing must cost cycles: off={cyc_off} on={cyc_on}"
    );
}

#[test]
fn solver_cycle_classes_sane() {
    let (_, report) = run_solver(12, true);
    let total = report.total_breakdown();
    // The inner region fired.
    assert!(total.count(CycleClass::Issue) + total.count(CycleClass::MultiIssue) > 0);
    // The divider ran on the dataflow PE at least once per outer iter.
    assert!(total.count(CycleClass::Temporal) >= 5);
    // Everything adds up to the run length.
    assert_eq!(total.total(), report.cycles);
}

#[test]
fn solver_scales_subquadratically_in_cycles() {
    // Pipelined execution should make cycles grow ~n^2/vec (total work),
    // far below the scalar ~n^2 * (div latency) upper bound.
    let (_, r12) = run_solver(12, true);
    let (_, r24) = run_solver(24, true);
    let growth = r24.cycles as f64 / r12.cycles as f64;
    assert!(growth < 6.0, "cycles should grow roughly quadratically, got {growth}x for 2x size");
}
