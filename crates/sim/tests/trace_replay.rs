//! Timing-trace recording and functional replay: byte-parity with full
//! simulation on oblivious programs, structured refusal under
//! perturbation, and — the anti-vacuity pin — divergence on a program
//! whose timing actually depends on dataset values.

use revel_dfg::{Dfg, OpCode, Region};
use revel_fabric::RevelConfig;
use revel_isa::{
    AffinePattern, ConfigId, InPortId, LaneId, LaneMask, MemTarget, OutPortId, RateFsm,
    StreamCommand, VectorCommand,
};
use revel_prog::{DynBind, DynField, DynSrc, DynStep};
use revel_sim::{FaultPlan, Machine, RevelProgram, SimError, SimOptions};

fn machine() -> Machine {
    Machine::new(
        RevelConfig::single_lane(),
        SimOptions { max_cycles: 200_000, ..SimOptions::default() },
    )
}

fn lane0() -> LaneMask {
    LaneMask::single(LaneId(0))
}

/// Negate `n` values through an unroll-8 systolic region: in\[0..n\] at
/// word 0, out at word 64.
fn neg_prog(n: i64) -> RevelProgram {
    let mut g = Dfg::new("neg");
    let a = g.input(InPortId(0));
    let o = g.op(OpCode::Neg, &[a]);
    g.output(o, OutPortId(0));
    let mut prog = RevelProgram::new("trace-neg");
    let cfg = prog.add_config(vec![Region::systolic("neg", g, 8)]);
    let p = |prog: &mut RevelProgram, c| prog.push(VectorCommand::broadcast(lane0(), c));
    p(&mut prog, StreamCommand::Configure { config: ConfigId(cfg) });
    p(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, n),
            InPortId(0),
            RateFsm::ONCE,
        ),
    );
    p(
        &mut prog,
        StreamCommand::store(
            OutPortId(0),
            MemTarget::Private,
            AffinePattern::linear(64, n),
            RateFsm::ONCE,
        ),
    );
    p(&mut prog, StreamCommand::Wait);
    prog
}

#[test]
fn replay_reproduces_full_simulation_byte_for_byte() {
    let prog = neg_prog(16);
    let a: Vec<f64> = (0..16).map(|i| i as f64).collect();
    let b: Vec<f64> = (0..16).map(|i| (i * i) as f64 - 3.5).collect();

    // Record the trace on dataset A; its embedded report must match a
    // plain full run of A byte-for-byte.
    let mut rec = machine();
    rec.write_private(LaneId(0), 0, &a);
    let trace = rec.run_traced(&prog).expect("timing run");
    assert!(!trace.is_empty(), "a real program records ops");
    let mut full_a = machine();
    full_a.write_private(LaneId(0), 0, &a);
    let report_a = full_a.run(&prog).expect("full sim A");
    assert_eq!(trace.report.canonical_text(), report_a.canonical_text());

    // Replay the A-recorded trace on dataset B: every scratchpad word
    // must match a full simulation of B.
    let mut full_b = machine();
    full_b.write_private(LaneId(0), 0, &b);
    full_b.run(&prog).expect("full sim B");
    let mut rep_b = machine();
    rep_b.write_private(LaneId(0), 0, &b);
    rep_b.replay(&prog, &trace).expect("replay B");
    assert_eq!(
        rep_b.read_private(LaneId(0), 0, 128),
        full_b.read_private(LaneId(0), 0, 128),
        "replayed scratchpad image must be byte-identical to full simulation"
    );
    assert_eq!(rep_b.read_private(LaneId(0), 64, 16), b.iter().map(|x| -x).collect::<Vec<_>>());
}

#[test]
fn replay_is_repeatable_on_the_same_machine() {
    // A machine that just replayed can be re-initialized and replayed
    // again (servers reuse machines across batch lanes).
    let prog = neg_prog(8);
    let mut rec = machine();
    rec.write_private(LaneId(0), 0, &[1.0; 8]);
    let trace = rec.run_traced(&prog).expect("timing run");
    let mut m = machine();
    for round in 1..4 {
        let data = vec![round as f64; 8];
        m.write_private(LaneId(0), 0, &data);
        // Stale output words from the previous round are overwritten by
        // the replayed stores.
        m.replay(&prog, &trace).expect("replay");
        assert_eq!(m.read_private(LaneId(0), 64, 8), vec![-(round as f64); 8]);
    }
}

#[test]
fn run_traced_refuses_perturbed_machines() {
    let prog = neg_prog(8);
    let mut m = Machine::new(
        RevelConfig::single_lane(),
        SimOptions { fault_plan: Some(FaultPlan::new(7, 2, 1000)), ..SimOptions::default() },
    );
    m.write_private(LaneId(0), 0, &[1.0; 8]);
    match m.run_traced(&prog) {
        Err(SimError::Replay(e)) => {
            assert!(e.message.contains("fault"), "message names the refusal: {e}");
        }
        other => panic!("fault-injected timing run must be refused, got {other:?}"),
    }
}

#[test]
fn truncated_trace_is_a_structured_error() {
    // A trace with fired-but-undelivered region outputs (here: cut off
    // mid-flight) must surface as SimError::Replay, never a panic.
    let prog = neg_prog(8);
    let mut rec = machine();
    rec.write_private(LaneId(0), 0, &[2.0; 8]);
    let mut trace = rec.run_traced(&prog).expect("timing run");
    let last_fire = trace
        .ops
        .iter()
        .rposition(|op| matches!(op, revel_sim::TraceOp::Fire { .. }))
        .expect("the program fires");
    trace.ops.truncate(last_fire + 1);
    let mut m = machine();
    m.write_private(LaneId(0), 0, &[2.0; 8]);
    match m.replay(&prog, &trace) {
        Err(SimError::Replay(_)) => {}
        other => panic!("truncated trace must desynchronize, got {other:?}"),
    }
}

/// The anti-vacuity pin (ISSUE 7 satellite): a program whose stream
/// lengths are *data*-dependent (a `Dyn` bind reading a word of the
/// dataset) must (a) be refused by the obliviousness certifier, and
/// (b) actually diverge when an A-recorded trace is replayed on B —
/// proving the replay path is gated by something real.
#[test]
fn value_dependent_length_diverges_and_is_refused() {
    const LEN_ADDR: i64 = 63;
    let mut g = Dfg::new("neg");
    let a = g.input(InPortId(0));
    let o = g.op(OpCode::Neg, &[a]);
    g.output(o, OutPortId(0));
    let mut prog = RevelProgram::new("trace-dyn-len");
    let cfg = prog.add_config(vec![Region::systolic("neg", g, 8)]);
    prog.push(VectorCommand::broadcast(
        lane0(),
        StreamCommand::Configure { config: ConfigId(cfg) },
    ));
    let len_bind =
        DynBind { field: DynField::PatternLenI, src: DynSrc::Private { lane: 0, addr: LEN_ADDR } };
    prog.push_dyn(DynStep {
        template: VectorCommand::broadcast(
            lane0(),
            StreamCommand::load(
                MemTarget::Private,
                AffinePattern::linear(0, 8),
                InPortId(0),
                RateFsm::ONCE,
            ),
        ),
        binds: vec![len_bind],
    });
    prog.push_dyn(DynStep {
        template: VectorCommand::broadcast(
            lane0(),
            StreamCommand::store(
                OutPortId(0),
                MemTarget::Private,
                AffinePattern::linear(32, 8),
                RateFsm::ONCE,
            ),
        ),
        binds: vec![len_bind],
    });
    prog.push(VectorCommand::broadcast(lane0(), StreamCommand::Wait));

    // (a) the cert gate refuses: the bound word is part of the dataset.
    let diags = revel_verify::certify(&prog, &RevelConfig::single_lane())
        .expect_err("value-dependent stream length must not certify");
    assert!(!diags.is_empty());

    // (b) replaying A's trace on B silently computes A's *shape* over B's
    // values — different from a full simulation of B.
    let input: Vec<f64> = (1..=8).map(|i| i as f64).collect();
    let mut rec = machine();
    rec.write_private(LaneId(0), 0, &input);
    rec.write_private(LaneId(0), LEN_ADDR, &[8.0]);
    let trace = rec.run_traced(&prog).expect("timing run on A");

    let mut full_b = machine();
    full_b.write_private(LaneId(0), 0, &input);
    full_b.write_private(LaneId(0), LEN_ADDR, &[4.0]);
    let rb = full_b.run(&prog).expect("full sim B");
    assert!(!rb.timed_out);

    let mut rep_b = machine();
    rep_b.write_private(LaneId(0), 0, &input);
    rep_b.write_private(LaneId(0), LEN_ADDR, &[4.0]);
    let diverged = match rep_b.replay(&prog, &trace) {
        Err(SimError::Replay(_)) => true,
        Err(other) => panic!("unexpected error class: {other}"),
        Ok(()) => rep_b.read_private(LaneId(0), 32, 8) != full_b.read_private(LaneId(0), 32, 8),
    };
    assert!(diverged, "uncertified program's replay must diverge from full simulation");
    // Also check the timing runs themselves differ — the length change is
    // timing-visible, which is exactly what the certifier refuses to rule
    // out statically.
    assert_ne!(trace.report.canonical_text(), rb.canonical_text());
}

#[test]
fn replay_surfaces_out_of_bounds_as_sim_error() {
    // A trace whose load addresses walk off the replay machine's
    // scratchpad must produce SimError::Replay (the serve path relies on
    // this never panicking through the worker fence).
    let prog = neg_prog(8);
    let mut rec = machine();
    rec.write_private(LaneId(0), 0, &[1.0; 8]);
    let mut trace = rec.run_traced(&prog).expect("timing run");
    for op in &mut trace.ops {
        if let revel_sim::TraceOp::PushMem { addr, .. } = op {
            *addr += 1_000_000;
        }
    }
    let mut m = machine();
    m.write_private(LaneId(0), 0, &[1.0; 8]);
    match m.replay(&prog, &trace) {
        Err(SimError::Replay(e)) => assert!(e.message.contains("out of bounds"), "{e}"),
        other => panic!("OOB replay must be a structured error, got {other:?}"),
    }
}
