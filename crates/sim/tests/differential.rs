//! The differential stepper oracle: the event-horizon loop must be
//! observationally indistinguishable from the naive reference stepper.
//!
//! Seeded randomized stream programs (spanning systolic and temporal
//! regions, vector widths, XFERs, reconfigurations, inter-lane transfers,
//! and deliberate deadlocks) run under both loops; reports must be
//! bit-identical in every observable field and the final scratchpad
//! contents must match bit-for-bit. The workload-suite cross-check lives
//! in the `sim_differential` harness binary; this test covers program
//! shapes the suite kernels never produce.

use revel_dfg::{Dfg, OpCode, Region};
use revel_fabric::RevelConfig;
use revel_isa::{
    AffinePattern, ConfigId, InPortId, LaneId, LaneMask, MemTarget, OutPortId, RateFsm, Rng,
    StreamCommand, VectorCommand,
};
use revel_sim::{Machine, RevelProgram, RunReport, SimOptions};

/// Input ports grouped by hardware width (see `LaneConfig::paper_default`).
const PORTS_BY_WIDTH: [(usize, &[u8]); 4] =
    [(8, &[0, 1]), (4, &[2, 3]), (2, &[4, 5]), (1, &[6, 7, 8, 9, 10, 11])];

fn broadcast(prog: &mut RevelProgram, lanes: usize, cmd: StreamCommand) {
    prog.push(VectorCommand::broadcast(LaneMask::all(lanes as u8), cmd));
}

/// A random single-input op chain from `in_p` to `out_p`, at most `max_ops`
/// operations deep (bounding PE demand: `max_ops * width` must fit the
/// lane's per-class PE budget).
fn random_chain_region(
    rng: &mut Rng,
    name: &str,
    in_p: u8,
    out_p: u8,
    width: usize,
    max_ops: usize,
) -> Region {
    let mut g = Dfg::new(name);
    let mut x = g.input(InPortId(in_p));
    for _ in 0..rng.gen_index(max_ops) + 1 {
        x = match rng.gen_index(4) {
            0 => g.op(OpCode::Mov, &[x]),
            1 => g.op(OpCode::Neg, &[x]),
            2 => g.op(OpCode::Add, &[x, x]),
            _ => g.op(OpCode::Mul, &[x, x]),
        };
    }
    g.output(x, OutPortId(out_p));
    Region::systolic(name, g, width)
}

/// One single-lane phase: configure, load N words through the region on
/// `port`, store them back at `base`.
fn push_phase(prog: &mut RevelProgram, cfg: u32, port: u8, base: i64, n: i64) {
    broadcast(prog, 1, StreamCommand::Configure { config: ConfigId(cfg) });
    broadcast(
        prog,
        1,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, n),
            InPortId(port),
            RateFsm::ONCE,
        ),
    );
    broadcast(
        prog,
        1,
        StreamCommand::store(
            OutPortId(port),
            MemTarget::Private,
            AffinePattern::linear(base, n),
            RateFsm::ONCE,
        ),
    );
    broadcast(prog, 1, StreamCommand::Wait);
}

/// Builds a seeded random single-lane program: 1–3 phases, each with its own
/// config (so reconfiguration drains run between them), a randomly chosen
/// port width (exercising vector assembly, predication, and stream-end
/// flushes), and a random element count.
fn random_program(seed: u64) -> RevelProgram {
    let mut rng = Rng::seed_from_u64(seed);
    let mut prog = RevelProgram::new(format!("differential-{seed}"));
    let phases = rng.gen_index(3) + 1;
    for ph in 0..phases {
        let (width, ports) = PORTS_BY_WIDTH[rng.gen_index(PORTS_BY_WIDTH.len())];
        let port = ports[rng.gen_index(ports.len())];
        let max_ops = (8 / width).clamp(1, 3);
        let region = random_chain_region(&mut rng, &format!("ph{ph}"), port, port, width, max_ops);
        let cfg = prog.add_config(vec![region]);
        let n = rng.gen_range_i64(1, 49);
        push_phase(&mut prog, cfg, port, 256 + (ph as i64) * 64, n);
    }
    prog
}

/// A temporal (dataflow-PE) program: long-latency Recip/Mul chains create
/// exactly the multi-cycle completion timers the event horizon skips over.
fn temporal_program(seed: u64) -> RevelProgram {
    let mut rng = Rng::seed_from_u64(seed);
    let mut prog = RevelProgram::new(format!("differential-temporal-{seed}"));
    let mut g = Dfg::new("t");
    let a = g.input(InPortId(6));
    let r = g.op(OpCode::Recip, &[a]);
    let m = g.op(OpCode::Mul, &[r, r]);
    let out = if rng.gen_bool() { m } else { g.op(OpCode::Neg, &[m]) };
    g.output(out, OutPortId(6));
    let cfg = prog.add_config(vec![Region::temporal("t", g)]);
    let n = rng.gen_range_i64(1, 9);
    broadcast(&mut prog, 1, StreamCommand::Configure { config: ConfigId(cfg) });
    broadcast(
        &mut prog,
        1,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, n),
            InPortId(6),
            RateFsm::ONCE,
        ),
    );
    broadcast(
        &mut prog,
        1,
        StreamCommand::store(
            OutPortId(6),
            MemTarget::Private,
            AffinePattern::linear(256, n),
            RateFsm::ONCE,
        ),
    );
    broadcast(&mut prog, 1, StreamCommand::Wait);
    prog
}

/// Two lanes chained by an inter-lane XFER, with a local XFER feeding a
/// second region on the destination lane.
fn xfer_program(seed: u64) -> RevelProgram {
    let mut rng = Rng::seed_from_u64(seed);
    let mut prog = RevelProgram::new(format!("differential-xfer-{seed}"));
    let mut copy = Dfg::new("copy");
    let a = copy.input(InPortId(2));
    let mv = copy.op(OpCode::Mov, &[a]);
    copy.output(mv, OutPortId(2));
    let mut neg = Dfg::new("neg");
    let b = neg.input(InPortId(3));
    let ng = neg.op(OpCode::Neg, &[b]);
    neg.output(ng, OutPortId(3));
    let cfg =
        prog.add_config(vec![Region::systolic("copy", copy, 4), Region::systolic("neg", neg, 4)]);
    // Multiple of the port width: XFER destinations assemble full vectors
    // only (no stream-end flush on a transfer, unlike memory loads).
    let n = 4 * rng.gen_range_i64(1, 9);
    broadcast(&mut prog, 2, StreamCommand::Configure { config: ConfigId(cfg) });
    prog.push(VectorCommand::on_lane(
        LaneId(0),
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, n),
            InPortId(2),
            RateFsm::ONCE,
        ),
    ));
    prog.push(VectorCommand::on_lane(
        LaneId(0),
        StreamCommand::xfer_right(OutPortId(2), InPortId(2), n, RateFsm::ONCE, RateFsm::ONCE),
    ));
    prog.push(VectorCommand::on_lane(
        LaneId(1),
        StreamCommand::xfer(OutPortId(2), InPortId(3), n, RateFsm::ONCE, RateFsm::ONCE),
    ));
    prog.push(VectorCommand::on_lane(
        LaneId(1),
        StreamCommand::store(
            OutPortId(3),
            MemTarget::Private,
            AffinePattern::linear(256, n),
            RateFsm::ONCE,
        ),
    ));
    broadcast(&mut prog, 2, StreamCommand::Wait);
    prog
}

/// A program that deadlocks by construction: the store drains an output
/// port no region ever writes, so `Wait` never resolves and the run must
/// exhaust its budget — identically under both steppers, snapshot included.
fn deadlock_program() -> RevelProgram {
    let mut prog = RevelProgram::new("differential-deadlock");
    let mut g = Dfg::new("copy");
    let a = g.input(InPortId(2));
    let mv = g.op(OpCode::Mov, &[a]);
    g.output(mv, OutPortId(2));
    let cfg = prog.add_config(vec![Region::systolic("copy", g, 4)]);
    broadcast(&mut prog, 1, StreamCommand::Configure { config: ConfigId(cfg) });
    broadcast(
        &mut prog,
        1,
        StreamCommand::store(
            OutPortId(3),
            MemTarget::Private,
            AffinePattern::linear(256, 4),
            RateFsm::ONCE,
        ),
    );
    broadcast(&mut prog, 1, StreamCommand::Wait);
    prog
}

/// Runs `prog` under both steppers; asserts observable bit-identity and
/// returns the pair (event-horizon first).
fn assert_bit_identical(
    prog: &RevelProgram,
    lanes: usize,
    max_cycles: u64,
) -> (RunReport, RunReport) {
    let mut runs = Vec::new();
    let mut mems = Vec::new();
    for reference_stepper in [false, true] {
        let cfg = if lanes == 1 {
            RevelConfig::single_lane()
        } else {
            RevelConfig { num_lanes: lanes, ..RevelConfig::paper_default() }
        };
        let opts =
            SimOptions { max_cycles, verify: false, reference_stepper, ..SimOptions::default() };
        let mut m = Machine::new(cfg, opts);
        for l in 0..lanes {
            let data: Vec<f64> = (0..64).map(|i| 1.0 + (i as f64) * 0.25).collect();
            m.write_private(LaneId(l as u8), 0, &data);
        }
        let report = m.run(prog).unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        let words = m.config().lane.spad_words;
        let mem: Vec<u64> = (0..lanes)
            .flat_map(|l| m.read_private(LaneId(l as u8), 0, words))
            .map(f64::to_bits)
            .collect();
        runs.push(report);
        mems.push(mem);
    }
    let reference = runs.pop().expect("two runs");
    let fast = runs.pop().expect("two runs");
    assert_eq!(
        fast.observable(),
        reference.observable(),
        "{}: observable reports diverged",
        prog.name
    );
    assert_eq!(
        fast.canonical_text(),
        reference.canonical_text(),
        "{}: canonical text diverged",
        prog.name
    );
    assert_eq!(mems[0], mems[1], "{}: final scratchpad contents diverged", prog.name);
    assert_eq!(
        reference.stepper.skipped_cycles, 0,
        "{}: the reference stepper must never skip",
        prog.name
    );
    (fast, reference)
}

#[test]
fn random_systolic_programs_bit_identical() {
    for seed in 0..16 {
        let prog = random_program(seed);
        let (fast, _) = assert_bit_identical(&prog, 1, 300_000);
        assert!(!fast.timed_out, "{}: systolic program must complete", prog.name);
    }
}

#[test]
fn random_temporal_programs_bit_identical() {
    for seed in 100..108 {
        let prog = temporal_program(seed);
        let (fast, _) = assert_bit_identical(&prog, 1, 300_000);
        assert!(!fast.timed_out, "temporal program must complete");
    }
}

#[test]
fn random_xfer_programs_bit_identical() {
    for seed in 200..208 {
        let prog = xfer_program(seed);
        let (fast, _) = assert_bit_identical(&prog, 2, 300_000);
        assert!(!fast.timed_out, "xfer program must complete");
    }
}

#[test]
fn deadlocked_program_times_out_identically() {
    let prog = deadlock_program();
    let (fast, reference) = assert_bit_identical(&prog, 1, 3_000);
    assert!(fast.timed_out && reference.timed_out);
    assert_eq!(fast.cycles, 3_000);
    // The event-horizon loop should have jumped over the dead span rather
    // than stepping it.
    assert!(
        fast.stepper.skipped_cycles > 2_000,
        "expected a large skip on a deadlocked run, got {:?}",
        fast.stepper
    );
}

#[test]
fn wall_deadline_composes_with_cycle_budget() {
    // A deadlocked program on the *reference* stepper walks every cycle, so
    // a huge budget plus an already-expired wall deadline must end the run
    // via the deadline: timed_out, deadline_expired, snapshot attached.
    let prog = deadlock_program();
    let opts = SimOptions {
        max_cycles: 50_000_000,
        wall_deadline: Some(std::time::Instant::now()),
        verify: false,
        reference_stepper: true,
        ..SimOptions::default()
    };
    let mut m = Machine::new(RevelConfig::single_lane(), opts);
    let report = m.run(&prog).expect("runs");
    assert!(report.timed_out, "an expired deadline must surface as timed_out");
    assert!(report.deadline_expired, "the deadline (not the budget) must be the cause");
    assert!(report.deadlock.is_some(), "deadline timeouts still carry the machine snapshot");
    assert!(report.cycles < 50_000_000, "the budget was not the cap that fired");

    // The budget path is unchanged: no deadline ⇒ deadline_expired stays
    // false even when the cycle budget fires.
    let opts = SimOptions { max_cycles: 3_000, verify: false, ..SimOptions::default() };
    let mut m = Machine::new(RevelConfig::single_lane(), opts);
    let report = m.run(&prog).expect("runs");
    assert!(report.timed_out && !report.deadline_expired);

    // A generous deadline on a live program must not perturb the run.
    let live = temporal_program(31);
    let with = SimOptions {
        wall_deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(600)),
        verify: false,
        ..SimOptions::default()
    };
    let without = SimOptions { verify: false, ..SimOptions::default() };
    let mut ma = Machine::new(RevelConfig::single_lane(), with);
    let mut mb = Machine::new(RevelConfig::single_lane(), without);
    let ra = ma.run(&live).expect("runs");
    let rb = mb.run(&live).expect("runs");
    assert_eq!(ra.canonical_text(), rb.canonical_text(), "a slack deadline must be invisible");
    assert!(!ra.deadline_expired);
}

#[test]
fn snapshot_present_iff_timed_out() {
    let dead = deadlock_program();
    let (fast, reference) = assert_bit_identical(&dead, 1, 2_000);
    assert!(fast.deadlock.is_some() && reference.deadlock.is_some());
    let live = temporal_program(999);
    let (fast, reference) = assert_bit_identical(&live, 1, 300_000);
    assert!(fast.deadlock.is_none() && reference.deadlock.is_none());
}

#[test]
fn event_horizon_actually_skips_on_long_stalls() {
    // A temporal chain (recip latency 12 + remote-operand penalties) stalls
    // the whole machine on dPE completions; the fast loop must exploit it.
    let prog = temporal_program(42);
    let (fast, _) = assert_bit_identical(&prog, 1, 300_000);
    assert!(
        fast.stepper.skipped_cycles > 0 && fast.stepper.horizon_jumps > 0,
        "no cycles skipped on a stall-heavy program: {:?}",
        fast.stepper
    );
}

#[test]
fn schedule_cache_serves_repeated_runs() {
    let prog = random_program(777_777);
    let s0 = revel_sim::schedule_cache_stats();
    let mut m = Machine::new(
        RevelConfig::single_lane(),
        SimOptions { verify: false, ..SimOptions::default() },
    );
    m.run(&prog).expect("first run");
    m.run(&prog).expect("second run");
    let s1 = revel_sim::schedule_cache_stats();
    // Other tests run concurrently in this process, so assert deltas as
    // lower bounds: at least one miss (first compile) and one hit (rerun).
    assert!(s1.misses > s0.misses, "expected a schedule-cache miss on first run");
    assert!(s1.hits > s0.hits, "expected a schedule-cache hit on repeated run");
    // The exactness invariant the snapshot struct exists for: a miss is
    // counted iff an entry landed, so the two are always equal.
    assert_eq!(s1.misses as usize, s1.entries, "misses must equal cached entries: {s1:?}");
}
