//! Focused tests for the simulator's dependence machinery: production
//! modes, XFER row tracking, accumulator retuning, scratchpad store→load
//! ordering, and the command-issue rules. Each of these was motivated by a
//! concrete kernel; here they are pinned down in isolation.

use revel_dfg::{Dfg, OpCode, Region};
use revel_fabric::RevelConfig;
use revel_isa::{
    AffinePattern, ConfigId, InPortId, LaneId, LaneMask, MemTarget, OutPortId, RateFsm,
    StreamCommand, VectorCommand,
};
use revel_sim::{Machine, RevelProgram, SimOptions};

fn machine() -> Machine {
    Machine::new(
        RevelConfig::single_lane(),
        SimOptions { predication: true, max_cycles: 100_000, ..SimOptions::default() },
    )
}

fn lane0() -> LaneMask {
    LaneMask::single(LaneId(0))
}

/// Identity region: copies in2 -> out2 (and out3).
fn copy_region(dual: bool, unroll: usize) -> Region {
    let mut g = Dfg::new("copy");
    let a = g.input(InPortId(2));
    let m = g.op(OpCode::Mov, &[a]);
    g.output(m, OutPortId(2));
    if dual {
        g.output(m, OutPortId(3));
    }
    Region::systolic("copy", g, unroll)
}

#[test]
fn keep_first_xfer_forwards_group_heads() {
    // Stream 0..12 through, group size 4 (keep-first): heads 0, 4, 8 reach
    // the consumer; a second region doubles them so we can observe.
    let mut prog = RevelProgram::new("keepfirst");
    let mut g2 = Dfg::new("dbl");
    let b = g2.input(InPortId(6));
    let two = g2.konst(2.0);
    let d = g2.op(OpCode::Mul, &[b, two]);
    g2.output(d, OutPortId(6));
    let cfg = prog.add_config(vec![copy_region(false, 1), Region::temporal("dbl", g2)]);
    let p = |prog: &mut RevelProgram, c| prog.push(VectorCommand::broadcast(lane0(), c));
    p(&mut prog, StreamCommand::Configure { config: ConfigId(cfg) });
    p(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, 12),
            InPortId(2),
            RateFsm::ONCE,
        ),
    );
    p(
        &mut prog,
        StreamCommand::xfer(OutPortId(2), InPortId(6), 3, RateFsm::fixed(4), RateFsm::ONCE),
    );
    p(
        &mut prog,
        StreamCommand::store(
            OutPortId(6),
            MemTarget::Private,
            AffinePattern::linear(32, 3),
            RateFsm::ONCE,
        ),
    );
    p(&mut prog, StreamCommand::Wait);

    let mut m = machine();
    let vals: Vec<f64> = (0..12).map(|i| i as f64).collect();
    m.write_private(LaneId(0), 0, &vals);
    let r = m.run(&prog).unwrap();
    assert!(!r.timed_out);
    assert_eq!(m.read_private(LaneId(0), 32, 3), [0.0, 8.0, 16.0]);
}

#[test]
fn drop_first_xfer_forwards_group_tails_with_rows() {
    // Groups of 3 (drop-first): values 1,2, 4,5, 7,8 forwarded; rows of 2
    // mark the group boundaries for the vectorized consumer.
    let mut prog = RevelProgram::new("dropfirst");
    let mut g2 = Dfg::new("neg");
    let b = g2.input(InPortId(3));
    let d = g2.op(OpCode::Neg, &[b]);
    // Out-port 3 is 4 words wide, matching the unroll (port 6 is scalar
    // and would fail the V012 width lint).
    g2.output(d, OutPortId(3));
    let cfg = prog.add_config(vec![copy_region(false, 1), Region::systolic("neg", g2, 4)]);
    let p = |prog: &mut RevelProgram, c| prog.push(VectorCommand::broadcast(lane0(), c));
    p(&mut prog, StreamCommand::Configure { config: ConfigId(cfg) });
    p(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, 9),
            InPortId(2),
            RateFsm::ONCE,
        ),
    );
    p(
        &mut prog,
        StreamCommand::xfer_tail(
            OutPortId(2),
            InPortId(3),
            6,
            RateFsm::fixed(3),
            RateFsm::fixed(2),
        ),
    );
    p(
        &mut prog,
        StreamCommand::store(
            OutPortId(3),
            MemTarget::Private,
            AffinePattern::linear(32, 6),
            RateFsm::ONCE,
        ),
    );
    p(&mut prog, StreamCommand::Wait);

    let mut m = machine();
    let vals: Vec<f64> = (0..9).map(|i| i as f64).collect();
    m.write_private(LaneId(0), 0, &vals);
    let r = m.run(&prog).unwrap();
    assert!(!r.timed_out);
    assert_eq!(m.read_private(LaneId(0), 32, 6), [-1.0, -2.0, -4.0, -5.0, -7.0, -8.0]);
}

#[test]
fn set_accum_len_retunes_between_phases() {
    // Accumulate 8 values as 2 groups of 4, then retune to groups of 2.
    let mut prog = RevelProgram::new("retune");
    let mut g = Dfg::new("acc");
    let a = g.input(InPortId(2));
    let acc = g.accum(a, RateFsm::fixed(4));
    g.output(acc, OutPortId(2));
    let cfg = prog.add_config(vec![Region::systolic("acc", g, 1)]);
    let p = |prog: &mut RevelProgram, c| prog.push(VectorCommand::broadcast(lane0(), c));
    p(&mut prog, StreamCommand::Configure { config: ConfigId(cfg) });
    p(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, 8),
            InPortId(2),
            RateFsm::ONCE,
        ),
    );
    p(
        &mut prog,
        StreamCommand::store(
            OutPortId(2),
            MemTarget::Private,
            AffinePattern::linear(32, 2),
            RateFsm::ONCE,
        ),
    );
    p(&mut prog, StreamCommand::Wait);
    p(&mut prog, StreamCommand::SetAccumLen { region: 0, len: RateFsm::fixed(2) });
    p(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, 4),
            InPortId(2),
            RateFsm::ONCE,
        ),
    );
    p(
        &mut prog,
        StreamCommand::store(
            OutPortId(2),
            MemTarget::Private,
            AffinePattern::linear(34, 2),
            RateFsm::ONCE,
        ),
    );
    p(&mut prog, StreamCommand::Wait);

    let mut m = machine();
    m.write_private(LaneId(0), 0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    let r = m.run(&prog).unwrap();
    assert!(!r.timed_out);
    // Phase 1: 1+2+3+4, 5+6+7+8. Phase 2 (len 2): 1+2, 3+4.
    assert_eq!(m.read_private(LaneId(0), 32, 4), [10.0, 26.0, 3.0, 7.0]);
}

#[test]
fn store_to_load_ordering_write_once() {
    // Producer writes 8 values through memory; a later load reads them.
    // Without the guard the load (issued while the store still runs) would
    // read zeros.
    let mut prog = RevelProgram::new("throughmem");
    let cfg = prog.add_config(vec![copy_region(false, 1)]);
    let p = |prog: &mut RevelProgram, c| prog.push(VectorCommand::broadcast(lane0(), c));
    p(&mut prog, StreamCommand::Configure { config: ConfigId(cfg) });
    // Phase A: copy input -> scratch.
    p(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, 8),
            InPortId(2),
            RateFsm::ONCE,
        ),
    );
    p(
        &mut prog,
        StreamCommand::store(
            OutPortId(2),
            MemTarget::Private,
            AffinePattern::linear(16, 8),
            RateFsm::ONCE,
        ),
    );
    // Phase B (no barrier!): copy scratch -> result; the guard must hold
    // each element until phase A writes it.
    p(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(16, 8),
            InPortId(2),
            RateFsm::ONCE,
        ),
    );
    p(
        &mut prog,
        StreamCommand::store(
            OutPortId(2),
            MemTarget::Private,
            AffinePattern::linear(32, 8),
            RateFsm::ONCE,
        ),
    );
    p(&mut prog, StreamCommand::Wait);

    let mut m = machine();
    let vals: Vec<f64> = (1..=8).map(|i| i as f64).collect();
    m.write_private(LaneId(0), 0, &vals);
    let r = m.run(&prog).unwrap();
    assert!(!r.timed_out);
    assert_eq!(m.read_private(LaneId(0), 32, 8), vals.as_slice());
}

#[test]
fn inter_lane_xfer_moves_data_right() {
    let mut cfg_m = RevelConfig::paper_default();
    cfg_m.num_lanes = 2;
    let mut m = Machine::new(cfg_m, SimOptions::default());

    let mut prog = RevelProgram::new("ring");
    let cfg = prog.add_config(vec![copy_region(false, 1)]);
    // Lane 0: load + copy + xfer right into lane 1's in2... lane 1's
    // region also copies and stores.
    prog.push(VectorCommand::broadcast(
        LaneMask::all(2),
        StreamCommand::Configure { config: ConfigId(cfg) },
    ));
    prog.push(VectorCommand::on_lane(
        LaneId(0),
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, 6),
            InPortId(2),
            RateFsm::ONCE,
        ),
    ));
    prog.push(VectorCommand::on_lane(
        LaneId(0),
        StreamCommand::xfer_right(OutPortId(2), InPortId(2), 6, RateFsm::ONCE, RateFsm::ONCE),
    ));
    prog.push(VectorCommand::on_lane(
        LaneId(1),
        StreamCommand::store(
            OutPortId(2),
            MemTarget::Private,
            AffinePattern::linear(8, 6),
            RateFsm::ONCE,
        ),
    ));
    prog.push(VectorCommand::broadcast(LaneMask::all(2), StreamCommand::Wait));

    let vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
    m.write_private(LaneId(0), 0, &vals);
    let r = m.run(&prog).unwrap();
    assert!(!r.timed_out, "inter-lane transfer deadlocked");
    assert_eq!(m.read_private(LaneId(1), 8, 6), vals.as_slice());
}

#[test]
fn dual_output_regions_feed_two_streams() {
    let mut prog = RevelProgram::new("dual");
    let cfg = prog.add_config(vec![copy_region(true, 1)]);
    let p = |prog: &mut RevelProgram, c| prog.push(VectorCommand::broadcast(lane0(), c));
    p(&mut prog, StreamCommand::Configure { config: ConfigId(cfg) });
    p(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, 5),
            InPortId(2),
            RateFsm::ONCE,
        ),
    );
    p(
        &mut prog,
        StreamCommand::store(
            OutPortId(2),
            MemTarget::Private,
            AffinePattern::linear(16, 5),
            RateFsm::ONCE,
        ),
    );
    p(
        &mut prog,
        StreamCommand::store(
            OutPortId(3),
            MemTarget::Private,
            AffinePattern::linear(24, 5),
            RateFsm::ONCE,
        ),
    );
    p(&mut prog, StreamCommand::Wait);

    let mut m = machine();
    let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
    m.write_private(LaneId(0), 0, &vals);
    let r = m.run(&prog).unwrap();
    assert!(!r.timed_out);
    assert_eq!(m.read_private(LaneId(0), 16, 5), vals.as_slice());
    assert_eq!(m.read_private(LaneId(0), 24, 5), vals.as_slice());
}

#[test]
fn inductive_const_stream_drives_a_port() {
    // The Const pattern of Table II: 0,0,0,1 / 0,0,1 / 0,1 / 1 — the
    // shrinking reset pattern the paper uses as its example.
    use revel_isa::ConstPattern;
    let mut prog = RevelProgram::new("const");
    let mut g = Dfg::new("sum2");
    let a = g.input(InPortId(2));
    let b = g.input(InPortId(6));
    let s = g.op(OpCode::Add, &[a, b]);
    g.output(s, OutPortId(2));
    let cfg = prog.add_config(vec![Region::systolic("sum2", g, 1)]);
    let p = |prog: &mut RevelProgram, c| prog.push(VectorCommand::broadcast(lane0(), c));
    p(&mut prog, StreamCommand::Configure { config: ConfigId(cfg) });
    let total = 4 + 3 + 2; // the paper's example: 0,0,0,1,0,0,1,0,1
    p(
        &mut prog,
        StreamCommand::load(
            MemTarget::Private,
            AffinePattern::linear(0, total),
            InPortId(2),
            RateFsm::ONCE,
        ),
    );
    p(
        &mut prog,
        StreamCommand::konst(
            InPortId(6),
            ConstPattern::two_phase(
                revel_isa::word_from_f64(0.0),
                RateFsm::inductive(3, -1),
                revel_isa::word_from_f64(1.0),
                RateFsm::ONCE,
                3,
            ),
        ),
    );
    p(
        &mut prog,
        StreamCommand::store(
            OutPortId(2),
            MemTarget::Private,
            AffinePattern::linear(32, total),
            RateFsm::ONCE,
        ),
    );
    p(&mut prog, StreamCommand::Wait);

    let mut m = machine();
    m.write_private(LaneId(0), 0, &vec![10.0; total as usize]);
    let r = m.run(&prog).unwrap();
    assert!(!r.timed_out);
    let out = m.read_private(LaneId(0), 32, total as usize);
    let expect = [10., 10., 10., 11., 10., 10., 11., 10., 11.];
    assert_eq!(out, expect);
}
