//! One REVEL vector lane: ports, active streams, region firing, and the
//! triggered-instruction temporal executor.

use crate::fault::FaultKind;
use crate::kernel::NextEvent;
use crate::memory::Scratchpad;
use crate::port::{InPort, OutPort};
use crate::stats::{CycleBreakdown, CycleClass};
use crate::trace::{TraceOp, TraceRecorder};
use revel_dfg::{Dfg, DfgEvaluator, Node, OpCode, Region, RegionKind, VecVal};
use revel_fabric::{EventCounts, LaneConfig};
use revel_isa::{AffinePattern, MemTarget, OutPortId, PatternElem, PatternIter, RateFsm};
use revel_scheduler::RegionSchedule;
use std::collections::VecDeque;

/// A memory pattern walker with one-element lookahead (streams need to
/// retry an element when the destination stalls).
#[derive(Debug, Clone)]
pub(crate) struct PatternWalker {
    iter: PatternIter,
    pending: Option<PatternElem>,
}

impl PatternWalker {
    pub(crate) fn new(pattern: AffinePattern) -> Self {
        PatternWalker { iter: pattern.iter(), pending: None }
    }

    pub(crate) fn peek(&mut self) -> Option<PatternElem> {
        if self.pending.is_none() {
            self.pending = self.iter.next();
        }
        self.pending
    }

    pub(crate) fn advance(&mut self) {
        self.pending = None;
    }

    pub(crate) fn exhausted(&mut self) -> bool {
        self.peek().is_none()
    }

    /// True if the remaining (unvisited) part of the pattern will touch
    /// `addr`. Used for scratchpad store→load ordering.
    pub(crate) fn remaining_contains(&mut self, addr: i64) -> bool {
        if self.pending.is_none() {
            self.pending = self.iter.next();
        }
        if let Some(p) = self.pending {
            if p.offset == addr {
                return true;
            }
        }
        self.iter.clone().any(|e| e.offset == addr)
    }

    /// The outer-row index the walker is currently writing/reading, or
    /// `i64::MAX` when exhausted.
    pub(crate) fn current_row(&mut self) -> i64 {
        match self.peek() {
            Some(e) => e.j,
            None => i64::MAX,
        }
    }
}

/// Tracks inner-row boundaries of a dependence stream so the destination
/// port can apply stream predication (the port FSM "compares the remaining
/// iterations with the port's vector length", §IV-B).
#[derive(Debug, Clone)]
pub(crate) struct RowTracker {
    fsm: Option<RateFsm>,
    idx: i64,
    left: i64,
}

impl RowTracker {
    pub(crate) fn new(fsm: Option<RateFsm>) -> Self {
        let left = fsm.map(|f| f.count_at(0)).unwrap_or(0);
        RowTracker { fsm, idx: 0, left }
    }

    /// Advances past one delivered word; returns true when that word ends
    /// an inner row.
    pub(crate) fn step(&mut self) -> bool {
        let Some(f) = self.fsm else { return false };
        self.left -= 1;
        if self.left <= 0 {
            self.idx += 1;
            self.left = f.count_at(self.idx);
            true
        } else {
            false
        }
    }
}

/// The body of an active stream resident in a lane's stream table.
#[derive(Debug, Clone)]
pub(crate) enum StreamBody {
    /// Memory → input port.
    Load { target: MemTarget, walker: PatternWalker, dst: u8, flushed: bool },
    /// Output port → memory.
    Store {
        src: u8,
        target: MemTarget,
        walker: PatternWalker,
        /// Addresses written so far (distinguishes write-once
        /// producer→consumer streams from in-place multi-version rewrites
        /// in the store→load ordering guard).
        written: std::collections::HashSet<i64>,
    },
    /// Immediate values → input port.
    Const { dst: u8, values: VecDeque<f64> },
    /// Output port → input port, same lane.
    XferLocal { src: u8, dst: u8, remaining: i64, rows: RowTracker },
    /// Output port → input port of the lane to the right. The destination
    /// port is reserved on the destination lane via the cmd-sync mechanism.
    XferRight { src: u8, dst: u8, remaining: i64, rows: RowTracker },
}

#[derive(Debug, Clone)]
pub(crate) struct ActiveStream {
    pub body: StreamBody,
    /// Program-order issue sequence within the lane (for store→load
    /// scratchpad ordering).
    pub seq: u64,
}

impl ActiveStream {
    /// The input port this stream occupies on *this* lane, if any.
    pub(crate) fn local_in_port(&self) -> Option<u8> {
        match &self.body {
            StreamBody::Load { dst, .. }
            | StreamBody::Const { dst, .. }
            | StreamBody::XferLocal { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The output port this stream occupies on this lane, if any.
    pub(crate) fn local_out_port(&self) -> Option<u8> {
        match &self.body {
            StreamBody::Store { src, .. }
            | StreamBody::XferLocal { src, .. }
            | StreamBody::XferRight { src, .. } => Some(*src),
            _ => None,
        }
    }

    pub(crate) fn is_store(&self) -> bool {
        matches!(self.body, StreamBody::Store { .. })
    }
}

/// Per-instruction state of a temporal (dataflow) region instance.
#[derive(Debug, Clone)]
struct TempNode {
    /// Index into the lane's dPE array this instruction is resident on.
    dpe: usize,
    latency: u64,
    /// Indices (into the instance's `nodes`) of argument instructions;
    /// Input/Const arguments are ready at instance creation.
    args: Vec<usize>,
    /// Completion cycle once issued.
    done_at: Option<u64>,
}

/// A firing of a temporal region in flight on the dataflow PEs.
#[derive(Debug, Clone)]
pub(crate) struct TempInstance {
    region: usize,
    nodes: Vec<TempNode>,
    outputs: Vec<(OutPortId, VecVal)>,
}

impl TempInstance {
    pub(crate) fn region_index(&self) -> usize {
        self.region
    }
}

/// Static description of a temporal region's instruction graph, built once
/// per configuration.
#[derive(Debug, Clone)]
struct TemporalShape {
    /// For each instruction: (dpe index, latency, arg instruction indices).
    nodes: Vec<(usize, u64, Vec<usize>)>,
}

/// One configured program region resident on the lane fabric.
#[derive(Debug, Clone)]
pub(crate) struct RegionState {
    pub region: Region,
    eval: DfgEvaluator,
    pub sched: RegionSchedule,
    in_ports: Vec<u8>,
    out_ports: Vec<u8>,
    next_fire: u64,
    /// Matured systolic results waiting for delivery: (ready, outputs).
    inflight: VecDeque<(u64, Vec<(OutPortId, VecVal)>)>,
    temporal_shape: Option<TemporalShape>,
    /// Injected dead-PE fault: the pipeline never fires again (matured
    /// in-flight results still deliver).
    dead: bool,
    /// Injected transient stall: the region cannot fire before this cycle
    /// (0 = not stalled).
    stalled_until: u64,
}

impl RegionState {
    /// Applies a `SetAccumLen` command to this region's accumulators.
    pub(crate) fn set_accum_len(&mut self, len: RateFsm) {
        self.eval.set_accum_len(len);
    }

    pub(crate) fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    pub(crate) fn next_fire_cycle(&self) -> u64 {
        self.next_fire
    }

    pub(crate) fn is_temporal(&self) -> bool {
        self.temporal_shape.is_some()
    }

    /// Input-port indices this region reads from (for replay pre-checks).
    pub(crate) fn input_port_ids(&self) -> &[u8] {
        &self.in_ports
    }

    pub(crate) fn idle(&self) -> bool {
        self.inflight.is_empty()
    }
}

/// One vector lane.
#[derive(Debug, Clone)]
pub(crate) struct Lane {
    pub cfg: LaneConfig,
    pub spad: Scratchpad,
    pub in_ports: Vec<InPort>,
    pub out_ports: Vec<OutPort>,
    pub in_busy: Vec<bool>,
    pub out_busy: Vec<bool>,
    pub cmd_queue: VecDeque<revel_isa::StreamCommand>,
    pub streams: Vec<ActiveStream>,
    pub regions: Vec<RegionState>,
    pub instances: Vec<TempInstance>,
    /// Next stream sequence number.
    pub next_seq: u64,
    num_dpes: usize,
    /// Reconfiguration completes at this cycle (0 = not reconfiguring).
    pub reconfig_until: u64,
    pub breakdown: CycleBreakdown,
    pub events: EventCounts,
    // Per-cycle flags for classification.
    pub fired_systolic: u32,
    pub fired_temporal: bool,
    pub bw_starved: bool,
    pub barrier_blocked: bool,
    pub dep_blocked: bool,
    pub draining: bool,
    /// True if any component of this lane mutated state this cycle (set by
    /// the step phases, reset with the other per-cycle flags). The
    /// event-horizon loop may only skip ahead after a cycle in which no
    /// lane progressed.
    pub progressed: bool,
    /// Classification of the most recently recorded cycle. A skipped stall
    /// span repeats this class: the machine state the classifier reads is
    /// unchanged across the span by the quiescence invariant.
    pub last_class: CycleClass,
    /// Hardware stream-predication support (ablation knob).
    pub predication: bool,
}

impl Lane {
    pub(crate) fn new(cfg: &LaneConfig, predication: bool) -> Self {
        let in_ports = cfg
            .in_port_widths
            .iter()
            .map(|w| InPort::new(*w, cfg.port_fifo_depth))
            .collect::<Vec<_>>();
        let out_ports = cfg
            .out_port_widths
            .iter()
            .map(|w| OutPort::new(*w, cfg.port_fifo_depth))
            .collect::<Vec<_>>();
        Lane {
            cfg: cfg.clone(),
            spad: Scratchpad::new(cfg.spad_words),
            in_busy: vec![false; in_ports.len()],
            out_busy: vec![false; out_ports.len()],
            in_ports,
            out_ports,
            cmd_queue: VecDeque::new(),
            streams: Vec::new(),
            regions: Vec::new(),
            instances: Vec::new(),
            next_seq: 0,
            num_dpes: cfg.num_dataflow_pes.max(1),
            reconfig_until: 0,
            breakdown: CycleBreakdown::default(),
            events: EventCounts::default(),
            fired_systolic: 0,
            fired_temporal: false,
            bw_starved: false,
            barrier_blocked: false,
            dep_blocked: false,
            draining: false,
            progressed: false,
            last_class: CycleClass::Idle,
            predication,
        }
    }

    pub(crate) fn reset_cycle_flags(&mut self) {
        self.fired_systolic = 0;
        self.fired_temporal = false;
        self.bw_starved = false;
        self.barrier_blocked = false;
        self.dep_blocked = false;
        self.draining = false;
        self.progressed = false;
    }

    /// Applies a fabric configuration: installs regions with their
    /// schedules and resets all port state.
    pub(crate) fn apply_config(&mut self, regions: &[Region], schedules: &[RegionSchedule]) {
        assert_eq!(regions.len(), schedules.len());
        self.regions.clear();
        self.instances.clear();
        for (region, sched) in regions.iter().zip(schedules) {
            let temporal_shape = if region.kind == RegionKind::Temporal {
                Some(build_temporal_shape(&region.dfg, self.num_dpes, region.unroll))
            } else {
                None
            };
            self.regions.push(RegionState {
                eval: region.dfg.evaluator(region.unroll),
                region: region.clone(),
                sched: *sched,
                in_ports: region.input_ports().iter().map(|p| p.0).collect(),
                out_ports: region.output_ports().iter().map(|p| p.0).collect(),
                next_fire: 0,
                inflight: VecDeque::new(),
                temporal_shape,
                dead: false,
                stalled_until: 0,
            });
        }
        // Reset ports. Input ports bound to a region run at that region's
        // logical width (scalar inputs at width 1); unbound ports default
        // to their hardware width.
        let mut logical: Vec<usize> = self.cfg.in_port_widths.clone();
        for region in regions {
            for (p, scalar) in region.input_bindings() {
                logical[p.0 as usize] = region.port_logical_width(scalar);
            }
        }
        for (i, p) in self.in_ports.iter_mut().enumerate() {
            *p = InPort::new(logical[i], self.cfg.port_fifo_depth);
        }
        for (i, p) in self.out_ports.iter_mut().enumerate() {
            *p = OutPort::new(self.cfg.out_port_widths[i], self.cfg.port_fifo_depth);
        }
        self.in_busy.iter_mut().for_each(|b| *b = false);
        self.out_busy.iter_mut().for_each(|b| *b = false);
    }

    /// True when no stream, firing, or temporal instance is outstanding.
    pub(crate) fn is_idle(&self) -> bool {
        self.cmd_queue.is_empty()
            && self.streams.is_empty()
            && self.instances.is_empty()
            && self.regions.iter().all(|r| r.idle())
            && self.reconfig_until == 0
    }

    /// True when the fabric has drained (needed before reconfiguration).
    pub(crate) fn fabric_drained(&self) -> bool {
        self.streams.is_empty()
            && self.instances.is_empty()
            && self.regions.iter().all(|r| r.idle())
    }

    pub(crate) fn has_active_store(&self) -> bool {
        self.streams.iter().any(|s| s.is_store())
    }

    /// Fires every region that is ready this cycle.
    pub(crate) fn fire_regions(&mut self, now: u64, li: u8, trace: &mut Option<TraceRecorder>) {
        let has_pending_activity =
            !self.streams.is_empty() || !self.cmd_queue.is_empty() || !self.instances.is_empty();
        for r in 0..self.regions.len() {
            let ready = self.region_ready(r, now);
            match ready {
                ReadyState::Ready => self.fire_region(r, now, li, trace),
                ReadyState::MissingInput => {
                    if has_pending_activity {
                        self.dep_blocked = true;
                    }
                }
                ReadyState::Blocked | ReadyState::NoData => {}
            }
        }
    }

    fn region_ready(&self, r: usize, now: u64) -> ReadyState {
        let rs = &self.regions[r];
        // `dead` is constant state and `stalled_until` is a pure timer
        // enumerated by `RegionState::next_event`, so this check preserves
        // the kernel's quiescence/skip invariant.
        if rs.dead || now < rs.stalled_until {
            return ReadyState::Blocked;
        }
        if now < rs.next_fire || rs.inflight.len() >= 8 {
            return ReadyState::Blocked;
        }
        if rs.is_temporal() {
            // Bound in-flight temporal instances per region.
            let count = self.instances.iter().filter(|i| i.region == r).count();
            if count >= 4 {
                return ReadyState::Blocked;
            }
        }
        let mut any_data = false;
        for p in &rs.in_ports {
            match self.in_ports[*p as usize].peek() {
                Some(_) => any_data = true,
                None => {
                    return if any_data || self.in_ports_have_any_data(rs) {
                        ReadyState::MissingInput
                    } else {
                        ReadyState::NoData
                    };
                }
            }
        }
        for p in &rs.out_ports {
            if !self.out_ports[*p as usize].has_space() {
                return ReadyState::Blocked;
            }
        }
        ReadyState::Ready
    }

    fn in_ports_have_any_data(&self, rs: &RegionState) -> bool {
        rs.in_ports.iter().any(|p| self.in_ports[*p as usize].peek().is_some())
    }

    /// The valid-lane count a fire of region `r` would cover right now:
    /// the minimum head valid-count across full-width vector inputs. Pure
    /// (reads port heads only) — the replayer recomputes it and checks it
    /// against the recorded value as a divergence probe.
    pub(crate) fn compute_fire_valid(&self, r: usize) -> u32 {
        let unroll = self.regions[r].region.unroll;
        let mut fire_valid = unroll as u32;
        for p in &self.regions[r].in_ports {
            let port = &self.in_ports[*p as usize];
            if port.width() == unroll && unroll > 1 {
                if let Some(head) = port.peek() {
                    fire_valid = fire_valid.min(head.valid_count());
                }
            }
        }
        fire_valid.max(1)
    }

    /// The functional half of a region fire: gathers inputs from the ports
    /// (mutating reuse FSMs) and evaluates the DFG, returning the outputs
    /// and the minimum adapted valid-count. Shared verbatim by the timing
    /// walk and the trace replayer — that sharing is what makes replayed
    /// values byte-identical to full simulation.
    pub(crate) fn gather_and_fire(
        &mut self,
        r: usize,
        fire_valid: u32,
    ) -> (Vec<(OutPortId, VecVal)>, u32) {
        let unroll = self.regions[r].region.unroll;
        let in_port_ids = self.regions[r].in_ports.clone();
        // Gather inputs. Scalar-broadcast ports burn `fire_valid` reuse
        // elements per fire (reuse counts are in element units); vector
        // ports consume one presentation per fire.
        let mut inputs = Vec::with_capacity(in_port_ids.len());
        let mut min_valid = unroll as u32;
        for p in &in_port_ids {
            let port = &mut self.in_ports[*p as usize];
            let v = if port.width() < unroll {
                port.take_elems(fire_valid as i64)
            } else {
                port.take()
            };
            self.events.port_words += v.width() as u64;
            let adapted = adapt_width(v, unroll);
            min_valid = min_valid.min(adapted.valid_count());
            inputs.push(adapted);
        }
        (self.regions[r].eval.fire(&inputs), min_valid)
    }

    fn fire_region(&mut self, r: usize, now: u64, li: u8, trace: &mut Option<TraceRecorder>) {
        self.progressed = true;
        let unroll = self.regions[r].region.unroll;
        // The fire covers `fire_valid` logical inner-loop elements: the
        // minimum valid-lane count across full-width vector inputs.
        let fire_valid = self.compute_fire_valid(r);
        if let Some(t) = trace {
            t.record(TraceOp::Fire { lane: li, region: r as u8, fire_valid });
        }
        let (outputs, min_valid) = self.gather_and_fire(r, fire_valid);
        let is_temporal = self.regions[r].is_temporal();

        // Event accounting.
        if is_temporal {
            // dPE instructions are counted when issued by the executor.
        } else {
            for (class, n) in self.regions[r].region.dfg.fu_demand() {
                self.events.count_fu_op(class, (n * unroll) as u64);
            }
            self.events.switch_hops += self.regions[r].sched.hops_per_fire as u64;
        }

        if is_temporal {
            // `temporal_shape` is built for every temporal region at
            // configure time, so it is always present on this branch.
            let shape = self.regions[r].temporal_shape.clone().expect("temporal");
            let nodes = shape
                .nodes
                .iter()
                .map(|(dpe, lat, args)| TempNode {
                    dpe: *dpe,
                    latency: *lat,
                    args: args.clone(),
                    done_at: None,
                })
                .collect();
            self.instances.push(TempInstance { region: r, nodes, outputs });
            self.regions[r].next_fire = now + 1;
        } else {
            let rs = &mut self.regions[r];
            let ready = now + rs.sched.latency as u64;
            rs.inflight.push_back((ready, outputs));
            let mut ii = rs.sched.ii as u64;
            // Without hardware stream predication, a partially-valid vector
            // fire degenerates to scalar-remainder execution: one extra
            // cycle per valid lane beyond the first.
            if !self.predication && (min_valid as usize) < unroll && min_valid > 0 {
                ii += (min_valid - 1) as u64;
            }
            rs.next_fire = now + ii.max(1);
            self.fired_systolic += 1;
        }
    }

    /// Delivers matured systolic outputs to output ports (respecting
    /// FIFO space — backpressure stalls delivery).
    pub(crate) fn deliver_outputs(&mut self, now: u64, li: u8, trace: &mut Option<TraceRecorder>) {
        for r in 0..self.regions.len() {
            while let Some((ready, outs)) = self.regions[r].inflight.front() {
                if *ready > now {
                    break;
                }
                let all_fit = outs
                    .iter()
                    .all(|(p, v)| !v.any_valid() || self.out_ports[p.0 as usize].has_space());
                if !all_fit {
                    break;
                }
                // Front exists: the `while let` just matched it.
                let (_, outs) = self.regions[r].inflight.pop_front().expect("checked");
                if let Some(t) = trace.as_mut() {
                    t.record(TraceOp::Deliver { lane: li, region: r as u8 });
                }
                self.progressed = true;
                for (p, v) in outs {
                    if v.any_valid() {
                        self.events.port_words += v.valid_count() as u64;
                        self.out_ports[p.0 as usize].push(v);
                    }
                }
            }
        }
    }

    /// One cycle of the triggered-instruction executor: each dataflow PE
    /// issues at most one ready instruction.
    pub(crate) fn dpe_step(&mut self, now: u64, li: u8, trace: &mut Option<TraceRecorder>) {
        for dpe in 0..self.num_dpes {
            'instances: for inst in self.instances.iter_mut() {
                for n in 0..inst.nodes.len() {
                    if inst.nodes[n].dpe != dpe || inst.nodes[n].done_at.is_some() {
                        continue;
                    }
                    let ready = inst.nodes[n]
                        .args
                        .iter()
                        .all(|a| inst.nodes[*a].done_at.map(|d| d <= now).unwrap_or(false));
                    if !ready {
                        continue;
                    }
                    // Remote operands pay a temporal-network penalty.
                    let remote = inst.nodes[n].args.iter().any(|a| inst.nodes[*a].dpe != dpe);
                    let extra = if remote { 2 } else { 0 };
                    let lat = inst.nodes[n].latency;
                    inst.nodes[n].done_at = Some(now + lat + extra);
                    self.events.dpe_instrs += 1;
                    self.fired_temporal = true;
                    self.progressed = true;
                    break 'instances;
                }
            }
        }
        // Retire finished instances — in order per region, so dataflow
        // tag-ordering is preserved at the output ports even when a later
        // instance finishes first on another PE.
        let out_ports = &mut self.out_ports;
        let events = &mut self.events;
        let mut blocked_regions: Vec<usize> = Vec::new();
        let mut retired = false;
        self.instances.retain(|inst| {
            if blocked_regions.contains(&inst.region) {
                return true;
            }
            let done = inst.nodes.iter().all(|n| n.done_at.map(|d| d <= now).unwrap_or(false));
            let fits = done
                && inst
                    .outputs
                    .iter()
                    .all(|(p, v)| !v.any_valid() || out_ports[p.0 as usize].has_space());
            if !done || !fits {
                blocked_regions.push(inst.region);
                return true;
            }
            if let Some(t) = trace.as_mut() {
                t.record(TraceOp::RetireTemp { lane: li, region: inst.region as u8 });
            }
            for (p, v) in &inst.outputs {
                if v.any_valid() {
                    events.port_words += v.valid_count() as u64;
                    out_ports[p.0 as usize].push(*v);
                }
            }
            retired = true;
            false
        });
        self.progressed |= retired;
    }

    /// Applies one injected fault against live lane state. Returns `true`
    /// iff state was mutated (a miss — empty port, already-dead region —
    /// is recorded by the caller but changes nothing).
    pub(crate) fn apply_fault(&mut self, kind: FaultKind, now: u64) -> bool {
        match kind {
            FaultKind::DeadPe { region } => {
                if self.regions.is_empty() {
                    return false;
                }
                let r = region as usize % self.regions.len();
                if self.regions[r].dead {
                    return false;
                }
                self.regions[r].dead = true;
                true
            }
            FaultKind::StallPe { region, cycles } => {
                if self.regions.is_empty() {
                    return false;
                }
                let r = region as usize % self.regions.len();
                let until = now + cycles as u64;
                // A stall on a dead region (or one already stalled past
                // `until`) changes no observable behaviour.
                if self.regions[r].dead || self.regions[r].stalled_until >= until {
                    return false;
                }
                self.regions[r].stalled_until = until;
                true
            }
            FaultKind::DropPort { port } => {
                let p = port as usize % self.in_ports.len();
                self.in_ports[p].drop_front()
            }
            FaultKind::BitFlip { port, bit } => {
                let p = port as usize % self.in_ports.len();
                self.in_ports[p].corrupt_front(bit)
            }
        }
    }
}

impl NextEvent for RegionState {
    fn next_event(&self, after: u64) -> Option<u64> {
        // A region's only pure timers are its firing interval, an injected
        // transient stall, and the maturation of its oldest in-flight
        // result (delivery is in-order, so later entries cannot act before
        // the front). A dead region holds no fire timer: it never fires
        // again, and folding `next_fire` forever would stall the horizon.
        let mut next = (!self.dead && self.next_fire > after).then_some(self.next_fire);
        if !self.dead && self.stalled_until > after {
            let s = self.stalled_until;
            next = Some(next.map_or(s, |n| n.min(s)));
        }
        if let Some((ready, _)) = self.inflight.front() {
            if *ready > after {
                next = Some(next.map_or(*ready, |n| n.min(*ready)));
            }
        }
        next
    }
}

impl NextEvent for TempInstance {
    fn next_event(&self, after: u64) -> Option<u64> {
        // A dPE instruction issues when its argument instructions have
        // completed; completions are the only timers in the executor.
        self.nodes.iter().filter_map(|n| n.done_at).filter(|d| *d > after).min()
    }
}

impl NextEvent for Lane {
    fn next_event(&self, after: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut fold = |c: Option<u64>| {
            if let Some(c) = c {
                next = Some(next.map_or(c, |n| n.min(c)));
            }
        };
        if self.reconfig_until > after {
            fold(Some(self.reconfig_until));
        }
        for r in &self.regions {
            fold(r.next_event(after));
        }
        for i in &self.instances {
            fold(i.next_event(after));
        }
        next
    }
}

enum ReadyState {
    Ready,
    /// Some input port empty while others have data (a dependence stall).
    MissingInput,
    /// All input ports empty (nothing scheduled for this region yet).
    NoData,
    /// Structural block: II, pipeline depth, or output backpressure.
    Blocked,
}

/// Widens or narrows a port vector to the region's unroll width:
/// a scalar port value is broadcast; same-width passes through.
fn adapt_width(v: VecVal, unroll: usize) -> VecVal {
    if v.width() == unroll {
        v
    } else if v.width() == 1 {
        match v.get(0) {
            Some(x) => VecVal::splat(x, unroll),
            None => VecVal::invalid(unroll),
        }
    } else {
        // Unreachable for validated programs: `RevelProgram::validate`
        // rejects any binding whose port width cannot serve the region's
        // unroll (ProgramError::PortWidthMismatch), and `Machine::run`
        // validates before simulating. Reaching this means a caller fed
        // the lane model directly with an unvalidated program.
        panic!("port width {} incompatible with region unroll {unroll}", v.width());
    }
}

/// Builds the instruction graph of a temporal region: per instruction node
/// and unroll replica, its dPE (round-robin, matching the scheduler),
/// latency, and argument instruction indices.
fn build_temporal_shape(dfg: &Dfg, num_dpes: usize, unroll: usize) -> TemporalShape {
    let mut nodes = Vec::new();
    for replica in 0..unroll.max(1) {
        // Map node-id -> instruction index within this replica.
        let mut instr_index = vec![usize::MAX; dfg.len()];
        let _ = replica;
        for (id, node) in dfg.iter() {
            let (lat, args) = match node {
                Node::Op { op, args } => (op.latency() as u64, args.clone()),
                Node::Accum { arg, .. } | Node::AccumVec { arg, .. } => {
                    (OpCode::Add.latency() as u64, vec![*arg])
                }
                _ => continue,
            };
            let arg_instrs: Vec<usize> = args
                .iter()
                .filter_map(|a| {
                    let idx = instr_index[a.0 as usize];
                    (idx != usize::MAX).then_some(idx)
                })
                .collect();
            instr_index[id.0 as usize] = nodes.len();
            let dpe = nodes.len() % num_dpes;
            nodes.push((dpe, lat, arg_instrs));
        }
    }
    TemporalShape { nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revel_isa::{InPortId, RateFsm};

    fn lane() -> Lane {
        Lane::new(&LaneConfig::paper_default(), true)
    }

    fn neg_region(unroll: usize) -> (Region, RegionSchedule) {
        let mut g = Dfg::new("neg");
        let a = g.input(InPortId(4)); // width 2
        let n = g.op(OpCode::Neg, &[a]);
        g.output(n, OutPortId(0));
        (
            Region::systolic("neg", g, unroll),
            RegionSchedule { latency: 4, ii: 1, max_delay_fifo: 0, hops_per_fire: 4 },
        )
    }

    #[test]
    fn systolic_fire_and_deliver() {
        let mut l = lane();
        let (r, s) = neg_region(2);
        l.apply_config(&[r], &[s]);
        l.in_ports[4].bind_stream(RateFsm::ONCE);
        assert!(l.in_ports[4].push_word(3.0, false));
        assert!(l.in_ports[4].push_word(4.0, false));
        l.fire_regions(0, 0, &mut None);
        assert_eq!(l.fired_systolic, 1);
        l.deliver_outputs(3, 0, &mut None);
        assert_eq!(l.out_ports[0].occupancy(), 0, "latency 4 not yet reached");
        l.deliver_outputs(4, 0, &mut None);
        assert_eq!(l.out_ports[0].occupancy(), 1);
        assert_eq!(l.out_ports[0].pop_kept(), Some(-3.0));
        assert_eq!(l.out_ports[0].pop_kept(), Some(-4.0));
    }

    #[test]
    fn region_respects_ii() {
        let mut l = lane();
        let (r, mut s) = neg_region(2);
        s.ii = 3;
        l.apply_config(&[r], &[s]);
        l.in_ports[4].bind_stream(RateFsm::ONCE);
        for i in 0..8 {
            l.in_ports[4].push_word(i as f64, false);
        }
        l.fire_regions(0, 0, &mut None);
        assert_eq!(l.fired_systolic, 1);
        l.reset_cycle_flags();
        l.fire_regions(1, 0, &mut None);
        assert_eq!(l.fired_systolic, 0, "II=3 blocks cycle 1");
        l.reset_cycle_flags();
        l.fire_regions(3, 0, &mut None);
        assert_eq!(l.fired_systolic, 1);
    }

    #[test]
    fn temporal_region_executes_on_dpe() {
        let mut l = lane();
        let mut g = Dfg::new("recip");
        let a = g.input(InPortId(5)); // scalar port
        let d = g.op(OpCode::Recip, &[a]);
        let m = g.op(OpCode::Mul, &[d, d]);
        g.output(m, OutPortId(5));
        let region = Region::temporal("recip", g);
        let sched = RegionSchedule { latency: 1, ii: 1, max_delay_fifo: 0, hops_per_fire: 0 };
        l.apply_config(&[region], &[sched]);
        l.in_ports[5].bind_stream(RateFsm::ONCE);
        l.in_ports[5].push_word(4.0, false);
        l.fire_regions(0, 0, &mut None);
        assert_eq!(l.instances.len(), 1);
        // recip: 12 cycles, then mul: 4 cycles, 1 instr/cycle issue.
        let mut produced_at = None;
        for t in 0..40 {
            l.dpe_step(t, 0, &mut None);
            if l.out_ports[5].occupancy() > 0 && produced_at.is_none() {
                produced_at = Some(t);
            }
        }
        let at = produced_at.expect("output produced");
        assert!(at >= 16, "recip+mul takes at least 16 cycles, got {at}");
        assert_eq!(l.out_ports[5].pop_kept(), Some(1.0 / 16.0));
        assert!(l.instances.is_empty());
        assert_eq!(l.events.dpe_instrs, 2);
    }

    #[test]
    fn broadcast_scalar_port_to_vector_region() {
        let mut l = lane();
        let mut g = Dfg::new("scale");
        let x = g.input(InPortId(0)); // width 8
        let s = g.input_scalar(InPortId(5)); // logical width 1 -> broadcast
        let m = g.op(OpCode::Mul, &[x, s]);
        g.output(m, OutPortId(0));
        let region = Region::systolic("scale", g, 8);
        let sched = RegionSchedule { latency: 4, ii: 1, max_delay_fifo: 0, hops_per_fire: 0 };
        l.apply_config(&[region], &[sched]);
        l.in_ports[0].bind_stream(RateFsm::ONCE);
        l.in_ports[5].bind_stream(RateFsm::ONCE);
        for i in 0..8 {
            l.in_ports[0].push_word(i as f64, false);
        }
        l.in_ports[5].push_word(2.0, false);
        l.fire_regions(0, 0, &mut None);
        l.deliver_outputs(4, 0, &mut None);
        let mut outs = Vec::new();
        while let Some(v) = l.out_ports[0].pop_kept() {
            outs.push(v);
        }
        assert_eq!(outs, [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn predicated_fire_without_hw_predication_pays_scalar_cycles() {
        let mut lane_no_pred = Lane::new(&LaneConfig::paper_default(), false);
        let mut g = Dfg::new("neg");
        let a = g.input(InPortId(2)); // width 4
        let n = g.op(OpCode::Neg, &[a]);
        g.output(n, OutPortId(0));
        let region = Region::systolic("neg", g, 4);
        let sched = RegionSchedule { latency: 2, ii: 1, max_delay_fifo: 0, hops_per_fire: 0 };
        lane_no_pred.apply_config(&[region], &[sched]);
        lane_no_pred.in_ports[2].bind_stream(RateFsm::ONCE);
        // 3 of 4 lanes valid (row end).
        lane_no_pred.in_ports[2].push_word(1.0, false);
        lane_no_pred.in_ports[2].push_word(2.0, false);
        lane_no_pred.in_ports[2].push_word(3.0, true);
        lane_no_pred.fire_regions(0, 0, &mut None);
        // next_fire should be 0 + 1 + (3-1) = 3.
        assert_eq!(lane_no_pred.regions[0].next_fire, 3);
    }

    #[test]
    fn dep_blocked_flag_set() {
        let mut l = lane();
        let mut g = Dfg::new("two");
        let a = g.input(InPortId(5)); // scalar port, will have data
        let b = g.input(InPortId(4)); // empty port, awaited
        let s = g.op(OpCode::Add, &[a, b]);
        g.output(s, OutPortId(0));
        let region = Region::systolic("two", g, 1);
        let sched = RegionSchedule { latency: 2, ii: 1, max_delay_fifo: 0, hops_per_fire: 0 };
        l.apply_config(&[region], &[sched]);
        l.in_ports[5].bind_stream(RateFsm::ONCE);
        l.in_ports[5].push_word(1.0, false);
        // Pretend a stream is outstanding so the block counts as dependence.
        l.streams.push(ActiveStream {
            body: StreamBody::Const { dst: 4, values: VecDeque::new() },
            seq: 0,
        });
        l.fire_regions(0, 0, &mut None);
        assert_eq!(l.fired_systolic, 0);
        assert!(l.dep_blocked);
    }
}
