//! Stream engines: sources (loads, consts) fill input ports under
//! bandwidth budgets; drains (stores, XFERs) empty output ports; completed
//! streams retire and free their ports.
//!
//! Progress tracking caveat: [`OutPort::pop_kept`] can mutate the port and
//! still return `None` — a spent head vector (trailing predicated-off
//! lanes, or values consumed by the discard FSM) is popped while scanning,
//! freeing FIFO space that may unblock a region next cycle. A `None` from
//! `pop_kept` therefore must not be read as "nothing happened"; the drain
//! loops compare occupancy around the call instead.
//!
//! [`OutPort::pop_kept`]: crate::port::OutPort::pop_kept

use crate::lane::{Lane, PatternWalker, StreamBody};
use crate::machine::Machine;
use crate::trace::TraceOp;
use revel_isa::MemTarget;

impl Machine {
    /// Moves data for source streams: loads (private + shared) and consts.
    /// Returns `true` iff any word moved or a stream-end flush landed.
    pub(crate) fn run_source_streams(&mut self, _now: u64) -> bool {
        let mut progress = false;
        let mut shared_budget = self.cfg.shared_spad_bw_words;
        let num_lanes = self.lanes.len();
        for li in 0..num_lanes {
            let lane = &mut self.lanes[li];
            let mut priv_budget = lane.cfg.spad_bw_words;
            let mut const_budget = lane.cfg.xfer_bw_words;
            // Snapshot of active store streams for store→load ordering: a
            // load may not read an address an *older* store has yet to
            // write (fine-grain scratchpad dependence tracking, which is
            // what lets the paper's solver/Cholesky recirculate vectors
            // through memory without full barriers).
            let store_guards: Vec<(u64, MemTarget, PatternWalker, std::collections::HashSet<i64>)> =
                lane.streams
                    .iter()
                    .filter_map(|s| match &s.body {
                        StreamBody::Store { target, walker, written, .. } => {
                            Some((s.seq, *target, walker.clone(), written.clone()))
                        }
                        _ => None,
                    })
                    .collect();
            let Lane { streams, in_ports, spad, events, .. } = lane;
            let mut starved = false;
            let mut sync_blocked = false;
            for stream in streams.iter_mut() {
                let seq = stream.seq;
                match &mut stream.body {
                    StreamBody::Load { target, walker, dst, flushed } => {
                        let budget: &mut usize = match target {
                            MemTarget::Private => &mut priv_budget,
                            MemTarget::Shared => &mut shared_budget,
                        };
                        let port = &mut in_ports[*dst as usize];
                        while let Some(elem) = walker.peek() {
                            if *budget == 0 {
                                starved = true;
                                break;
                            }
                            if !port.can_accept() {
                                break;
                            }
                            // Store→load ordering: a load may not read an
                            // address an older store has yet to write. For
                            // write-once (producer→consumer) streams the
                            // load releases per element as soon as the
                            // address is written; for in-place multi-pass
                            // streams (the address was already written once
                            // and will be rewritten) the load synchronizes
                            // at row granularity — later rewrites are
                            // anti-dependences ordered by the dataflow
                            // itself.
                            let blocked =
                                store_guards.iter().any(|(sseq, starget, sw, written)| {
                                    let mut sw = sw.clone();
                                    *sseq < seq
                                        && *starget == *target
                                        && sw.remaining_contains(elem.offset)
                                        && (!written.contains(&elem.offset)
                                            || sw.current_row() <= elem.j)
                                });
                            if blocked {
                                sync_blocked = true;
                                break;
                            }
                            let val = match target {
                                MemTarget::Private => spad.read_f64(elem.offset),
                                MemTarget::Shared => self.shared.read_f64(elem.offset),
                            };
                            if !port.push_word(val, elem.last_in_row) {
                                break;
                            }
                            if let Some(t) = &mut self.trace {
                                t.record(TraceOp::PushMem {
                                    lane: li as u8,
                                    port: *dst,
                                    target: *target,
                                    addr: elem.offset,
                                    row_end: elem.last_in_row,
                                });
                            }
                            walker.advance();
                            *budget -= 1;
                            progress = true;
                            events.port_words += 1;
                            match target {
                                MemTarget::Private => events.spad_words += 1,
                                MemTarget::Shared => events.shared_spad_words += 1,
                            }
                        }
                        if walker.exhausted() && !*flushed {
                            // `flush_at_stream_end` mutates nothing when it
                            // returns false, so the transition is the only
                            // progress case.
                            *flushed = port.flush_at_stream_end();
                            progress |= *flushed;
                            if *flushed {
                                if let Some(t) = &mut self.trace {
                                    t.record(TraceOp::FlushIn { lane: li as u8, port: *dst });
                                }
                            }
                        }
                    }
                    StreamBody::Const { dst, values } => {
                        let port = &mut in_ports[*dst as usize];
                        while const_budget > 0 {
                            let Some(v) = values.front() else { break };
                            if !port.can_accept() || !port.push_word(*v, false) {
                                break;
                            }
                            if let Some(t) = &mut self.trace {
                                t.record(TraceOp::PushConst {
                                    lane: li as u8,
                                    port: *dst,
                                    bits: v.to_bits(),
                                });
                            }
                            values.pop_front();
                            const_budget -= 1;
                            progress = true;
                            events.port_words += 1;
                        }
                    }
                    _ => {}
                }
            }
            lane.bw_starved |= starved;
            lane.barrier_blocked |= sync_blocked;
        }
        progress
    }

    /// Moves data for drain streams: stores (private + shared), local
    /// XFERs, and inter-lane XFERs. Returns `true` iff any output-port
    /// state changed (including hidden pops of spent head vectors).
    pub(crate) fn run_drain_streams(&mut self, _now: u64) -> bool {
        let mut progress = false;
        let mut shared_budget = self.cfg.shared_spad_bw_words;
        let num_lanes = self.lanes.len();
        // Stores and local xfers (single-lane).
        for li in 0..num_lanes {
            let lane = &mut self.lanes[li];
            let mut priv_budget = lane.cfg.spad_bw_words;
            let mut xfer_budget = lane.cfg.xfer_bw_words;
            let Lane { streams, in_ports, out_ports, spad, events, .. } = lane;
            let mut starved = false;
            for stream in streams.iter_mut() {
                match &mut stream.body {
                    StreamBody::Store { src, target, walker, written } => {
                        let budget: &mut usize = match target {
                            MemTarget::Private => &mut priv_budget,
                            MemTarget::Shared => &mut shared_budget,
                        };
                        let port = &mut out_ports[*src as usize];
                        while let Some(elem) = walker.peek() {
                            if *budget == 0 {
                                if port.occupancy() > 0 {
                                    starved = true;
                                }
                                break;
                            }
                            let occ_before = port.occupancy();
                            let Some(v) = port.pop_kept() else {
                                if port.occupancy() != occ_before {
                                    progress = true;
                                    if let Some(t) = &mut self.trace {
                                        t.record(TraceOp::PopSpent { lane: li as u8, port: *src });
                                    }
                                }
                                break;
                            };
                            progress = true;
                            written.insert(elem.offset);
                            match target {
                                MemTarget::Private => {
                                    spad.write_f64(elem.offset, v);
                                    events.spad_words += 1;
                                }
                                MemTarget::Shared => {
                                    self.shared.write_f64(elem.offset, v);
                                    events.shared_spad_words += 1;
                                }
                            }
                            if let Some(t) = &mut self.trace {
                                t.record(TraceOp::PopStore {
                                    lane: li as u8,
                                    port: *src,
                                    target: *target,
                                    addr: elem.offset,
                                });
                            }
                            events.port_words += 1;
                            walker.advance();
                            *budget -= 1;
                        }
                    }
                    StreamBody::XferLocal { src, dst, remaining, rows } => {
                        let sp = *src as usize;
                        let dp = *dst as usize;
                        while *remaining > 0 && xfer_budget > 0 {
                            if !in_ports[dp].can_accept() {
                                break;
                            }
                            let occ_before = out_ports[sp].occupancy();
                            let Some(v) = out_ports[sp].pop_kept() else {
                                if out_ports[sp].occupancy() != occ_before {
                                    progress = true;
                                    if let Some(t) = &mut self.trace {
                                        t.record(TraceOp::PopSpent { lane: li as u8, port: *src });
                                    }
                                }
                                break;
                            };
                            progress = true;
                            let row_end = rows.step();
                            let ok = in_ports[dp].push_word(v, row_end);
                            debug_assert!(ok, "can_accept guaranteed space");
                            if let Some(t) = &mut self.trace {
                                t.record(TraceOp::XferWord {
                                    src_lane: li as u8,
                                    src_port: *src,
                                    dst_lane: li as u8,
                                    dst_port: *dst,
                                    row_end,
                                });
                            }
                            *remaining -= 1;
                            xfer_budget -= 1;
                            events.bus_words += 2; // bus out + bus in
                        }
                    }
                    _ => {}
                }
            }
            lane.bw_starved |= starved;
        }
        // Inter-lane XFERs (need two lanes mutably).
        for li in 0..num_lanes {
            let ri = (li + 1) % num_lanes;
            if ri == li {
                continue;
            }
            let (a, b) = if li < ri {
                let (left, right) = self.lanes.split_at_mut(ri);
                (&mut left[li], &mut right[0])
            } else {
                let (left, right) = self.lanes.split_at_mut(li);
                (&mut right[0], &mut left[ri])
            };
            let mut budget = a.cfg.inter_lane_bw_words;
            for stream in a.streams.iter_mut() {
                if let StreamBody::XferRight { src, dst, remaining, rows } = &mut stream.body {
                    let sp = *src as usize;
                    let dp = *dst as usize;
                    while *remaining > 0 && budget > 0 {
                        if !b.in_ports[dp].can_accept() {
                            break;
                        }
                        let occ_before = a.out_ports[sp].occupancy();
                        let Some(v) = a.out_ports[sp].pop_kept() else {
                            if a.out_ports[sp].occupancy() != occ_before {
                                progress = true;
                                if let Some(t) = &mut self.trace {
                                    t.record(TraceOp::PopSpent { lane: li as u8, port: *src });
                                }
                            }
                            break;
                        };
                        progress = true;
                        let row_end = rows.step();
                        let ok = b.in_ports[dp].push_word(v, row_end);
                        debug_assert!(ok, "can_accept guaranteed space");
                        if let Some(t) = &mut self.trace {
                            t.record(TraceOp::XferWord {
                                src_lane: li as u8,
                                src_port: *src,
                                dst_lane: ri as u8,
                                dst_port: *dst,
                                row_end,
                            });
                        }
                        *remaining -= 1;
                        budget -= 1;
                        a.events.bus_words += 2;
                    }
                }
            }
        }
        progress
    }

    /// Removes completed streams and frees their ports. Returns `true` iff
    /// any stream retired.
    pub(crate) fn retire_streams(&mut self) -> bool {
        let mut retired = false;
        let num_lanes = self.lanes.len();
        for li in 0..num_lanes {
            let mut to_free_right: Vec<u8> = Vec::new();
            {
                let lane = &mut self.lanes[li];
                let Lane { streams, in_busy, out_busy, .. } = lane;
                streams.retain_mut(|s| {
                    let done = match &mut s.body {
                        StreamBody::Load { walker, flushed, .. } => walker.exhausted() && *flushed,
                        StreamBody::Store { walker, .. } => walker.exhausted(),
                        StreamBody::Const { values, .. } => values.is_empty(),
                        StreamBody::XferLocal { remaining, .. }
                        | StreamBody::XferRight { remaining, .. } => *remaining <= 0,
                    };
                    if done {
                        retired = true;
                        if let Some(p) = s.local_in_port() {
                            in_busy[p as usize] = false;
                        }
                        if let Some(p) = s.local_out_port() {
                            out_busy[p as usize] = false;
                        }
                        if let StreamBody::XferRight { dst, .. } = &s.body {
                            to_free_right.push(*dst);
                        }
                    }
                    !done
                });
            }
            if !to_free_right.is_empty() {
                let ri = (li + 1) % num_lanes;
                for p in to_free_right {
                    self.lanes[ri].in_busy[p as usize] = false;
                }
            }
        }
        retired
    }
}
