//! The control core: a single-issue command processor that constructs and
//! ships vector-stream commands, executes host ops, and blocks on `Wait`.

use super::NextEvent;
use crate::lane::Lane;
use crate::machine::Machine;
use crate::memory::Scratchpad;
use revel_isa::{LaneId, StreamCommand};
use revel_prog::{ControlStep, DynSrc, HostMem, RevelProgram};

/// Architectural state of the control core.
#[derive(Debug, Clone, Default)]
pub(crate) struct ControlCore {
    pub pc: usize,
    pub busy_until: u64,
    pub waiting: bool,
    pub commands_issued: u64,
}

impl NextEvent for ControlCore {
    fn next_event(&self, after: u64) -> Option<u64> {
        // `busy_until` is the core's only pure timer. `waiting` resolves on
        // lane state, and a full destination queue drains on lane progress;
        // both wake the loop through lane-side progress, not a clock.
        (self.busy_until > after).then_some(self.busy_until)
    }
}

/// Adapter giving host ops access to the machine's scratchpads.
pub(crate) struct MachineMem<'a> {
    pub lanes: &'a mut Vec<Lane>,
    pub shared: &'a mut Scratchpad,
}

impl HostMem for MachineMem<'_> {
    fn read(&self, lane: Option<u8>, addr: i64) -> f64 {
        match lane {
            Some(l) => self.lanes[l as usize].spad.read_f64(addr),
            None => self.shared.read_f64(addr),
        }
    }

    fn write(&mut self, lane: Option<u8>, addr: i64, value: f64) {
        match lane {
            Some(l) => self.lanes[l as usize].spad.write_f64(addr, value),
            None => self.shared.write_f64(addr, value),
        }
    }
}

impl Machine {
    pub(crate) fn program_finished(&self, program: &RevelProgram) -> bool {
        self.control.pc >= program.control.len() && !self.control.waiting && self.all_lanes_idle()
    }

    /// The single idle predicate: every lane has no queued command, stream,
    /// instance, in-flight firing, or pending reconfiguration. Used by both
    /// `Wait` resolution and program completion.
    pub(crate) fn all_lanes_idle(&self) -> bool {
        self.lanes.iter().all(|l| l.is_idle())
    }

    /// The control core: constructs and ships one vector-stream command per
    /// `cmd_issue_cycles`, and blocks on `Wait`. Returns `true` iff core
    /// state advanced (wait released, host op run, command shipped).
    pub(crate) fn control_step(&mut self, now: u64, program: &RevelProgram) -> bool {
        let mut progress = false;
        if self.control.waiting {
            if self.all_lanes_idle() {
                self.control.waiting = false;
                progress = true;
            } else {
                return false;
            }
        }
        if self.control.pc >= program.control.len() || now < self.control.busy_until {
            return progress;
        }
        let vc_owned;
        let vc = match &program.control[self.control.pc] {
            ControlStep::Host(op) => {
                // Host computations synchronize with the fabric through
                // explicit Wait steps placed before them by the builder;
                // here the core just burns cycles and touches memory.
                if let Some(t) = &mut self.trace {
                    t.record(crate::trace::TraceOp::Host { pc: self.control.pc as u32 });
                }
                let mut mem = MachineMem { lanes: &mut self.lanes, shared: &mut self.shared };
                (op.func)(&mut mem);
                self.control.busy_until = now + op.cycles.max(1);
                self.control.pc += 1;
                return true;
            }
            ControlStep::Command(vc) => vc,
            ControlStep::Dyn(ds) => {
                // Resolve the template against scratchpad words at issue
                // time. Resolution is a pure read, so re-resolving on a
                // queue-full retry is deterministic: memory only changes
                // through events that also wake this loop.
                let lanes = &self.lanes;
                let shared = &self.shared;
                let mut read = |src: DynSrc| match src {
                    DynSrc::Shared { addr } => shared.read_f64(addr),
                    DynSrc::Private { lane, addr } => {
                        lanes.get(lane as usize).map_or(0.0, |l| l.spad.read_f64(addr))
                    }
                };
                match ds.resolve_with(&mut read) {
                    Some(mut vc) => {
                        // A patched Configure index saturates at the last
                        // config: the fabric has nothing else to load.
                        if let StreamCommand::Configure { config } = &mut vc.cmd {
                            let last = program.configs.len().saturating_sub(1) as u32;
                            config.0 = config.0.min(last);
                        }
                        vc_owned = vc;
                        &vc_owned
                    }
                    None => {
                        // Guard read zero: the command vanishes, but the
                        // core still burns its issue slot deciding so.
                        self.control.busy_until = now + self.cfg.cmd_issue_cycles;
                        self.control.pc += 1;
                        return true;
                    }
                }
            }
        };
        if matches!(vc.cmd, StreamCommand::Wait) {
            self.control.waiting = true;
            self.control.pc += 1;
            self.control.busy_until = now + self.cfg.cmd_issue_cycles;
            return true;
        }
        // All destination queues must have space.
        let targets: Vec<usize> =
            vc.lanes.iter().map(|l| l.0 as usize).filter(|l| *l < self.lanes.len()).collect();
        if targets.iter().any(|&l| self.lanes[l].cmd_queue.len() >= self.cfg.lane.cmd_queue_entries)
        {
            return progress; // retry next cycle
        }
        for &l in &targets {
            let specialized = vc.specialize(LaneId(l as u8));
            self.lanes[l].cmd_queue.push_back(specialized);
        }
        self.control.commands_issued += 1;
        self.control_events.commands += 1;
        self.control.busy_until = now + self.cfg.cmd_issue_cycles;
        self.control.pc += 1;
        true
    }
}
