//! Command issue: from per-lane command queues into the stream table,
//! fabric configuration, barriers, and accumulator-length updates.

use crate::lane::{ActiveStream, PatternWalker, RowTracker, StreamBody};
use crate::machine::Machine;
use crate::trace::TraceOp;
use revel_isa::{LaneHop, MemTarget, ProdMode, StreamCommand};
use revel_prog::RevelProgram;
use revel_scheduler::RegionSchedule;

impl Machine {
    /// Issues commands from each lane's queue to the stream table. Commands
    /// execute in program order *per port*; independent ports may issue out
    /// of order past a stalled command (the queue scans forward). Barriers
    /// and reconfigurations serialize the queue. Returns `true` iff any
    /// command issued, retired, or armed a reconfiguration deadline.
    pub(crate) fn issue_commands(
        &mut self,
        now: u64,
        program: &RevelProgram,
        schedules: &[Vec<RegionSchedule>],
    ) -> bool {
        let mut progress = false;
        for li in 0..self.lanes.len() {
            let mut issued = 0usize;
            let mut blocked_in: Vec<u8> = Vec::new();
            let mut blocked_out: Vec<u8> = Vec::new();
            // Loads may not bypass an earlier *unissued* store to the same
            // scratchpad: once a store issues it is visible to the
            // store→load ordering guard, but a store still in the queue is
            // not, so program order must hold at issue time.
            let mut store_pending_private = false;
            let mut store_pending_shared = false;
            let mut qi = 0usize;
            while issued < 2 && qi < self.lanes[li].cmd_queue.len() {
                let cmd = self.lanes[li].cmd_queue[qi].clone();
                match &cmd {
                    StreamCommand::Configure { config } => {
                        if qi != 0 {
                            break; // configure serializes the queue
                        }
                        let lane = &mut self.lanes[li];
                        lane.draining = true;
                        if !lane.fabric_drained() {
                            break;
                        }
                        if lane.reconfig_until == 0 {
                            // Arming the deadline is a state change: the
                            // event horizon must see it before skipping.
                            lane.reconfig_until = self.cfg.reconfig_deadline(now);
                            progress = true;
                            break;
                        }
                        if now < lane.reconfig_until {
                            break;
                        }
                        let idx = config.0 as usize;
                        lane.apply_config(&program.configs[idx], &schedules[idx]);
                        if let Some(t) = &mut self.trace {
                            t.record(TraceOp::Configure { lane: li as u8, config: config.0 });
                        }
                        lane.reconfig_until = 0;
                        lane.draining = false;
                        lane.cmd_queue.pop_front();
                        issued += 1;
                        progress = true;
                        continue;
                    }
                    StreamCommand::BarrierScratch => {
                        if qi != 0 {
                            break;
                        }
                        if self.lanes[li].has_active_store() {
                            self.lanes[li].barrier_blocked = true;
                            break;
                        }
                        self.lanes[li].cmd_queue.pop_front();
                        issued += 1;
                        progress = true;
                        continue;
                    }
                    StreamCommand::SetAccumLen { region, len } => {
                        // Applies once the region has drained its in-flight
                        // work (serializes the queue like a barrier).
                        if qi != 0 {
                            break;
                        }
                        let lane = &mut self.lanes[li];
                        let r = *region as usize;
                        if r < lane.regions.len() {
                            if !lane.regions[r].idle()
                                || lane.instances.iter().any(|i| i.region_index() == r)
                            {
                                break;
                            }
                            lane.regions[r].set_accum_len(*len);
                            if let Some(t) = &mut self.trace {
                                t.record(TraceOp::SetAccumLen {
                                    lane: li as u8,
                                    region: r as u8,
                                    len: *len,
                                });
                            }
                        }
                        lane.cmd_queue.pop_front();
                        issued += 1;
                        progress = true;
                        continue;
                    }
                    StreamCommand::Wait => {
                        // Wait is control-core level; drop if it leaked here.
                        self.lanes[li].cmd_queue.remove(qi);
                        progress = true;
                        continue;
                    }
                    _ => {}
                }
                // Port-conflict scan: commands behind a blocked command on
                // the same port must not bypass it; loads must not bypass
                // unissued stores to the same scratchpad.
                let in_p = cmd.dst_in_port().map(|p| p.0);
                let out_p = cmd.src_out_port().map(|p| p.0);
                let mem_conflict = match &cmd {
                    StreamCommand::Load { target: MemTarget::Private, .. } => store_pending_private,
                    StreamCommand::Load { target: MemTarget::Shared, .. } => store_pending_shared,
                    _ => false,
                };
                let conflicts = mem_conflict
                    || in_p.map(|p| blocked_in.contains(&p)).unwrap_or(false)
                    || out_p.map(|p| blocked_out.contains(&p)).unwrap_or(false);
                if !conflicts && self.try_issue_stream(li, &cmd) {
                    self.lanes[li].cmd_queue.remove(qi);
                    issued += 1;
                    progress = true;
                } else {
                    if let Some(p) = in_p {
                        blocked_in.push(p);
                    }
                    if let Some(p) = out_p {
                        blocked_out.push(p);
                    }
                    if let StreamCommand::Store { target, .. } = &cmd {
                        match target {
                            MemTarget::Private => store_pending_private = true,
                            MemTarget::Shared => store_pending_shared = true,
                        }
                    }
                    qi += 1;
                }
            }
        }
        progress
    }

    /// Attempts to bind a stream command to ports and the stream table.
    fn try_issue_stream(&mut self, li: usize, cmd: &StreamCommand) -> bool {
        if self.lanes[li].streams.len() >= self.cfg.lane.stream_table_entries {
            return false;
        }
        match cmd {
            StreamCommand::Load { target, pattern, dst, reuse } => {
                let lane = &mut self.lanes[li];
                let d = dst.0 as usize;
                if lane.in_busy[d] || !in_port_rebindable(&lane.in_ports[d], reuse) {
                    return false;
                }
                lane.in_busy[d] = true;
                lane.in_ports[d].bind_stream(*reuse);
                if let Some(t) = &mut self.trace {
                    t.record(TraceOp::BindIn { lane: li as u8, port: dst.0, reuse: *reuse });
                }
                let seq = lane.next_seq;
                lane.next_seq += 1;
                lane.streams.push(ActiveStream {
                    body: StreamBody::Load {
                        target: *target,
                        walker: PatternWalker::new(*pattern),
                        dst: dst.0,
                        flushed: false,
                    },
                    seq,
                });
                true
            }
            StreamCommand::Const { dst, pattern } => {
                let lane = &mut self.lanes[li];
                let d = dst.0 as usize;
                if lane.in_busy[d]
                    || !in_port_rebindable(&lane.in_ports[d], &revel_isa::RateFsm::ONCE)
                {
                    return false;
                }
                lane.in_busy[d] = true;
                lane.in_ports[d].bind_stream(revel_isa::RateFsm::ONCE);
                if let Some(t) = &mut self.trace {
                    t.record(TraceOp::BindIn {
                        lane: li as u8,
                        port: dst.0,
                        reuse: revel_isa::RateFsm::ONCE,
                    });
                }
                let values = pattern.expand().into_iter().map(f64::from_bits).collect();
                let seq = lane.next_seq;
                lane.next_seq += 1;
                lane.streams
                    .push(ActiveStream { body: StreamBody::Const { dst: dst.0, values }, seq });
                true
            }
            StreamCommand::Store { src, target, pattern, discard } => {
                let lane = &mut self.lanes[li];
                let s = src.0 as usize;
                if lane.out_busy[s] {
                    return false;
                }
                lane.out_busy[s] = true;
                lane.out_ports[s].bind_stream(*discard);
                if let Some(t) = &mut self.trace {
                    t.record(TraceOp::BindOut {
                        lane: li as u8,
                        port: src.0,
                        discard: *discard,
                        mode: ProdMode::KeepFirst,
                    });
                }
                let seq = lane.next_seq;
                lane.next_seq += 1;
                lane.streams.push(ActiveStream {
                    body: StreamBody::Store {
                        src: src.0,
                        target: *target,
                        walker: PatternWalker::new(*pattern),
                        written: std::collections::HashSet::new(),
                    },
                    seq,
                });
                true
            }
            StreamCommand::Xfer { route, outer, production, prod_mode, consumption, rows } => {
                let s = route.src.0 as usize;
                let d = route.dst.0 as usize;
                let hop = match route.hop {
                    LaneHop::Right if (li + 1) % self.lanes.len() != li => LaneHop::Right,
                    // Single lane: the right neighbour is this lane.
                    _ => LaneHop::Local,
                };
                match hop {
                    LaneHop::Local => {
                        let lane = &mut self.lanes[li];
                        if lane.out_busy[s]
                            || lane.in_busy[d]
                            || !in_port_rebindable(&lane.in_ports[d], consumption)
                        {
                            return false;
                        }
                        lane.out_busy[s] = true;
                        lane.in_busy[d] = true;
                        lane.out_ports[s].bind_stream_mode(*production, *prod_mode);
                        lane.in_ports[d].bind_stream(*consumption);
                        if let Some(t) = &mut self.trace {
                            t.record(TraceOp::BindOut {
                                lane: li as u8,
                                port: route.src.0,
                                discard: *production,
                                mode: *prod_mode,
                            });
                            t.record(TraceOp::BindIn {
                                lane: li as u8,
                                port: route.dst.0,
                                reuse: *consumption,
                            });
                        }
                        let seq = lane.next_seq;
                        lane.next_seq += 1;
                        lane.streams.push(ActiveStream {
                            body: StreamBody::XferLocal {
                                src: route.src.0,
                                dst: route.dst.0,
                                remaining: *outer,
                                rows: RowTracker::new(*rows),
                            },
                            seq,
                        });
                        true
                    }
                    LaneHop::Right => {
                        let ri = (li + 1) % self.lanes.len();
                        if self.lanes[li].out_busy[s]
                            || self.lanes[ri].in_busy[d]
                            || !in_port_rebindable(&self.lanes[ri].in_ports[d], consumption)
                        {
                            return false;
                        }
                        self.lanes[li].out_busy[s] = true;
                        self.lanes[ri].in_busy[d] = true;
                        self.lanes[li].out_ports[s].bind_stream_mode(*production, *prod_mode);
                        self.lanes[ri].in_ports[d].bind_stream(*consumption);
                        if let Some(t) = &mut self.trace {
                            t.record(TraceOp::BindOut {
                                lane: li as u8,
                                port: route.src.0,
                                discard: *production,
                                mode: *prod_mode,
                            });
                            t.record(TraceOp::BindIn {
                                lane: ri as u8,
                                port: route.dst.0,
                                reuse: *consumption,
                            });
                        }
                        let seq = self.lanes[li].next_seq;
                        self.lanes[li].next_seq += 1;
                        self.lanes[li].streams.push(ActiveStream {
                            body: StreamBody::XferRight {
                                src: route.src.0,
                                dst: route.dst.0,
                                remaining: *outer,
                                rows: RowTracker::new(*rows),
                            },
                            seq,
                        });
                        true
                    }
                }
            }
            StreamCommand::Configure { .. }
            | StreamCommand::SetAccumLen { .. }
            | StreamCommand::BarrierScratch
            | StreamCommand::Wait => unreachable!("handled in issue_commands"),
        }
    }
}

/// A new stream may bind to an input port when the port is drained, or
/// when leftover data is still flowing through under the trivial
/// once-per-value rate and the new stream also uses it (the FIFO contents
/// stay valid across the rebinding; non-trivial FSMs must drain so their
/// per-value indexing stays aligned).
fn in_port_rebindable(port: &crate::port::InPort, new_reuse: &revel_isa::RateFsm) -> bool {
    port.is_drained() || (port.reuse_is_trivial() && new_reuse.is_trivial())
}
