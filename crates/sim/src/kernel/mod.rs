//! The cycle kernel: a component-clock architecture for the run loop.
//!
//! `Machine::step` is a fixed pipeline of phases (control → command issue →
//! port ticks → source streams → fabric → drain streams → retirement →
//! classification). Historically the run loop invoked it for *every* cycle
//! up to the budget, even across multi-thousand-cycle stall regimes where
//! the whole machine was waiting on one known-future deadline.
//!
//! This module restructures that into two cooperating pieces:
//!
//! * **Progress instrumentation** — every phase reports whether it mutated
//!   any component's persistent state this cycle; [`Machine::step`] returns
//!   the disjunction.
//! * **The [`NextEvent`] trait** — each stateful component (control core,
//!   region pipelines, temporal instances, lanes, the whole machine)
//!   reports the earliest *future* cycle at which a pure timer it owns can
//!   flip (`busy_until`, `reconfig_until`, `next_fire`, in-flight
//!   maturation, dPE completion).
//!
//! # The quiescence/skip invariant
//!
//! **A cycle may be skipped iff no component's observable state can change
//! in it.** The kernel establishes this conservatively: after a step that
//! made *no* progress, every phase is a pure function of (machine state,
//! timer comparisons against `now`). Machine state is unchanged by
//! definition of no-progress, and every `now` comparison in the step
//! pipeline tests one of the timers enumerated by [`NextEvent`]. Hence all
//! cycles strictly before the machine-wide event horizon replay the same
//! no-op step with the same per-lane classification, and the loop may jump
//! `now` to the horizon, bulk-recording the span via
//! [`CycleBreakdown::record_span`](crate::CycleBreakdown::record_span).
//!
//! Wake-ups are conservative: a timer crossing need not produce progress
//! (e.g. a region's `next_fire` arriving while its input port is still
//! empty). The loop then simply steps one more no-op cycle and skips again
//! from a strictly later horizon, so there is no livelock. If no component
//! reports any future event while the program is unfinished, the machine
//! is deadlocked and the loop jumps straight to the cycle budget — exactly
//! what the naive stepper would spin its way to.
//!
//! # The differential oracle
//!
//! The naive stepper is retained behind
//! [`SimOptions::reference_stepper`](crate::SimOptions::reference_stepper):
//! it never skips, and therefore trivially satisfies the invariant. Both
//! loops must produce bit-identical observable reports
//! ([`RunReport::observable`](crate::RunReport::observable)); the
//! `sim-differential` CI job and `crates/sim/tests/differential.rs` enforce
//! this across the full workload × architecture × ablation suite plus
//! randomized stream programs.

mod control;
mod issue;
mod streams;

pub(crate) use control::{ControlCore, MachineMem};

use crate::machine::Machine;
use crate::stats::{CycleClass, StepperStats};
use crate::trace::TraceOp;
use revel_prog::RevelProgram;
use revel_scheduler::RegionSchedule;

/// A component clock: reports the earliest future cycle at which this
/// component's own timers can change its behaviour.
///
/// `after` is exclusive: implementations return the smallest owned deadline
/// strictly greater than `after`, or `None` if the component holds no
/// future deadline. Returning an *earlier-than-necessary* cycle is always
/// safe (the loop wakes, finds nothing to do, and skips again); returning a
/// *later* one would violate the quiescence invariant.
pub trait NextEvent {
    /// Earliest cycle strictly after `after` at which state can change.
    fn next_event(&self, after: u64) -> Option<u64>;
}

/// What `Machine::execute` observed while running the loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Execution {
    /// Cycles from start to completion (or budget exhaustion).
    pub cycles: u64,
    /// True if the cycle budget or the wall-clock deadline ran out first.
    pub timed_out: bool,
    /// True if the cap that fired was the wall-clock deadline.
    pub deadline_expired: bool,
    /// Skip accounting (all zeros under the reference stepper).
    pub stats: StepperStats,
}

impl NextEvent for Machine {
    fn next_event(&self, after: u64) -> Option<u64> {
        let mut next = self.control.next_event(after);
        for lane in &self.lanes {
            if let Some(c) = lane.next_event(after) {
                next = Some(next.map_or(c, |n| n.min(c)));
            }
        }
        // A pending injected fault is a component clock: the skip loop must
        // wake at the injection cycle so the event applies exactly there.
        if let Some(c) = self.faults.next_cycle(after) {
            next = Some(next.map_or(c, |n| n.min(c)));
        }
        next
    }
}

impl Machine {
    /// Runs the cycle loop to completion or the budget, under either the
    /// event-horizon kernel or the reference stepper.
    pub(crate) fn execute(
        &mut self,
        program: &RevelProgram,
        schedules: &[Vec<RegionSchedule>],
        max_cycles: u64,
    ) -> Execution {
        let reference = self.opts.reference_stepper;
        let deadline = self.opts.wall_deadline;
        let mut now = 0u64;
        let mut timed_out = false;
        let mut deadline_expired = false;
        let mut stats = StepperStats::default();
        // Host-loop iterations between wall-clock checks. `Instant::now()`
        // is cheap but not free; checking every iteration would tax the
        // reference stepper's 50M-cycle walks. 4096 iterations bound the
        // overshoot to well under a millisecond of simulated work.
        const DEADLINE_STRIDE: u64 = 4096;
        let mut iters = 0u64;
        loop {
            if self.program_finished(program) {
                break;
            }
            if now >= max_cycles {
                timed_out = true;
                break;
            }
            if let Some(d) = deadline {
                // Stride-gated: the deadline is a host-side safety cap, not
                // an architectural event, so an inexact firing cycle is fine
                // (the run is declared hung either way).
                if iters.is_multiple_of(DEADLINE_STRIDE) && std::time::Instant::now() >= d {
                    timed_out = true;
                    deadline_expired = true;
                    break;
                }
                iters += 1;
            }
            let progress = self.step(now, program, schedules);
            now += 1;
            if reference || progress {
                continue;
            }
            // Quiescent: cycle `now - 1` changed nothing, so every cycle
            // before the event horizon replays it verbatim. `after` is the
            // just-stepped cycle; candidates at exactly `now` yield no skip.
            let horizon = self.next_event(now - 1).unwrap_or(max_cycles).min(max_cycles);
            if horizon > now {
                let span = horizon - now;
                for lane in &mut self.lanes {
                    let class = lane.last_class;
                    lane.breakdown.record_span(class, span);
                }
                stats.skipped_cycles += span;
                stats.horizon_jumps += 1;
                now = horizon;
            }
        }
        Execution { cycles: now, timed_out, deadline_expired, stats }
    }

    /// One machine cycle. Returns `true` iff any component's persistent
    /// state changed (the per-cycle classification flags and breakdown
    /// counters are bookkeeping, not state).
    ///
    /// Phase order is architectural and load-bearing: commands issue before
    /// streams move, sources fill ports before regions fire, drains run
    /// after delivery so same-cycle forwarding works, and retirement sees
    /// the cycle's final stream state.
    pub(crate) fn step(
        &mut self,
        now: u64,
        program: &RevelProgram,
        schedules: &[Vec<RegionSchedule>],
    ) -> bool {
        for lane in &mut self.lanes {
            lane.reset_cycle_flags();
        }
        // Faults apply before any other phase so the rest of the cycle sees
        // the degraded state (a region killed at cycle C must not fire at
        // cycle C). Applying one counts as progress.
        let mut progress = self.apply_faults(now);
        progress |= self.control_step(now, program);
        progress |= self.issue_commands(now, program, schedules);
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            for (pi, p) in lane.in_ports.iter_mut().enumerate() {
                if p.tick() {
                    progress = true;
                    if let Some(t) = &mut self.trace {
                        t.record(TraceOp::TickIn { lane: li as u8, port: pi as u8 });
                    }
                }
            }
        }
        progress |= self.run_source_streams(now);
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            lane.fire_regions(now, li as u8, &mut self.trace);
            lane.dpe_step(now, li as u8, &mut self.trace);
            lane.deliver_outputs(now, li as u8, &mut self.trace);
        }
        progress |= self.run_drain_streams(now);
        progress |= self.retire_streams();
        let program_done = self.control.pc >= program.control.len() && !self.control.waiting;
        for lane in &mut self.lanes {
            let class = classify(lane, program_done);
            lane.breakdown.record(class);
            lane.last_class = class;
            progress |= lane.progressed;
        }
        progress
    }
}

/// Classifies what a lane did this cycle (Fig. 23 taxonomy).
///
/// Everything read here is either machine state or a per-cycle flag
/// recomputed from machine state and timer comparisons, so on a no-progress
/// cycle the classification is identical for every cycle up to the event
/// horizon — which is what lets the skip loop repeat `last_class`.
fn classify(lane: &crate::lane::Lane, program_done: bool) -> CycleClass {
    if lane.fired_systolic >= 2 {
        CycleClass::MultiIssue
    } else if lane.fired_systolic == 1 {
        CycleClass::Issue
    } else if lane.fired_temporal {
        CycleClass::Temporal
    } else if lane.draining || lane.reconfig_until != 0 {
        CycleClass::Drain
    } else if lane.bw_starved {
        CycleClass::ScrBw
    } else if lane.barrier_blocked {
        CycleClass::ScrBarrier
    } else if lane.dep_blocked {
        CycleClass::StreamDpd
    } else if lane.is_idle() {
        if program_done {
            CycleClass::Idle
        } else {
            CycleClass::CtrlOvhd
        }
    } else if lane.cmd_queue.is_empty() && lane.streams.is_empty() {
        CycleClass::CtrlOvhd
    } else {
        CycleClass::StreamDpd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::Lane;
    use crate::machine::SimOptions;
    use revel_fabric::{LaneConfig, RevelConfig};

    #[test]
    fn idle_lane_has_no_events() {
        let lane = Lane::new(&LaneConfig::paper_default(), true);
        assert_eq!(lane.next_event(0), None);
    }

    #[test]
    fn lane_reconfig_deadline_is_an_event() {
        let mut lane = Lane::new(&LaneConfig::paper_default(), true);
        lane.reconfig_until = 64;
        assert_eq!(lane.next_event(0), Some(64));
        assert_eq!(lane.next_event(63), Some(64));
        assert_eq!(lane.next_event(64), None, "deadline is exclusive of `after`");
    }

    #[test]
    fn machine_folds_control_and_lane_events() {
        let mut m = Machine::new(RevelConfig::single_lane(), SimOptions::default());
        assert_eq!(m.next_event(0), None);
        m.control.busy_until = 10;
        m.lanes[0].reconfig_until = 7;
        assert_eq!(m.next_event(0), Some(7));
        assert_eq!(m.next_event(7), Some(10));
        assert_eq!(m.next_event(10), None);
    }
}
