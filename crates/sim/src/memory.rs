use revel_isa::Word;

/// A scratchpad: a flat array of 64-bit words with bounds-checked access.
///
/// REVEL has one private scratchpad per lane (8 KB) and one shared
/// scratchpad (128 KB) that doubles as the external memory interface.
/// Bandwidth limits are enforced by the stream engines, not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scratchpad {
    words: Vec<Word>,
}

impl Scratchpad {
    /// A zero-initialized scratchpad of `words` 64-bit words.
    pub fn new(words: usize) -> Self {
        Scratchpad { words: vec![0; words] }
    }

    /// Capacity in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the scratchpad has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads one word.
    ///
    /// # Panics
    /// Panics if `addr` is out of bounds (a stream walked off the
    /// scratchpad — a program bug worth failing loudly on).
    pub fn read(&self, addr: i64) -> Word {
        assert!(
            addr >= 0 && (addr as usize) < self.words.len(),
            "scratchpad read out of bounds: {addr} (size {})",
            self.words.len()
        );
        self.words[addr as usize]
    }

    /// Writes one word.
    ///
    /// # Panics
    /// Panics if `addr` is out of bounds.
    pub fn write(&mut self, addr: i64, value: Word) {
        assert!(
            addr >= 0 && (addr as usize) < self.words.len(),
            "scratchpad write out of bounds: {addr} (size {})",
            self.words.len()
        );
        self.words[addr as usize] = value;
    }

    /// True if `addr` names a valid word.
    pub fn in_bounds(&self, addr: i64) -> bool {
        addr >= 0 && (addr as usize) < self.words.len()
    }

    /// Reads one word, returning `None` instead of panicking when `addr`
    /// is out of bounds. Replay paths fed by untrusted dataset extents
    /// use this so OOB surfaces as a structured error, never a panic.
    pub fn try_read(&self, addr: i64) -> Option<Word> {
        if self.in_bounds(addr) {
            Some(self.words[addr as usize])
        } else {
            None
        }
    }

    /// Writes one word, returning `false` instead of panicking when
    /// `addr` is out of bounds.
    #[must_use]
    pub fn try_write(&mut self, addr: i64, value: Word) -> bool {
        if self.in_bounds(addr) {
            self.words[addr as usize] = value;
            true
        } else {
            false
        }
    }

    /// Reads an `f64` stored at `addr`.
    pub fn read_f64(&self, addr: i64) -> f64 {
        f64::from_bits(self.read(addr))
    }

    /// Writes an `f64` at `addr`.
    pub fn write_f64(&mut self, addr: i64, value: f64) {
        self.write(addr, value.to_bits());
    }

    /// Bulk-writes a slice of `f64` starting at `addr`.
    ///
    /// # Panics
    /// Panics if the slice does not fit.
    pub fn write_f64_slice(&mut self, addr: i64, values: &[f64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr + i as i64, *v);
        }
    }

    /// Bulk-reads `len` `f64`s starting at `addr`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn read_f64_slice(&self, addr: i64, len: usize) -> Vec<f64> {
        (0..len).map(|i| self.read_f64(addr + i as i64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut s = Scratchpad::new(16);
        s.write_f64(3, 2.5);
        assert_eq!(s.read_f64(3), 2.5);
        s.write(0, 42);
        assert_eq!(s.read(0), 42);
        assert_eq!(s.len(), 16);
        assert!(!s.is_empty());
    }

    #[test]
    fn slices() {
        let mut s = Scratchpad::new(8);
        s.write_f64_slice(2, &[1.0, 2.0, 3.0]);
        assert_eq!(s.read_f64_slice(2, 3), [1.0, 2.0, 3.0]);
    }

    #[test]
    fn checked_access_never_panics() {
        let mut s = Scratchpad::new(4);
        assert!(s.in_bounds(0) && s.in_bounds(3));
        assert!(!s.in_bounds(-1) && !s.in_bounds(4));
        assert_eq!(s.try_read(3), Some(0));
        assert_eq!(s.try_read(4), None);
        assert_eq!(s.try_read(-1), None);
        assert!(s.try_write(3, 9));
        assert_eq!(s.try_read(3), Some(9));
        assert!(!s.try_write(4, 1));
        assert!(!s.try_write(i64::MIN, 1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let s = Scratchpad::new(4);
        let _ = s.read(4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn negative_write_panics() {
        let mut s = Scratchpad::new(4);
        s.write(-1, 0);
    }
}
