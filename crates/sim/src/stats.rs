//! Cycle-level statistics: the bottleneck taxonomy of Fig. 23 plus event
//! counters for the power model.

use revel_fabric::EventCounts;

/// What a lane did (or was blocked on) during one cycle, in priority order.
/// These are exactly the categories of the paper's Fig. 23.
///
/// The discriminants are the indices into [`CycleBreakdown`]'s count array
/// (and match the position in [`CycleClass::ALL`]); `record`/`count` run
/// per lane per cycle, so the mapping must stay O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CycleClass {
    /// Two or more systolic regions fired this cycle.
    MultiIssue = 0,
    /// Exactly one systolic region fired.
    Issue = 1,
    /// Only a temporal (dataflow-PE) instruction issued.
    Temporal = 2,
    /// The fabric was draining for reconfiguration.
    Drain = 3,
    /// A stream wanted to move data but scratchpad bandwidth was exhausted.
    ScrBw = 4,
    /// Blocked on a scratchpad barrier.
    ScrBarrier = 5,
    /// Waiting on a dependence: a region's input port was empty while its
    /// producing stream had not delivered yet.
    StreamDpd = 6,
    /// Waiting on the control core: no commands in the queue but the
    /// program was not finished.
    CtrlOvhd = 7,
    /// Nothing to do (program finished or lane unused).
    Idle = 8,
}

impl CycleClass {
    /// All classes in display order (Fig. 23 stacking order).
    pub const ALL: [CycleClass; 9] = [
        CycleClass::MultiIssue,
        CycleClass::Issue,
        CycleClass::Temporal,
        CycleClass::Drain,
        CycleClass::ScrBw,
        CycleClass::ScrBarrier,
        CycleClass::StreamDpd,
        CycleClass::CtrlOvhd,
        CycleClass::Idle,
    ];

    /// Index into [`CycleBreakdown`]'s count array (the discriminant).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            CycleClass::MultiIssue => "multi-issue",
            CycleClass::Issue => "issue",
            CycleClass::Temporal => "temporal",
            CycleClass::Drain => "drain",
            CycleClass::ScrBw => "scr-b/w",
            CycleClass::ScrBarrier => "scr-barrier",
            CycleClass::StreamDpd => "stream-dpd",
            CycleClass::CtrlOvhd => "ctrl-ovhd",
            CycleClass::Idle => "idle",
        }
    }
}

/// Per-lane cycle breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    counts: [u64; 9],
}

impl CycleBreakdown {
    /// Records one cycle of the given class.
    #[inline]
    pub fn record(&mut self, class: CycleClass) {
        self.counts[class.index()] += 1;
    }

    /// Cycles spent in a class.
    #[inline]
    pub fn count(&self, class: CycleClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total classified cycles.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of cycles in a class (0 when no cycles recorded).
    pub fn fraction(&self, class: CycleClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(class) as f64 / t as f64
        }
    }

    /// Merges another breakdown into this one.
    pub fn add(&mut self, other: &CycleBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Cycles doing useful fabric work (multi-issue + issue + temporal).
    pub fn busy(&self) -> u64 {
        self.count(CycleClass::MultiIssue)
            + self.count(CycleClass::Issue)
            + self.count(CycleClass::Temporal)
    }
}

/// The report returned by a simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total cycles from start to completion.
    pub cycles: u64,
    /// Per-lane cycle breakdowns.
    pub lane_breakdown: Vec<CycleBreakdown>,
    /// Aggregate event counts (for the power model).
    pub events: EventCounts,
    /// Stream commands issued by the control core.
    pub commands_issued: u64,
    /// True if the run hit the cycle limit before completing (deadlock or
    /// runaway program).
    pub timed_out: bool,
}

impl RunReport {
    /// Aggregate breakdown across lanes.
    pub fn total_breakdown(&self) -> CycleBreakdown {
        let mut total = CycleBreakdown::default();
        for b in &self.lane_breakdown {
            total.add(b);
        }
        total
    }

    /// Mean fabric utilization across lanes (busy cycles / total cycles).
    pub fn utilization(&self) -> f64 {
        let total = self.total_breakdown();
        if total.total() == 0 {
            0.0
        } else {
            total.busy() as f64 / total.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_records_and_fractions() {
        let mut b = CycleBreakdown::default();
        b.record(CycleClass::Issue);
        b.record(CycleClass::Issue);
        b.record(CycleClass::CtrlOvhd);
        b.record(CycleClass::MultiIssue);
        assert_eq!(b.total(), 4);
        assert_eq!(b.count(CycleClass::Issue), 2);
        assert!((b.fraction(CycleClass::Issue) - 0.5).abs() < 1e-12);
        assert_eq!(b.busy(), 3);
    }

    #[test]
    fn breakdown_merge() {
        let mut a = CycleBreakdown::default();
        a.record(CycleClass::Drain);
        let mut b = CycleBreakdown::default();
        b.record(CycleClass::Drain);
        b.record(CycleClass::Idle);
        a.add(&b);
        assert_eq!(a.count(CycleClass::Drain), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            CycleClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), CycleClass::ALL.len());
    }

    #[test]
    fn empty_fraction_is_zero() {
        let b = CycleBreakdown::default();
        assert_eq!(b.fraction(CycleClass::Issue), 0.0);
    }

    #[test]
    fn class_index_matches_display_order() {
        // `record`/`count` index the counts array by discriminant; the
        // discriminants must stay aligned with the Fig. 23 stacking order.
        for (i, c) in CycleClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?}");
        }
    }
}
