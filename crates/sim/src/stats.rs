//! Cycle-level statistics: the bottleneck taxonomy of Fig. 23 plus event
//! counters for the power model.

use crate::fault::{FaultSnapshot, RunOutcome};
use crate::snapshot::DeadlockSnapshot;
use revel_fabric::EventCounts;
use std::fmt::Write as _;

/// What a lane did (or was blocked on) during one cycle, in priority order.
/// These are exactly the categories of the paper's Fig. 23.
///
/// The discriminants are the indices into [`CycleBreakdown`]'s count array
/// (and match the position in [`CycleClass::ALL`]); `record`/`count` run
/// per lane per cycle, so the mapping must stay O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CycleClass {
    /// Two or more systolic regions fired this cycle.
    MultiIssue = 0,
    /// Exactly one systolic region fired.
    Issue = 1,
    /// Only a temporal (dataflow-PE) instruction issued.
    Temporal = 2,
    /// The fabric was draining for reconfiguration.
    Drain = 3,
    /// A stream wanted to move data but scratchpad bandwidth was exhausted.
    ScrBw = 4,
    /// Blocked on a scratchpad barrier.
    ScrBarrier = 5,
    /// Waiting on a dependence: a region's input port was empty while its
    /// producing stream had not delivered yet.
    StreamDpd = 6,
    /// Waiting on the control core: no commands in the queue but the
    /// program was not finished.
    CtrlOvhd = 7,
    /// Nothing to do (program finished or lane unused).
    Idle = 8,
}

impl CycleClass {
    /// All classes in display order (Fig. 23 stacking order).
    pub const ALL: [CycleClass; 9] = [
        CycleClass::MultiIssue,
        CycleClass::Issue,
        CycleClass::Temporal,
        CycleClass::Drain,
        CycleClass::ScrBw,
        CycleClass::ScrBarrier,
        CycleClass::StreamDpd,
        CycleClass::CtrlOvhd,
        CycleClass::Idle,
    ];

    /// Index into [`CycleBreakdown`]'s count array (the discriminant).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            CycleClass::MultiIssue => "multi-issue",
            CycleClass::Issue => "issue",
            CycleClass::Temporal => "temporal",
            CycleClass::Drain => "drain",
            CycleClass::ScrBw => "scr-b/w",
            CycleClass::ScrBarrier => "scr-barrier",
            CycleClass::StreamDpd => "stream-dpd",
            CycleClass::CtrlOvhd => "ctrl-ovhd",
            CycleClass::Idle => "idle",
        }
    }
}

/// Per-lane cycle breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    counts: [u64; 9],
}

impl CycleBreakdown {
    /// Records one cycle of the given class.
    #[inline]
    pub fn record(&mut self, class: CycleClass) {
        self.counts[class.index()] += 1;
    }

    /// Records `n` consecutive cycles of the given class in O(1).
    ///
    /// The event-horizon loop uses this to account for a skipped stall
    /// span; it must be indistinguishable from calling [`record`] `n`
    /// times (pinned by a regression test).
    ///
    /// [`record`]: CycleBreakdown::record
    #[inline]
    pub fn record_span(&mut self, class: CycleClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Cycles spent in a class.
    #[inline]
    pub fn count(&self, class: CycleClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total classified cycles.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of cycles in a class (0 when no cycles recorded).
    pub fn fraction(&self, class: CycleClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(class) as f64 / t as f64
        }
    }

    /// Merges another breakdown into this one.
    pub fn add(&mut self, other: &CycleBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Cycles doing useful fabric work (multi-issue + issue + temporal).
    pub fn busy(&self) -> u64 {
        self.count(CycleClass::MultiIssue)
            + self.count(CycleClass::Issue)
            + self.count(CycleClass::Temporal)
    }
}

/// How the run loop spent (or skipped) host work. Pure measurement of the
/// simulator itself — deliberately *not* part of the observable report,
/// because the reference stepper skips nothing by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepperStats {
    /// Machine cycles the event-horizon loop advanced past without
    /// stepping (their breakdown classes were bulk-recorded).
    pub skipped_cycles: u64,
    /// Number of distinct horizon jumps (each covers ≥1 skipped cycle).
    pub horizon_jumps: u64,
}

/// The report returned by a simulation run.
///
/// Deliberately does **not** derive `PartialEq`: the event-horizon loop and
/// the reference stepper differ in [`RunReport::stepper`] by design, so
/// whole-struct equality would be a trap. Compare runs with
/// [`RunReport::observable`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total cycles from start to completion.
    pub cycles: u64,
    /// Per-lane cycle breakdowns.
    pub lane_breakdown: Vec<CycleBreakdown>,
    /// Aggregate event counts (for the power model).
    pub events: EventCounts,
    /// Stream commands issued by the control core.
    pub commands_issued: u64,
    /// True if the run hit the cycle limit before completing (deadlock or
    /// runaway program).
    pub timed_out: bool,
    /// True if the cap that ended the run was the *wall-clock* deadline
    /// ([`SimOptions::wall_deadline`](crate::SimOptions::wall_deadline))
    /// rather than the cycle budget. Host-side accounting like
    /// [`RunReport::stepper`]: deliberately excluded from the observable
    /// report and the canonical text, because where the wall clock lands is
    /// not deterministic.
    pub deadline_expired: bool,
    /// Machine state at timeout (`Some` iff [`RunReport::timed_out`]).
    pub deadlock: Option<DeadlockSnapshot>,
    /// Fault-injection account (`Some` iff the run carried a
    /// [`FaultPlan`](crate::FaultPlan), even when every event missed).
    /// Part of the observable report: both steppers must inject and record
    /// identically.
    pub fault: Option<FaultSnapshot>,
    /// Host-side loop accounting (not architecturally observable).
    pub stepper: StepperStats,
}

/// The architecturally observable slice of a [`RunReport`]: every field
/// both steppers must agree on bit-for-bit. Borrowed views keep the
/// comparison allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservableReport<'a> {
    /// Total cycles from start to completion.
    pub cycles: u64,
    /// Per-lane cycle breakdowns.
    pub lane_breakdown: &'a [CycleBreakdown],
    /// Aggregate event counts.
    pub events: &'a EventCounts,
    /// Stream commands issued by the control core.
    pub commands_issued: u64,
    /// True if the run hit the cycle limit.
    pub timed_out: bool,
    /// Machine state at timeout, if any.
    pub deadlock: Option<&'a DeadlockSnapshot>,
    /// Fault-injection account, if the run carried a plan.
    pub fault: Option<&'a FaultSnapshot>,
}

impl RunReport {
    /// Aggregate breakdown across lanes.
    pub fn total_breakdown(&self) -> CycleBreakdown {
        let mut total = CycleBreakdown::default();
        for b in &self.lane_breakdown {
            total.add(b);
        }
        total
    }

    /// Mean fabric utilization across lanes (busy cycles / total cycles).
    pub fn utilization(&self) -> f64 {
        let total = self.total_breakdown();
        if total.total() == 0 {
            0.0
        } else {
            total.busy() as f64 / total.total() as f64
        }
    }

    /// The slice of the report both steppers must reproduce identically.
    pub fn observable(&self) -> ObservableReport<'_> {
        ObservableReport {
            cycles: self.cycles,
            lane_breakdown: &self.lane_breakdown,
            events: &self.events,
            commands_issued: self.commands_issued,
            timed_out: self.timed_out,
            deadlock: self.deadlock.as_ref(),
            fault: self.fault.as_ref(),
        }
    }

    /// How the run ended, folding fault detection into the completion
    /// status. [`RunOutcome::Faulted`] wins over [`RunOutcome::TimedOut`]:
    /// an applied fault makes the run untrusted regardless of whether it
    /// finished (and a fault that deadlocks the machine *is* the outcome
    /// of interest).
    pub fn outcome(&self) -> RunOutcome {
        match &self.fault {
            Some(s) if s.any_applied() => RunOutcome::Faulted { snapshot: s.clone() },
            _ if self.timed_out => RunOutcome::TimedOut,
            _ => RunOutcome::Completed,
        }
    }

    /// True iff an injected fault actually mutated machine state. Result
    /// memoizers must refuse to cache such runs (same rule as
    /// [`RunReport::deadline_expired`]).
    pub fn faulted(&self) -> bool {
        self.fault.as_ref().is_some_and(|s| s.any_applied())
    }

    /// Canonical text rendering of the observable state, suitable for
    /// byte-for-byte diffing in the `sim-differential` CI job. Every field
    /// here is deterministic (derived `Debug` on plain structs; no hash
    /// containers).
    pub fn canonical_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "cycles={}", self.cycles);
        let _ = writeln!(s, "commands_issued={}", self.commands_issued);
        let _ = writeln!(s, "timed_out={}", self.timed_out);
        let _ = writeln!(s, "events={:?}", self.events);
        for (i, b) in self.lane_breakdown.iter().enumerate() {
            let _ = write!(s, "lane{i}:");
            for c in CycleClass::ALL {
                let _ = write!(s, " {}={}", c.label(), b.count(c));
            }
            s.push('\n');
        }
        match &self.deadlock {
            None => s.push_str("deadlock=none\n"),
            Some(d) => {
                let _ = write!(s, "{d}");
            }
        }
        // Emitted only for runs that carried a fault plan, so clean runs'
        // canonical text is byte-identical to what it was before fault
        // injection existed.
        if let Some(fault) = &self.fault {
            let _ = write!(s, "{fault}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_records_and_fractions() {
        let mut b = CycleBreakdown::default();
        b.record(CycleClass::Issue);
        b.record(CycleClass::Issue);
        b.record(CycleClass::CtrlOvhd);
        b.record(CycleClass::MultiIssue);
        assert_eq!(b.total(), 4);
        assert_eq!(b.count(CycleClass::Issue), 2);
        assert!((b.fraction(CycleClass::Issue) - 0.5).abs() < 1e-12);
        assert_eq!(b.busy(), 3);
    }

    #[test]
    fn breakdown_merge() {
        let mut a = CycleBreakdown::default();
        a.record(CycleClass::Drain);
        let mut b = CycleBreakdown::default();
        b.record(CycleClass::Drain);
        b.record(CycleClass::Idle);
        a.add(&b);
        assert_eq!(a.count(CycleClass::Drain), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            CycleClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), CycleClass::ALL.len());
    }

    #[test]
    fn empty_fraction_is_zero() {
        let b = CycleBreakdown::default();
        assert_eq!(b.fraction(CycleClass::Issue), 0.0);
    }

    /// Pins the bulk-recording contract of the event-horizon loop: a span
    /// of `n` skipped cycles must account identically to `n` individually
    /// recorded cycles, for every class.
    #[test]
    fn record_span_equals_repeated_record() {
        for class in CycleClass::ALL {
            for n in [0u64, 1, 2, 7, 1_000_003] {
                let mut spanned = CycleBreakdown::default();
                spanned.record(CycleClass::Issue); // pre-existing state
                let mut looped = spanned.clone();
                spanned.record_span(class, n);
                for _ in 0..n.min(10_000) {
                    looped.record(class);
                }
                if n <= 10_000 {
                    assert_eq!(spanned, looped, "class={class:?} n={n}");
                } else {
                    // Too large to loop: check the count arithmetic alone.
                    assert_eq!(
                        spanned.count(class),
                        looped.count(class) + (n - 10_000),
                        "class={class:?} n={n}"
                    );
                }
            }
        }
    }

    fn report(cycles: u64, skipped: u64) -> RunReport {
        let mut b = CycleBreakdown::default();
        b.record(CycleClass::Issue);
        RunReport {
            cycles,
            lane_breakdown: vec![b],
            events: EventCounts::default(),
            commands_issued: 3,
            timed_out: false,
            deadline_expired: false,
            deadlock: None,
            fault: None,
            stepper: StepperStats { skipped_cycles: skipped, horizon_jumps: skipped.min(1) },
        }
    }

    /// Stepper accounting must not leak into the observable comparison:
    /// two runs that differ only in skipped-cycle stats are observably
    /// identical.
    #[test]
    fn observable_ignores_stepper_stats() {
        let a = report(10, 0);
        let b = report(10, 7);
        assert_eq!(a.observable(), b.observable());
        assert_eq!(a.canonical_text(), b.canonical_text());
        let c = report(11, 7);
        assert_ne!(a.observable(), c.observable());
        assert_ne!(a.canonical_text(), c.canonical_text());
    }

    #[test]
    fn class_index_matches_display_order() {
        // `record`/`count` index the counts array by discriminant; the
        // discriminants must stay aligned with the Fig. 23 stacking order.
        for (i, c) in CycleClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?}");
        }
    }
}
