//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a compact, `Copy`-able spec carried on
//! [`SimOptions`](crate::SimOptions): a seed, an event count, an injection
//! window, and a bitmask of enabled fault classes. At the start of
//! [`Machine::run`](crate::Machine::run) the plan is expanded through the
//! workspace's seeded SplitMix64 generator into a sorted list of concrete
//! [`FaultEvent`]s, so the same plan replays bit-identically on every run,
//! on every worker count, and under both the event-horizon kernel and the
//! reference stepper (the `sim-differential` invariant extends to faulted
//! runs).
//!
//! # How events compose with the event-horizon kernel
//!
//! A pending fault is a component clock like any other: the machine's
//! [`NextEvent`](crate::NextEvent) fold includes the next unapplied event's
//! cycle, so the skip loop can never jump past an injection point. The
//! apply phase runs first in `Machine::step`, mutates state at the exact
//! programmed cycle, and reports progress, which keeps the quiescence
//! invariant intact: a skipped span provably contains no fault.
//!
//! # What a fault does
//!
//! Targets are resolved *at application time* against live machine state
//! (`pick % #regions`, `pick % #ports`), which keeps the plan independent
//! of the program being run. An event that finds nothing to break — a port
//! with an empty FIFO, a region already dead — is recorded as missed, not
//! applied. The run's outcome is [`RunOutcome::Faulted`] iff at least one
//! event applied; the attached [`FaultSnapshot`] names every event, what it
//! hit, and the first cycle at which machine state observably diverged from
//! the clean run.

use revel_isa::Rng;
use std::fmt;

/// Enables dead-PE events (a region's pipeline stops firing permanently).
pub const FAULT_DEAD_PE: u8 = 1 << 0;
/// Enables transient PE stalls (a region cannot fire for N cycles).
pub const FAULT_STALL_PE: u8 = 1 << 1;
/// Enables port drops (the vector at an input-port FIFO head vanishes).
pub const FAULT_DROP_PORT: u8 = 1 << 2;
/// Enables bit flips (one bit of a buffered stream value is inverted).
pub const FAULT_BIT_FLIP: u8 = 1 << 3;
/// All fault classes.
pub const FAULT_ALL: u8 = FAULT_DEAD_PE | FAULT_STALL_PE | FAULT_DROP_PORT | FAULT_BIT_FLIP;

/// A compact, deterministic fault-injection spec.
///
/// `Copy + Eq + Hash` so it rides on [`SimOptions`](crate::SimOptions)
/// (and over the `revel-serve` wire) without breaking those derives; the
/// concrete event list is derived, never stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the event expansion.
    pub seed: u64,
    /// Number of events to inject.
    pub count: u32,
    /// Events land uniformly in cycles `[1, window]` (clamped to ≥ 1).
    pub window: u64,
    /// Bitmask of enabled fault classes ([`FAULT_ALL`] etc.). An empty
    /// mask expands to no events.
    pub kinds: u8,
}

impl FaultPlan {
    /// A plan drawing from every fault class.
    pub fn new(seed: u64, count: u32, window: u64) -> Self {
        FaultPlan { seed, count, window, kinds: FAULT_ALL }
    }

    /// Restricts the plan to the given fault classes.
    pub fn with_kinds(self, kinds: u8) -> Self {
        FaultPlan { kinds, ..self }
    }

    /// Expands the spec into concrete events, sorted by injection cycle.
    ///
    /// Deterministic: the same plan and lane count always yield the same
    /// list. Raw target picks are stored unresolved (they are taken modulo
    /// the live region/port count when the event fires).
    pub fn expand(&self, num_lanes: usize) -> Vec<FaultEvent> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let kinds: Vec<u8> = [FAULT_DEAD_PE, FAULT_STALL_PE, FAULT_DROP_PORT, FAULT_BIT_FLIP]
            .into_iter()
            .filter(|k| self.kinds & k != 0)
            .collect();
        if kinds.is_empty() || num_lanes == 0 {
            return Vec::new();
        }
        let window = self.window.max(1);
        let mut events = Vec::with_capacity(self.count as usize);
        for _ in 0..self.count {
            // Draw order is part of the seed contract: cycle, lane, class,
            // then class parameters.
            let cycle = 1 + (rng.next_u64() % window);
            let lane = rng.gen_index(num_lanes) as u32;
            let kind = match kinds[rng.gen_index(kinds.len())] {
                FAULT_DEAD_PE => FaultKind::DeadPe { region: rng.next_u64() as u32 },
                FAULT_STALL_PE => FaultKind::StallPe {
                    region: rng.next_u64() as u32,
                    cycles: 16 + rng.gen_index(2048) as u32,
                },
                FAULT_DROP_PORT => FaultKind::DropPort { port: rng.next_u64() as u32 },
                _ => {
                    FaultKind::BitFlip { port: rng.next_u64() as u32, bit: rng.gen_index(64) as u8 }
                }
            };
            events.push(FaultEvent { cycle, lane, kind });
        }
        // Stable sort: simultaneous events keep their draw order, so ties
        // resolve identically everywhere.
        events.sort_by_key(|e| e.cycle);
        events
    }
}

/// One concrete injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The targeted region's pipeline stops firing permanently (a dead FU
    /// datapath; already-matured results still deliver).
    DeadPe {
        /// Raw region pick (`% #regions` at application).
        region: u32,
    },
    /// The targeted region cannot fire for `cycles` cycles.
    StallPe {
        /// Raw region pick (`% #regions` at application).
        region: u32,
        /// Stall duration in cycles.
        cycles: u32,
    },
    /// The vector at the targeted input port's FIFO head is dropped.
    DropPort {
        /// Raw port pick (`% #in-ports` at application).
        port: u32,
    },
    /// One bit of the first valid lane buffered at the targeted input port
    /// is inverted.
    BitFlip {
        /// Raw port pick (`% #in-ports` at application).
        port: u32,
        /// Bit index within the f64 pattern (0–63).
        bit: u8,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::DeadPe { region } => write!(f, "dead-pe region%{region}"),
            FaultKind::StallPe { region, cycles } => {
                write!(f, "stall-pe region%{region} for {cycles}")
            }
            FaultKind::DropPort { port } => write!(f, "drop-port in%{port}"),
            FaultKind::BitFlip { port, bit } => write!(f, "bit-flip in%{port} bit {bit}"),
        }
    }
}

/// A fault scheduled for a specific cycle and lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Machine cycle at which the fault fires.
    pub cycle: u64,
    /// Target lane.
    pub lane: u32,
    /// What breaks.
    pub kind: FaultKind,
}

/// What one injected event did when it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Cycle at which the event was applied (== its scheduled cycle).
    pub cycle: u64,
    /// Target lane.
    pub lane: u32,
    /// The fault.
    pub kind: FaultKind,
    /// True if machine state was actually mutated (a drop on an empty
    /// port or a second kill of a dead region is a recorded miss).
    pub applied: bool,
}

/// Structured account of a faulted run, attached to
/// [`RunReport::fault`](crate::RunReport::fault).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Every event that fired, in application order.
    pub records: Vec<FaultRecord>,
    /// Events whose cycle was never reached (the program finished or the
    /// budget ran out first).
    pub pending: u32,
    /// First cycle at which an applied fault mutated machine state — the
    /// first observable divergence from the clean run. `None` when every
    /// event missed.
    pub first_divergence: Option<u64>,
}

impl FaultSnapshot {
    /// Number of events that mutated state.
    pub fn applied_count(&self) -> usize {
        self.records.iter().filter(|r| r.applied).count()
    }

    /// True if any event mutated state (the run diverged).
    pub fn any_applied(&self) -> bool {
        self.first_divergence.is_some()
    }
}

impl fmt::Display for FaultSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "faults: {} applied, {} missed, {} pending, first_divergence={}",
            self.applied_count(),
            self.records.len() - self.applied_count(),
            self.pending,
            match self.first_divergence {
                Some(c) => c.to_string(),
                None => "none".to_string(),
            }
        )?;
        for r in &self.records {
            writeln!(
                f,
                "  cycle {} lane {}: {} [{}]",
                r.cycle,
                r.lane,
                r.kind,
                if r.applied { "applied" } else { "missed" }
            )?;
        }
        Ok(())
    }
}

/// How a run ended, folding fault detection into the completion status.
///
/// `Faulted` takes precedence over `TimedOut`: a fault that deadlocks the
/// machine *is* the interesting outcome, and a run with applied faults is
/// untrusted regardless of whether it finished.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The program ran to completion with no applied fault.
    Completed,
    /// The cycle budget or wall deadline expired with no applied fault.
    TimedOut,
    /// At least one injected fault mutated machine state.
    Faulted {
        /// The structured fault account.
        snapshot: FaultSnapshot,
    },
}

/// Per-run fault machinery on the [`Machine`](crate::Machine): the expanded
/// event queue, a cursor over it, and the application log.
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultState {
    events: Vec<FaultEvent>,
    cursor: usize,
    records: Vec<FaultRecord>,
    first_divergence: Option<u64>,
    /// True when a plan was present this run (an empty expansion still
    /// yields a snapshot, so callers can tell "no plan" from "no events").
    active: bool,
}

impl FaultState {
    pub(crate) fn from_plan(plan: Option<FaultPlan>, num_lanes: usize) -> Self {
        match plan {
            None => FaultState::default(),
            Some(p) => {
                FaultState { events: p.expand(num_lanes), active: true, ..Default::default() }
            }
        }
    }

    /// The next unapplied event's cycle strictly after `after`, for the
    /// machine's [`NextEvent`](crate::NextEvent) fold.
    pub(crate) fn next_cycle(&self, after: u64) -> Option<u64> {
        self.events[self.cursor..].iter().map(|e| e.cycle).find(|c| *c > after)
    }

    pub(crate) fn snapshot(&self) -> Option<FaultSnapshot> {
        self.active.then(|| FaultSnapshot {
            records: self.records.clone(),
            pending: (self.events.len() - self.cursor) as u32,
            first_divergence: self.first_divergence,
        })
    }
}

impl crate::machine::Machine {
    /// Applies every event scheduled for `now`. Returns `true` iff any
    /// mutated machine state (the step-loop progress contract).
    pub(crate) fn apply_faults(&mut self, now: u64) -> bool {
        let mut progress = false;
        while let Some(ev) = self.faults.events.get(self.faults.cursor).copied() {
            if ev.cycle > now {
                break;
            }
            self.faults.cursor += 1;
            let lane = &mut self.lanes[ev.lane as usize];
            let applied = lane.apply_fault(ev.kind, now);
            if applied {
                progress = true;
                self.faults.first_divergence.get_or_insert(now);
            }
            self.faults.records.push(FaultRecord {
                cycle: ev.cycle,
                lane: ev.lane,
                kind: ev.kind,
                applied,
            });
        }
        progress
    }

    pub(crate) fn reset_faults(&mut self) {
        self.faults = FaultState::from_plan(self.opts.fault_plan, self.lanes.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_sorted() {
        let plan = FaultPlan::new(0xFA17, 32, 10_000);
        let a = plan.expand(8);
        let b = plan.expand(8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.windows(2).all(|w| w[0].cycle <= w[1].cycle), "sorted by cycle");
        assert!(a.iter().all(|e| (1..=10_000).contains(&e.cycle)));
        assert!(a.iter().all(|e| e.lane < 8));
        let c = FaultPlan::new(0xFA18, 32, 10_000).expand(8);
        assert_ne!(a, c, "different seeds draw different events");
    }

    #[test]
    fn kind_mask_restricts_expansion() {
        let plan = FaultPlan::new(7, 64, 1000).with_kinds(FAULT_BIT_FLIP);
        let events = plan.expand(2);
        assert!(events.iter().all(|e| matches!(e.kind, FaultKind::BitFlip { .. })));
        assert!(plan.with_kinds(0).expand(2).is_empty(), "empty mask expands to nothing");
    }

    #[test]
    fn fault_state_next_cycle_tracks_cursor() {
        let plan = FaultPlan::new(3, 4, 100).with_kinds(FAULT_DROP_PORT);
        let mut st = FaultState::from_plan(Some(plan), 1);
        let first = st.events[0].cycle;
        assert_eq!(st.next_cycle(0), Some(first));
        assert_eq!(st.next_cycle(first), st.events.iter().map(|e| e.cycle).find(|c| *c > first));
        st.cursor = st.events.len();
        assert_eq!(st.next_cycle(0), None, "consumed events are not future clocks");
        assert!(FaultState::from_plan(None, 1).snapshot().is_none());
        assert!(st.snapshot().is_some(), "active plan always yields a snapshot");
    }

    #[test]
    fn snapshot_display_is_stable() {
        let snap = FaultSnapshot {
            records: vec![FaultRecord {
                cycle: 9,
                lane: 0,
                kind: FaultKind::BitFlip { port: 5, bit: 51 },
                applied: true,
            }],
            pending: 2,
            first_divergence: Some(9),
        };
        let text = format!("{snap}");
        assert_eq!(
            text,
            "faults: 1 applied, 0 missed, 2 pending, first_divergence=9\n\
             \x20 cycle 9 lane 0: bit-flip in%5 bit 51 [applied]\n"
        );
    }
}
