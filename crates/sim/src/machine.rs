//! The whole accelerator: control core, lanes, buses, shared scratchpad,
//! and the cycle-by-cycle run loop.

use crate::lane::{ActiveStream, Lane, PatternWalker, RowTracker, StreamBody};
use crate::memory::Scratchpad;
use crate::stats::{CycleBreakdown, CycleClass, RunReport};
use revel_fabric::{EventCounts, Mesh, RevelConfig};
use revel_isa::{LaneHop, LaneId, MemTarget, StreamCommand};
use revel_prog::{ControlStep, HostMem, ProgramError, RevelProgram};
use revel_scheduler::{RegionSchedule, ScheduleError, SpatialScheduler};
use std::fmt;

/// Simulator options (ablation knobs and safety limits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Hardware stream predication (Fig. 22's fourth mechanism). When off,
    /// partially-valid vector fires degrade to scalar-remainder timing.
    pub predication: bool,
    /// Cycle budget before a run is declared hung.
    pub max_cycles: u64,
    /// Run the `revel-verify` program lints before simulating and refuse
    /// to run programs with error-severity findings. Warnings never block.
    /// Opt out to simulate a deliberately broken program.
    pub verify: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { predication: true, max_cycles: 50_000_000, verify: true }
    }
}

/// A simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// The program failed validation.
    Program(ProgramError),
    /// A fabric configuration did not map onto the lane.
    Schedule(ScheduleError),
    /// The pre-simulation lint pass found error-severity diagnostics
    /// (the vector holds *all* findings, warnings included, so callers
    /// can show the full picture). Disable via [`SimOptions::verify`].
    Verify(Vec<revel_verify::Diagnostic>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Program(e) => write!(f, "program error: {e}"),
            SimError::Schedule(e) => write!(f, "schedule error: {e}"),
            SimError::Verify(diags) => {
                let errors =
                    diags.iter().filter(|d| d.severity() == revel_verify::Severity::Error).count();
                write!(f, "program failed static verification ({errors} error(s))")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ProgramError> for SimError {
    fn from(e: ProgramError) -> Self {
        SimError::Program(e)
    }
}

impl From<ScheduleError> for SimError {
    fn from(e: ScheduleError) -> Self {
        SimError::Schedule(e)
    }
}

#[derive(Debug, Clone, Default)]
struct ControlCore {
    pc: usize,
    busy_until: u64,
    waiting: bool,
    commands_issued: u64,
}

/// Adapter giving host ops access to the machine's scratchpads.
struct MachineMem<'a> {
    lanes: &'a mut Vec<Lane>,
    shared: &'a mut Scratchpad,
}

impl HostMem for MachineMem<'_> {
    fn read(&self, lane: Option<u8>, addr: i64) -> f64 {
        match lane {
            Some(l) => self.lanes[l as usize].spad.read_f64(addr),
            None => self.shared.read_f64(addr),
        }
    }

    fn write(&mut self, lane: Option<u8>, addr: i64, value: f64) {
        match lane {
            Some(l) => self.lanes[l as usize].spad.write_f64(addr, value),
            None => self.shared.write_f64(addr, value),
        }
    }
}

/// The REVEL accelerator simulator: functional *and* cycle-level.
///
/// Workloads initialize scratchpad contents, [`Machine::run`] executes a
/// [`RevelProgram`], and results are read back from the scratchpads.
///
/// ```
/// use revel_fabric::RevelConfig;
/// use revel_sim::{Machine, SimOptions};
/// let m = Machine::new(RevelConfig::single_lane(), SimOptions::default());
/// assert_eq!(m.num_lanes(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: RevelConfig,
    lanes: Vec<Lane>,
    shared: Scratchpad,
    opts: SimOptions,
    control: ControlCore,
    control_events: EventCounts,
}

impl Machine {
    /// Builds a machine for a hardware configuration.
    pub fn new(cfg: RevelConfig, opts: SimOptions) -> Self {
        let lanes = (0..cfg.num_lanes).map(|_| Lane::new(&cfg.lane, opts.predication)).collect();
        Machine {
            shared: Scratchpad::new(cfg.shared_spad_words),
            lanes,
            opts,
            control: ControlCore::default(),
            control_events: EventCounts::default(),
            cfg,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &RevelConfig {
        &self.cfg
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Writes `values` into a lane's private scratchpad at word address
    /// `addr`.
    ///
    /// # Panics
    /// Panics if `lane` or the address range is out of bounds.
    pub fn write_private(&mut self, lane: LaneId, addr: i64, values: &[f64]) {
        self.lanes[lane.0 as usize].spad.write_f64_slice(addr, values);
    }

    /// Reads `len` values from a lane's private scratchpad.
    ///
    /// # Panics
    /// Panics if `lane` or the address range is out of bounds.
    pub fn read_private(&self, lane: LaneId, addr: i64, len: usize) -> Vec<f64> {
        self.lanes[lane.0 as usize].spad.read_f64_slice(addr, len)
    }

    /// Writes `values` into the shared scratchpad.
    ///
    /// # Panics
    /// Panics if the address range is out of bounds.
    pub fn write_shared(&mut self, addr: i64, values: &[f64]) {
        self.shared.write_f64_slice(addr, values);
    }

    /// Reads `len` values from the shared scratchpad.
    ///
    /// # Panics
    /// Panics if the address range is out of bounds.
    pub fn read_shared(&self, addr: i64, len: usize) -> Vec<f64> {
        self.shared.read_f64_slice(addr, len)
    }

    /// Runs a program to completion (or until the cycle limit).
    ///
    /// # Errors
    /// [`SimError::Program`] if the program is malformed,
    /// [`SimError::Verify`] if the static lints find errors (unless
    /// [`SimOptions::verify`] is off),
    /// [`SimError::Schedule`] if a configuration does not fit the fabric.
    pub fn run(&mut self, program: &RevelProgram) -> Result<RunReport, SimError> {
        program.validate(&self.cfg.lane)?;
        if self.opts.verify {
            // Program-level lints only: the spatial compile below already
            // covers schedule legality, so the gate does not repeat it.
            let diags = revel_verify::Verifier::program_only().verify(program, &self.cfg);
            if revel_verify::has_errors(&diags) {
                return Err(SimError::Verify(diags));
            }
        }
        // Spatially compile every configuration up front.
        let mesh = Mesh::for_lane(&self.cfg.lane);
        let scheduler = SpatialScheduler::new(mesh)
            .with_dpe_slots(self.cfg.lane.dpe_instr_slots)
            .with_sa_iterations(2000);
        let mut schedules: Vec<Vec<RegionSchedule>> = Vec::new();
        for regions in &program.configs {
            schedules.push(scheduler.schedule(regions)?.regions);
        }
        // Reset control + lane dynamic state (keep scratchpad contents).
        self.control = ControlCore::default();
        for lane in &mut self.lanes {
            lane.cmd_queue.clear();
            lane.streams.clear();
            lane.instances.clear();
            lane.regions.clear();
            lane.breakdown = CycleBreakdown::default();
            lane.events = EventCounts::default();
            lane.reconfig_until = 0;
        }
        self.control_events = EventCounts::default();

        let mut now = 0u64;
        let mut timed_out = false;
        // Parse the debug switch once per run: `REVEL_SIM_DEBUG=0` (or
        // empty/false/off/no) means *disabled* — merely being set must not
        // flip behaviour, and the budget is never lowered silently.
        let debug = sim_debug_enabled();
        let max_cycles = if debug && self.opts.max_cycles > DEBUG_MAX_CYCLES {
            eprintln!(
                "revel-sim: REVEL_SIM_DEBUG active: clamping max_cycles {} -> {} for '{}' \
                 (long runs will report timed_out; unset REVEL_SIM_DEBUG for full budgets)",
                self.opts.max_cycles, DEBUG_MAX_CYCLES, program.name
            );
            DEBUG_MAX_CYCLES
        } else {
            self.opts.max_cycles
        };
        loop {
            if self.program_finished(program) {
                break;
            }
            if now >= max_cycles {
                timed_out = true;
                if debug {
                    self.dump_state(now, program);
                }
                break;
            }
            self.step(now, program, &schedules);
            now += 1;
        }

        let mut events = self.control_events;
        for lane in &self.lanes {
            events.add(&lane.events);
        }
        Ok(RunReport {
            cycles: now,
            lane_breakdown: self.lanes.iter().map(|l| l.breakdown.clone()).collect(),
            events,
            commands_issued: self.control.commands_issued,
            timed_out,
        })
    }

    /// Prints a deadlock diagnostic (enabled via `REVEL_SIM_DEBUG`).
    fn dump_state(&self, now: u64, program: &RevelProgram) {
        eprintln!("=== DEADLOCK at cycle {now} ===");
        eprintln!(
            "control: pc={}/{} waiting={}",
            self.control.pc,
            program.control.len(),
            self.control.waiting
        );
        for (i, lane) in self.lanes.iter().enumerate() {
            eprintln!(
                "lane {i}: queue={} streams={} instances={}",
                lane.cmd_queue.len(),
                lane.streams.len(),
                lane.instances.len()
            );
            for c in &lane.cmd_queue {
                eprintln!("  queued: {c:?}");
            }
            for s in &lane.streams {
                eprintln!("  stream: {:?}", s.body);
            }
            for (p, port) in lane.in_ports.iter().enumerate() {
                if port.occupancy() > 0 || !port.is_drained() {
                    eprintln!("  in{p}: occ={} drained={}", port.occupancy(), port.is_drained());
                }
            }
            for (p, port) in lane.out_ports.iter().enumerate() {
                if port.occupancy() > 0 {
                    eprintln!("  out{p}: occ={}", port.occupancy());
                }
            }
            for (r, reg) in lane.regions.iter().enumerate() {
                eprintln!(
                    "  region {r} '{}' inflight={} next_fire={}",
                    reg.region.name,
                    reg.inflight_len(),
                    reg.next_fire_cycle()
                );
            }
        }
    }

    fn program_finished(&self, program: &RevelProgram) -> bool {
        self.control.pc >= program.control.len()
            && !self.control.waiting
            && self.lanes.iter().all(|l| l.is_idle())
    }

    fn all_lanes_idle(&self) -> bool {
        self.lanes.iter().all(|l| l.is_idle())
    }

    fn step(&mut self, now: u64, program: &RevelProgram, schedules: &[Vec<RegionSchedule>]) {
        for lane in &mut self.lanes {
            lane.reset_cycle_flags();
        }
        self.control_step(now, program);
        self.issue_commands(now, program, schedules);
        for lane in &mut self.lanes {
            for p in &mut lane.in_ports {
                p.tick();
            }
        }
        self.run_source_streams(now);
        for lane in &mut self.lanes {
            lane.fire_regions(now);
            lane.dpe_step(now);
            lane.deliver_outputs(now);
        }
        self.run_drain_streams(now);
        self.retire_streams();
        let program_done = self.control.pc >= program.control.len() && !self.control.waiting;
        for lane in &mut self.lanes {
            let class = classify(lane, program_done);
            lane.breakdown.record(class);
        }
    }

    /// The control core: constructs and ships one vector-stream command per
    /// `cmd_issue_cycles`, and blocks on `Wait`.
    fn control_step(&mut self, now: u64, program: &RevelProgram) {
        if self.control.waiting {
            if self.all_lanes_idle() {
                self.control.waiting = false;
            } else {
                return;
            }
        }
        if self.control.pc >= program.control.len() || now < self.control.busy_until {
            return;
        }
        let vc = match &program.control[self.control.pc] {
            ControlStep::Host(op) => {
                // Host computations synchronize with the fabric through
                // explicit Wait steps placed before them by the builder;
                // here the core just burns cycles and touches memory.
                let mut mem = MachineMem { lanes: &mut self.lanes, shared: &mut self.shared };
                (op.func)(&mut mem);
                self.control.busy_until = now + op.cycles.max(1);
                self.control.pc += 1;
                return;
            }
            ControlStep::Command(vc) => vc,
        };
        if matches!(vc.cmd, StreamCommand::Wait) {
            self.control.waiting = true;
            self.control.pc += 1;
            self.control.busy_until = now + self.cfg.cmd_issue_cycles;
            return;
        }
        // All destination queues must have space.
        let targets: Vec<usize> =
            vc.lanes.iter().map(|l| l.0 as usize).filter(|l| *l < self.lanes.len()).collect();
        if targets.iter().any(|&l| self.lanes[l].cmd_queue.len() >= self.cfg.lane.cmd_queue_entries)
        {
            return; // retry next cycle
        }
        for &l in &targets {
            let specialized = vc.specialize(LaneId(l as u8));
            self.lanes[l].cmd_queue.push_back(specialized);
        }
        self.control.commands_issued += 1;
        self.control_events.commands += 1;
        self.control.busy_until = now + self.cfg.cmd_issue_cycles;
        self.control.pc += 1;
    }

    /// Issues commands from each lane's queue to the stream table. Commands
    /// execute in program order *per port*; independent ports may issue out
    /// of order past a stalled command (the queue scans forward). Barriers
    /// and reconfigurations serialize the queue.
    fn issue_commands(
        &mut self,
        now: u64,
        program: &RevelProgram,
        schedules: &[Vec<RegionSchedule>],
    ) {
        for li in 0..self.lanes.len() {
            let mut issued = 0usize;
            let mut blocked_in: Vec<u8> = Vec::new();
            let mut blocked_out: Vec<u8> = Vec::new();
            // Loads may not bypass an earlier *unissued* store to the same
            // scratchpad: once a store issues it is visible to the
            // store→load ordering guard, but a store still in the queue is
            // not, so program order must hold at issue time.
            let mut store_pending_private = false;
            let mut store_pending_shared = false;
            let mut qi = 0usize;
            while issued < 2 && qi < self.lanes[li].cmd_queue.len() {
                let cmd = self.lanes[li].cmd_queue[qi].clone();
                match &cmd {
                    StreamCommand::Configure { config } => {
                        if qi != 0 {
                            break; // configure serializes the queue
                        }
                        let lane = &mut self.lanes[li];
                        lane.draining = true;
                        if !lane.fabric_drained() {
                            break;
                        }
                        if lane.reconfig_until == 0 {
                            lane.reconfig_until = now + self.cfg.reconfig_cycles;
                            break;
                        }
                        if now < lane.reconfig_until {
                            break;
                        }
                        let idx = config.0 as usize;
                        lane.apply_config(&program.configs[idx], &schedules[idx]);
                        lane.reconfig_until = 0;
                        lane.draining = false;
                        lane.cmd_queue.pop_front();
                        issued += 1;
                        continue;
                    }
                    StreamCommand::BarrierScratch => {
                        if qi != 0 {
                            break;
                        }
                        if self.lanes[li].has_active_store() {
                            self.lanes[li].barrier_blocked = true;
                            break;
                        }
                        self.lanes[li].cmd_queue.pop_front();
                        issued += 1;
                        continue;
                    }
                    StreamCommand::SetAccumLen { region, len } => {
                        // Applies once the region has drained its in-flight
                        // work (serializes the queue like a barrier).
                        if qi != 0 {
                            break;
                        }
                        let lane = &mut self.lanes[li];
                        let r = *region as usize;
                        if r < lane.regions.len() {
                            if !lane.regions[r].idle()
                                || lane.instances.iter().any(|i| i.region_index() == r)
                            {
                                break;
                            }
                            lane.regions[r].set_accum_len(*len);
                        }
                        lane.cmd_queue.pop_front();
                        issued += 1;
                        continue;
                    }
                    StreamCommand::Wait => {
                        // Wait is control-core level; drop if it leaked here.
                        self.lanes[li].cmd_queue.remove(qi);
                        continue;
                    }
                    _ => {}
                }
                // Port-conflict scan: commands behind a blocked command on
                // the same port must not bypass it; loads must not bypass
                // unissued stores to the same scratchpad.
                let in_p = cmd.dst_in_port().map(|p| p.0);
                let out_p = cmd.src_out_port().map(|p| p.0);
                let mem_conflict = match &cmd {
                    StreamCommand::Load { target: MemTarget::Private, .. } => store_pending_private,
                    StreamCommand::Load { target: MemTarget::Shared, .. } => store_pending_shared,
                    _ => false,
                };
                let conflicts = mem_conflict
                    || in_p.map(|p| blocked_in.contains(&p)).unwrap_or(false)
                    || out_p.map(|p| blocked_out.contains(&p)).unwrap_or(false);
                if !conflicts && self.try_issue_stream(li, &cmd) {
                    self.lanes[li].cmd_queue.remove(qi);
                    issued += 1;
                } else {
                    if let Some(p) = in_p {
                        blocked_in.push(p);
                    }
                    if let Some(p) = out_p {
                        blocked_out.push(p);
                    }
                    if let StreamCommand::Store { target, .. } = &cmd {
                        match target {
                            MemTarget::Private => store_pending_private = true,
                            MemTarget::Shared => store_pending_shared = true,
                        }
                    }
                    qi += 1;
                }
            }
        }
    }

    /// Attempts to bind a stream command to ports and the stream table.
    fn try_issue_stream(&mut self, li: usize, cmd: &StreamCommand) -> bool {
        if self.lanes[li].streams.len() >= self.cfg.lane.stream_table_entries {
            return false;
        }
        match cmd {
            StreamCommand::Load { target, pattern, dst, reuse } => {
                let lane = &mut self.lanes[li];
                let d = dst.0 as usize;
                if lane.in_busy[d] || !in_port_rebindable(&lane.in_ports[d], reuse) {
                    return false;
                }
                lane.in_busy[d] = true;
                lane.in_ports[d].bind_stream(*reuse);
                let seq = lane.next_seq;
                lane.next_seq += 1;
                lane.streams.push(ActiveStream {
                    body: StreamBody::Load {
                        target: *target,
                        walker: PatternWalker::new(*pattern),
                        dst: dst.0,
                        flushed: false,
                    },
                    seq,
                });
                true
            }
            StreamCommand::Const { dst, pattern } => {
                let lane = &mut self.lanes[li];
                let d = dst.0 as usize;
                if lane.in_busy[d]
                    || !in_port_rebindable(&lane.in_ports[d], &revel_isa::RateFsm::ONCE)
                {
                    return false;
                }
                lane.in_busy[d] = true;
                lane.in_ports[d].bind_stream(revel_isa::RateFsm::ONCE);
                let values = pattern.expand().into_iter().map(f64::from_bits).collect();
                let seq = lane.next_seq;
                lane.next_seq += 1;
                lane.streams
                    .push(ActiveStream { body: StreamBody::Const { dst: dst.0, values }, seq });
                true
            }
            StreamCommand::Store { src, target, pattern, discard } => {
                let lane = &mut self.lanes[li];
                let s = src.0 as usize;
                if lane.out_busy[s] {
                    return false;
                }
                lane.out_busy[s] = true;
                lane.out_ports[s].bind_stream(*discard);
                let seq = lane.next_seq;
                lane.next_seq += 1;
                lane.streams.push(ActiveStream {
                    body: StreamBody::Store {
                        src: src.0,
                        target: *target,
                        walker: PatternWalker::new(*pattern),
                        written: std::collections::HashSet::new(),
                    },
                    seq,
                });
                true
            }
            StreamCommand::Xfer { route, outer, production, prod_mode, consumption, rows } => {
                let s = route.src.0 as usize;
                let d = route.dst.0 as usize;
                let hop = match route.hop {
                    LaneHop::Right if (li + 1) % self.lanes.len() != li => LaneHop::Right,
                    // Single lane: the right neighbour is this lane.
                    _ => LaneHop::Local,
                };
                match hop {
                    LaneHop::Local => {
                        let lane = &mut self.lanes[li];
                        if lane.out_busy[s]
                            || lane.in_busy[d]
                            || !in_port_rebindable(&lane.in_ports[d], consumption)
                        {
                            return false;
                        }
                        lane.out_busy[s] = true;
                        lane.in_busy[d] = true;
                        lane.out_ports[s].bind_stream_mode(*production, *prod_mode);
                        lane.in_ports[d].bind_stream(*consumption);
                        let seq = lane.next_seq;
                        lane.next_seq += 1;
                        lane.streams.push(ActiveStream {
                            body: StreamBody::XferLocal {
                                src: route.src.0,
                                dst: route.dst.0,
                                remaining: *outer,
                                rows: RowTracker::new(*rows),
                            },
                            seq,
                        });
                        true
                    }
                    LaneHop::Right => {
                        let ri = (li + 1) % self.lanes.len();
                        if self.lanes[li].out_busy[s]
                            || self.lanes[ri].in_busy[d]
                            || !in_port_rebindable(&self.lanes[ri].in_ports[d], consumption)
                        {
                            return false;
                        }
                        self.lanes[li].out_busy[s] = true;
                        self.lanes[ri].in_busy[d] = true;
                        self.lanes[li].out_ports[s].bind_stream_mode(*production, *prod_mode);
                        self.lanes[ri].in_ports[d].bind_stream(*consumption);
                        let seq = self.lanes[li].next_seq;
                        self.lanes[li].next_seq += 1;
                        self.lanes[li].streams.push(ActiveStream {
                            body: StreamBody::XferRight {
                                src: route.src.0,
                                dst: route.dst.0,
                                remaining: *outer,
                                rows: RowTracker::new(*rows),
                            },
                            seq,
                        });
                        true
                    }
                }
            }
            StreamCommand::Configure { .. }
            | StreamCommand::SetAccumLen { .. }
            | StreamCommand::BarrierScratch
            | StreamCommand::Wait => unreachable!("handled in issue_commands"),
        }
    }

    /// Moves data for source streams: loads (private + shared) and consts.
    fn run_source_streams(&mut self, _now: u64) {
        let mut shared_budget = self.cfg.shared_spad_bw_words;
        let num_lanes = self.lanes.len();
        for li in 0..num_lanes {
            let lane = &mut self.lanes[li];
            let mut priv_budget = lane.cfg.spad_bw_words;
            let mut const_budget = lane.cfg.xfer_bw_words;
            // Snapshot of active store streams for store→load ordering: a
            // load may not read an address an *older* store has yet to
            // write (fine-grain scratchpad dependence tracking, which is
            // what lets the paper's solver/Cholesky recirculate vectors
            // through memory without full barriers).
            let store_guards: Vec<(u64, MemTarget, PatternWalker, std::collections::HashSet<i64>)> =
                lane.streams
                    .iter()
                    .filter_map(|s| match &s.body {
                        StreamBody::Store { target, walker, written, .. } => {
                            Some((s.seq, *target, walker.clone(), written.clone()))
                        }
                        _ => None,
                    })
                    .collect();
            let Lane { streams, in_ports, spad, events, .. } = lane;
            let mut starved = false;
            let mut sync_blocked = false;
            for stream in streams.iter_mut() {
                let seq = stream.seq;
                match &mut stream.body {
                    StreamBody::Load { target, walker, dst, flushed } => {
                        let budget: &mut usize = match target {
                            MemTarget::Private => &mut priv_budget,
                            MemTarget::Shared => &mut shared_budget,
                        };
                        let port = &mut in_ports[*dst as usize];
                        while let Some(elem) = walker.peek() {
                            if *budget == 0 {
                                starved = true;
                                break;
                            }
                            if !port.can_accept() {
                                break;
                            }
                            // Store→load ordering: a load may not read an
                            // address an older store has yet to write. For
                            // write-once (producer→consumer) streams the
                            // load releases per element as soon as the
                            // address is written; for in-place multi-pass
                            // streams (the address was already written once
                            // and will be rewritten) the load synchronizes
                            // at row granularity — later rewrites are
                            // anti-dependences ordered by the dataflow
                            // itself.
                            let blocked =
                                store_guards.iter().any(|(sseq, starget, sw, written)| {
                                    let mut sw = sw.clone();
                                    *sseq < seq
                                        && *starget == *target
                                        && sw.remaining_contains(elem.offset)
                                        && (!written.contains(&elem.offset)
                                            || sw.current_row() <= elem.j)
                                });
                            if blocked {
                                sync_blocked = true;
                                break;
                            }
                            let val = match target {
                                MemTarget::Private => spad.read_f64(elem.offset),
                                MemTarget::Shared => self.shared.read_f64(elem.offset),
                            };
                            if !port.push_word(val, elem.last_in_row) {
                                break;
                            }
                            walker.advance();
                            *budget -= 1;
                            events.port_words += 1;
                            match target {
                                MemTarget::Private => events.spad_words += 1,
                                MemTarget::Shared => events.shared_spad_words += 1,
                            }
                        }
                        if walker.exhausted() && !*flushed {
                            *flushed = port.flush_at_stream_end();
                        }
                    }
                    StreamBody::Const { dst, values } => {
                        let port = &mut in_ports[*dst as usize];
                        while const_budget > 0 {
                            let Some(v) = values.front() else { break };
                            if !port.can_accept() || !port.push_word(*v, false) {
                                break;
                            }
                            values.pop_front();
                            const_budget -= 1;
                            events.port_words += 1;
                        }
                    }
                    _ => {}
                }
            }
            lane.bw_starved |= starved;
            lane.barrier_blocked |= sync_blocked;
        }
    }

    /// Moves data for drain streams: stores (private + shared), local
    /// XFERs, and inter-lane XFERs.
    fn run_drain_streams(&mut self, _now: u64) {
        let mut shared_budget = self.cfg.shared_spad_bw_words;
        let num_lanes = self.lanes.len();
        // Stores and local xfers (single-lane).
        for li in 0..num_lanes {
            let lane = &mut self.lanes[li];
            let mut priv_budget = lane.cfg.spad_bw_words;
            let mut xfer_budget = lane.cfg.xfer_bw_words;
            let Lane { streams, in_ports, out_ports, spad, events, .. } = lane;
            let mut starved = false;
            for stream in streams.iter_mut() {
                match &mut stream.body {
                    StreamBody::Store { src, target, walker, written } => {
                        let budget: &mut usize = match target {
                            MemTarget::Private => &mut priv_budget,
                            MemTarget::Shared => &mut shared_budget,
                        };
                        let port = &mut out_ports[*src as usize];
                        while let Some(elem) = walker.peek() {
                            if *budget == 0 {
                                if port.occupancy() > 0 {
                                    starved = true;
                                }
                                break;
                            }
                            let Some(v) = port.pop_kept() else { break };
                            written.insert(elem.offset);
                            match target {
                                MemTarget::Private => {
                                    spad.write_f64(elem.offset, v);
                                    events.spad_words += 1;
                                }
                                MemTarget::Shared => {
                                    self.shared.write_f64(elem.offset, v);
                                    events.shared_spad_words += 1;
                                }
                            }
                            events.port_words += 1;
                            walker.advance();
                            *budget -= 1;
                        }
                    }
                    StreamBody::XferLocal { src, dst, remaining, rows } => {
                        let sp = *src as usize;
                        let dp = *dst as usize;
                        while *remaining > 0 && xfer_budget > 0 {
                            if !in_ports[dp].can_accept() {
                                break;
                            }
                            let Some(v) = out_ports[sp].pop_kept() else {
                                break;
                            };
                            let row_end = rows.step();
                            let ok = in_ports[dp].push_word(v, row_end);
                            debug_assert!(ok, "can_accept guaranteed space");
                            *remaining -= 1;
                            xfer_budget -= 1;
                            events.bus_words += 2; // bus out + bus in
                        }
                    }
                    _ => {}
                }
            }
            lane.bw_starved |= starved;
        }
        // Inter-lane XFERs (need two lanes mutably).
        for li in 0..num_lanes {
            let ri = (li + 1) % num_lanes;
            if ri == li {
                continue;
            }
            let (a, b) = if li < ri {
                let (left, right) = self.lanes.split_at_mut(ri);
                (&mut left[li], &mut right[0])
            } else {
                let (left, right) = self.lanes.split_at_mut(li);
                (&mut right[0], &mut left[ri])
            };
            let mut budget = a.cfg.inter_lane_bw_words;
            for stream in a.streams.iter_mut() {
                if let StreamBody::XferRight { src, dst, remaining, rows } = &mut stream.body {
                    let sp = *src as usize;
                    let dp = *dst as usize;
                    while *remaining > 0 && budget > 0 {
                        if !b.in_ports[dp].can_accept() {
                            break;
                        }
                        let Some(v) = a.out_ports[sp].pop_kept() else {
                            break;
                        };
                        let row_end = rows.step();
                        let ok = b.in_ports[dp].push_word(v, row_end);
                        debug_assert!(ok, "can_accept guaranteed space");
                        *remaining -= 1;
                        budget -= 1;
                        a.events.bus_words += 2;
                    }
                }
            }
        }
    }

    /// Removes completed streams and frees their ports.
    fn retire_streams(&mut self) {
        let num_lanes = self.lanes.len();
        for li in 0..num_lanes {
            let mut to_free_right: Vec<u8> = Vec::new();
            {
                let lane = &mut self.lanes[li];
                let Lane { streams, in_busy, out_busy, .. } = lane;
                streams.retain_mut(|s| {
                    let done = match &mut s.body {
                        StreamBody::Load { walker, flushed, .. } => walker.exhausted() && *flushed,
                        StreamBody::Store { walker, .. } => walker.exhausted(),
                        StreamBody::Const { values, .. } => values.is_empty(),
                        StreamBody::XferLocal { remaining, .. }
                        | StreamBody::XferRight { remaining, .. } => *remaining <= 0,
                    };
                    if done {
                        if let Some(p) = s.local_in_port() {
                            in_busy[p as usize] = false;
                        }
                        if let Some(p) = s.local_out_port() {
                            out_busy[p as usize] = false;
                        }
                        if let StreamBody::XferRight { dst, .. } = &s.body {
                            to_free_right.push(*dst);
                        }
                    }
                    !done
                });
            }
            if !to_free_right.is_empty() {
                let ri = (li + 1) % num_lanes;
                for p in to_free_right {
                    self.lanes[ri].in_busy[p as usize] = false;
                }
            }
        }
    }
}

/// Cycle ceiling applied when `REVEL_SIM_DEBUG` is enabled, so a deadlock
/// dump arrives in seconds instead of after the full 50M-cycle budget.
const DEBUG_MAX_CYCLES: u64 = 2_000_000;

/// True when `REVEL_SIM_DEBUG` is set to a truthy value. An unset variable
/// and the conventional "off" spellings all disable debugging.
fn sim_debug_enabled() -> bool {
    std::env::var("REVEL_SIM_DEBUG").map(|v| env_truthy(&v)).unwrap_or(false)
}

/// Truthiness for debug-style environment variables: everything is enabled
/// except the empty string and the usual negatives.
fn env_truthy(v: &str) -> bool {
    let v = v.trim();
    !(v.is_empty()
        || v == "0"
        || v.eq_ignore_ascii_case("false")
        || v.eq_ignore_ascii_case("off")
        || v.eq_ignore_ascii_case("no"))
}

/// A new stream may bind to an input port when the port is drained, or
/// when leftover data is still flowing through under the trivial
/// once-per-value rate and the new stream also uses it (the FIFO contents
/// stay valid across the rebinding; non-trivial FSMs must drain so their
/// per-value indexing stays aligned).
fn in_port_rebindable(port: &crate::port::InPort, new_reuse: &revel_isa::RateFsm) -> bool {
    port.is_drained() || (port.reuse_is_trivial() && new_reuse.is_trivial())
}

/// Classifies what a lane did this cycle (Fig. 23 taxonomy).
fn classify(lane: &Lane, program_done: bool) -> CycleClass {
    if lane.fired_systolic >= 2 {
        CycleClass::MultiIssue
    } else if lane.fired_systolic == 1 {
        CycleClass::Issue
    } else if lane.fired_temporal {
        CycleClass::Temporal
    } else if lane.draining || lane.reconfig_until != 0 {
        CycleClass::Drain
    } else if lane.bw_starved {
        CycleClass::ScrBw
    } else if lane.barrier_blocked {
        CycleClass::ScrBarrier
    } else if lane.dep_blocked {
        CycleClass::StreamDpd
    } else if lane.is_idle() {
        if program_done {
            CycleClass::Idle
        } else {
            CycleClass::CtrlOvhd
        }
    } else if lane.cmd_queue.is_empty() && lane.streams.is_empty() {
        CycleClass::CtrlOvhd
    } else {
        CycleClass::StreamDpd
    }
}

#[cfg(test)]
mod tests {
    use super::env_truthy;

    #[test]
    fn debug_env_truthiness() {
        // The documented "off" spellings must not enable the debug clamp —
        // REVEL_SIM_DEBUG=0 used to count as enabled and silently turned
        // long runs into bogus timeouts.
        for off in ["", "0", "false", "FALSE", "off", "Off", "no", " 0 "] {
            assert!(!env_truthy(off), "{off:?} must disable debugging");
        }
        for on in ["1", "true", "yes", "2", "debug"] {
            assert!(env_truthy(on), "{on:?} must enable debugging");
        }
    }
}
