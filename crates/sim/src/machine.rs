//! The whole accelerator: control core, lanes, buses, shared scratchpad,
//! and run orchestration (validation, verification, spatial compilation,
//! and report assembly). The cycle-by-cycle pipeline itself lives in
//! [`crate::kernel`].

use crate::fault::{FaultPlan, FaultState};
use crate::kernel::ControlCore;
use crate::lane::Lane;
use crate::memory::Scratchpad;
use crate::snapshot::{DeadlockSnapshot, LaneSnapshot};
use crate::stats::{CycleBreakdown, RunReport};
use revel_fabric::{EventCounts, FabricMask, Mesh, RevelConfig};
use revel_isa::LaneId;
use revel_prog::{ProgramError, RevelProgram};
use revel_scheduler::{RegionSchedule, ScheduleError, SpatialScheduler};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide default for [`SimOptions::reference_stepper`], so harness
/// flags (`--reference-stepper`) reach machines constructed deep inside
/// workload builders via `SimOptions::default()`.
static FORCE_REFERENCE_STEPPER: AtomicBool = AtomicBool::new(false);

/// Forces every subsequently constructed `SimOptions::default()` to use
/// the naive reference stepper instead of the event-horizon loop. Used by
/// harness flags; both loops are bit-identical in observable behaviour
/// (enforced by the `sim-differential` CI job), so this is a performance
/// and cross-check knob, not a semantics switch.
pub fn force_reference_stepper(on: bool) {
    FORCE_REFERENCE_STEPPER.store(on, Ordering::Relaxed);
}

/// Simulator options (ablation knobs and safety limits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Hardware stream predication (Fig. 22's fourth mechanism). When off,
    /// partially-valid vector fires degrade to scalar-remainder timing.
    pub predication: bool,
    /// Cycle budget before a run is declared hung.
    pub max_cycles: u64,
    /// Wall-clock deadline for the host-side run loop, composing with the
    /// cycle budget: whichever cap is crossed first ends the run as
    /// `timed_out` (a deadline expiry additionally sets
    /// [`RunReport::deadline_expired`](crate::RunReport::deadline_expired)).
    /// `None` (the default) disables the check entirely, keeping batch runs
    /// bit-deterministic; servers thread a per-request deadline here so one
    /// slow simulation cannot hold a worker hostage.
    pub wall_deadline: Option<std::time::Instant>,
    /// Run the `revel-verify` program lints before simulating and refuse
    /// to run programs with error-severity findings. Warnings never block.
    /// Opt out to simulate a deliberately broken program.
    pub verify: bool,
    /// Step every cycle naively instead of skipping quiescent stall spans
    /// via the event horizon. The reference stepper is the correctness
    /// oracle for the fast loop; reports must be observably identical.
    pub reference_stepper: bool,
    /// Deterministic fault injection: `Some` expands the plan into timed
    /// events at run start and attaches a
    /// [`FaultSnapshot`](crate::FaultSnapshot) to the report. Faulted runs
    /// must never be cached by result memoizers (same rule as
    /// deadline-expired runs).
    pub fault_plan: Option<FaultPlan>,
    /// Degraded-fabric mode: dead PEs/links are masked out of the spatial
    /// schedule (via `reschedule_degraded`), modelling graceful
    /// degradation. The mask participates in the schedule-cache key.
    pub fabric_mask: FabricMask,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            predication: true,
            max_cycles: 50_000_000,
            wall_deadline: None,
            verify: true,
            reference_stepper: FORCE_REFERENCE_STEPPER.load(Ordering::Relaxed),
            fault_plan: None,
            fabric_mask: FabricMask::HEALTHY,
        }
    }
}

/// A simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// The program failed validation.
    Program(ProgramError),
    /// A fabric configuration did not map onto the lane.
    Schedule(ScheduleError),
    /// The pre-simulation lint pass found error-severity diagnostics
    /// (the vector holds *all* findings, warnings included, so callers
    /// can show the full picture). Disable via [`SimOptions::verify`].
    Verify(Vec<revel_verify::Diagnostic>),
    /// A trace replay desynchronized from its recorded timing run, or a
    /// timing trace was requested under perturbation (faults/degraded
    /// fabric). See [`crate::TimingTrace`].
    Replay(crate::trace::ReplayError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Program(e) => write!(f, "program error: {e}"),
            SimError::Schedule(e) => write!(f, "schedule error: {e}"),
            SimError::Verify(diags) => {
                let errors =
                    diags.iter().filter(|d| d.severity() == revel_verify::Severity::Error).count();
                write!(f, "program failed static verification ({errors} error(s))")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            SimError::Replay(e) => write!(f, "replay error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ProgramError> for SimError {
    fn from(e: ProgramError) -> Self {
        SimError::Program(e)
    }
}

impl From<ScheduleError> for SimError {
    fn from(e: ScheduleError) -> Self {
        SimError::Schedule(e)
    }
}

/// Process-wide cache of compiled spatial schedules.
///
/// The simulated-annealing scheduler runs 2000 iterations per region set;
/// batch lanes, ablation sweeps, and repeated benchmark runs hit the same
/// `(program configs, lane config)` pairs over and over. The scheduler is
/// deterministic (seeded SA), so the first compile's result is *the*
/// result. Keys are exact structural renderings — no hashing shortcuts, so
/// no collisions.
type ScheduleCache = Mutex<HashMap<String, Arc<Vec<Vec<RegionSchedule>>>>>;

static SCHEDULE_CACHE: OnceLock<ScheduleCache> = OnceLock::new();
static SCHEDULE_HITS: AtomicU64 = AtomicU64::new(0);
static SCHEDULE_MISSES: AtomicU64 = AtomicU64::new(0);

/// One consistent read of the process-wide spatial-schedule cache counters.
///
/// The split is *exact*: a miss is counted only by the thread whose compile
/// actually landed in the cache, so `misses == entries` always, and a
/// racing duplicate compile (which discards its result) counts as a hit.
/// Hits are therefore `lookups - entries` — both deterministic for every
/// worker count — which is what lets harness footers print this on the
/// byte-diffed stdout stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleCacheStats {
    /// Lookups served by an existing entry (including lost insert races).
    pub hits: u64,
    /// Compiles that created a new cache entry (`== entries`).
    pub misses: u64,
    /// Distinct compiled schedule sets currently cached.
    pub entries: usize,
}

impl fmt::Display for ScheduleCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule cache: {} hit(s), {} miss(es), {} entries",
            self.hits, self.misses, self.entries
        )
    }
}

/// Snapshot of the process-wide spatial-schedule cache counters.
pub fn schedule_cache_stats() -> ScheduleCacheStats {
    let entries =
        SCHEDULE_CACHE.get().map(|c| c.lock().expect("schedule cache poisoned").len()).unwrap_or(0);
    ScheduleCacheStats {
        hits: SCHEDULE_HITS.load(Ordering::Relaxed),
        misses: SCHEDULE_MISSES.load(Ordering::Relaxed),
        entries,
    }
}

/// Process-wide cache of pre-simulation lint results.
///
/// The program lints are a pure function of `(program, machine config)`
/// and cost far more than a short simulation, so repeated runs of the same
/// program (benchmark iterations, the differential oracle's second run,
/// batch sweeps) reuse the first verdict. Keyed by program name plus a
/// 128-bit structural fingerprint of the full `(program, config)` Debug
/// rendering, streamed into the hashers without materializing the dump.
type LintCache = Mutex<HashMap<(String, u64, u64), Arc<Vec<revel_verify::Diagnostic>>>>;

static LINT_CACHE: OnceLock<LintCache> = OnceLock::new();

/// 128-bit structural fingerprint of a `Debug` rendering: the text is
/// streamed into two independently-prefixed hashers, never allocated.
fn debug_fingerprint<T: fmt::Debug + ?Sized>(value: &T) -> (u64, u64) {
    use std::fmt::Write as _;
    use std::hash::Hasher as _;
    struct Fp(std::collections::hash_map::DefaultHasher, std::collections::hash_map::DefaultHasher);
    impl fmt::Write for Fp {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            self.0.write(s.as_bytes());
            self.1.write(s.as_bytes());
            Ok(())
        }
    }
    let mut fp = Fp(Default::default(), Default::default());
    fp.0.write_u8(0);
    fp.1.write_u8(1);
    let _ = write!(fp, "{value:?}");
    (fp.0.finish(), fp.1.finish())
}

/// The REVEL accelerator simulator: functional *and* cycle-level.
///
/// Workloads initialize scratchpad contents, [`Machine::run`] executes a
/// [`RevelProgram`], and results are read back from the scratchpads.
///
/// ```
/// use revel_fabric::RevelConfig;
/// use revel_sim::{Machine, SimOptions};
/// let m = Machine::new(RevelConfig::single_lane(), SimOptions::default());
/// assert_eq!(m.num_lanes(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) cfg: RevelConfig,
    pub(crate) lanes: Vec<Lane>,
    pub(crate) shared: Scratchpad,
    pub(crate) opts: SimOptions,
    pub(crate) control: ControlCore,
    pub(crate) control_events: EventCounts,
    pub(crate) faults: FaultState,
    /// Installed by [`Machine::run_traced`]; `None` keeps every record
    /// site in the timing walk a no-op.
    pub(crate) trace: Option<crate::trace::TraceRecorder>,
}

impl Machine {
    /// Builds a machine for a hardware configuration.
    pub fn new(cfg: RevelConfig, opts: SimOptions) -> Self {
        let lanes = (0..cfg.num_lanes).map(|_| Lane::new(&cfg.lane, opts.predication)).collect();
        Machine {
            shared: Scratchpad::new(cfg.shared_spad_words),
            lanes,
            opts,
            control: ControlCore::default(),
            control_events: EventCounts::default(),
            faults: FaultState::default(),
            trace: None,
            cfg,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &RevelConfig {
        &self.cfg
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Writes `values` into a lane's private scratchpad at word address
    /// `addr`.
    ///
    /// # Panics
    /// Panics if `lane` or the address range is out of bounds.
    pub fn write_private(&mut self, lane: LaneId, addr: i64, values: &[f64]) {
        self.lanes[lane.0 as usize].spad.write_f64_slice(addr, values);
    }

    /// Reads `len` values from a lane's private scratchpad.
    ///
    /// # Panics
    /// Panics if `lane` or the address range is out of bounds.
    pub fn read_private(&self, lane: LaneId, addr: i64, len: usize) -> Vec<f64> {
        self.lanes[lane.0 as usize].spad.read_f64_slice(addr, len)
    }

    /// Writes `values` into the shared scratchpad.
    ///
    /// # Panics
    /// Panics if the address range is out of bounds.
    pub fn write_shared(&mut self, addr: i64, values: &[f64]) {
        self.shared.write_f64_slice(addr, values);
    }

    /// Reads `len` values from the shared scratchpad.
    ///
    /// # Panics
    /// Panics if the address range is out of bounds.
    pub fn read_shared(&self, addr: i64, len: usize) -> Vec<f64> {
        self.shared.read_f64_slice(addr, len)
    }

    /// Runs a program to completion (or until the cycle limit).
    ///
    /// # Errors
    /// [`SimError::Program`] if the program is malformed,
    /// [`SimError::Verify`] if the static lints find errors (unless
    /// [`SimOptions::verify`] is off),
    /// [`SimError::Schedule`] if a configuration does not fit the fabric.
    pub fn run(&mut self, program: &RevelProgram) -> Result<RunReport, SimError> {
        program.validate(&self.cfg.lane)?;
        if self.opts.verify {
            let diags = self.cached_lints(program);
            if revel_verify::has_errors(&diags) {
                return Err(SimError::Verify(diags.as_ref().clone()));
            }
        }
        let schedules = self.compiled_schedules(program)?;
        // Reset control + lane dynamic state (keep scratchpad contents).
        self.control = ControlCore::default();
        for lane in &mut self.lanes {
            lane.cmd_queue.clear();
            lane.streams.clear();
            lane.instances.clear();
            lane.regions.clear();
            lane.breakdown = CycleBreakdown::default();
            lane.events = EventCounts::default();
            lane.reconfig_until = 0;
        }
        self.control_events = EventCounts::default();
        self.reset_faults();

        // Parse the debug switch once per run: `REVEL_SIM_DEBUG=0` (or
        // empty/false/off/no) means *disabled* — merely being set must not
        // flip behaviour, and the budget is never lowered silently.
        let debug = sim_debug_enabled();
        let max_cycles = if debug && self.opts.max_cycles > DEBUG_MAX_CYCLES {
            eprintln!(
                "revel-sim: REVEL_SIM_DEBUG active: clamping max_cycles {} -> {} for '{}' \
                 (long runs will report timed_out; unset REVEL_SIM_DEBUG for full budgets)",
                self.opts.max_cycles, DEBUG_MAX_CYCLES, program.name
            );
            DEBUG_MAX_CYCLES
        } else {
            self.opts.max_cycles
        };

        let exec = self.execute(program, &schedules, max_cycles);

        let deadlock = exec.timed_out.then(|| self.capture_snapshot(exec.cycles, program));
        if debug {
            if let Some(d) = &deadlock {
                eprintln!("{d}");
            }
        }
        let mut events = self.control_events;
        for lane in &self.lanes {
            events.add(&lane.events);
        }
        Ok(RunReport {
            cycles: exec.cycles,
            lane_breakdown: self.lanes.iter().map(|l| l.breakdown.clone()).collect(),
            events,
            commands_issued: self.control.commands_issued,
            timed_out: exec.timed_out,
            deadline_expired: exec.deadline_expired,
            deadlock,
            fault: self.faults.snapshot(),
            stepper: exec.stats,
        })
    }

    /// Spatially compiles every configuration of `program`, memoized
    /// process-wide on (program name, lane config, region configs).
    pub(crate) fn compiled_schedules(
        &self,
        program: &RevelProgram,
    ) -> Result<Arc<Vec<Vec<RegionSchedule>>>, SimError> {
        // `Debug` renderings are full structural dumps for these types, so
        // the key distinguishes any difference that can affect scheduling.
        // The fabric mask is part of the key: a degraded fabric compiles a
        // repaired placement that must never be served to a healthy run.
        let mask = self.opts.fabric_mask;
        let key = format!("{}\0{:?}\0{:?}\0{mask}", program.name, self.cfg.lane, program.configs);
        let cache = SCHEDULE_CACHE.get_or_init(Default::default);
        if let Some(hit) = cache.lock().expect("schedule cache poisoned").get(&key) {
            SCHEDULE_HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Compile outside the lock: SA placement is the expensive part, and
        // a racing duplicate compile is deterministic, so last-writer-wins
        // inserts identical data. The hit/miss split is decided at insert
        // time — only the compile that lands counts as a miss, a lost race
        // counts as a hit — so `misses == entries` exactly and the split is
        // deterministic for every worker count (see [`ScheduleCacheStats`]).
        let mesh = Mesh::for_lane(&self.cfg.lane);
        let scheduler = SpatialScheduler::new(mesh)
            .with_dpe_slots(self.cfg.lane.dpe_instr_slots)
            .with_sa_iterations(2000);
        let mut schedules: Vec<Vec<RegionSchedule>> = Vec::new();
        for regions in &program.configs {
            schedules.push(scheduler.reschedule_degraded(regions, mask)?.regions);
        }
        let arc = Arc::new(schedules);
        match cache.lock().expect("schedule cache poisoned").entry(key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                SCHEDULE_MISSES.fetch_add(1, Ordering::Relaxed);
                v.insert(Arc::clone(&arc));
                Ok(arc)
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                SCHEDULE_HITS.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(o.get()))
            }
        }
    }

    /// Runs the pre-simulation program lints through the process-wide lint
    /// cache. Program-level lints only: the spatial compile already covers
    /// schedule legality, so the gate does not repeat it.
    fn cached_lints(&self, program: &RevelProgram) -> Arc<Vec<revel_verify::Diagnostic>> {
        let (a, b) = debug_fingerprint(&(program, &self.cfg));
        let key = (program.name.clone(), a, b);
        let cache = LINT_CACHE.get_or_init(Default::default);
        if let Some(hit) = cache.lock().expect("lint cache poisoned").get(&key) {
            return Arc::clone(hit);
        }
        // Lint outside the lock; the verifier is deterministic, so a racing
        // duplicate inserts identical diagnostics.
        let diags = Arc::new(revel_verify::Verifier::program_only().verify(program, &self.cfg));
        cache.lock().expect("lint cache poisoned").entry(key).or_insert_with(|| Arc::clone(&diags));
        diags
    }

    /// Captures the full machine state for a timed-out run's report.
    fn capture_snapshot(&self, now: u64, program: &RevelProgram) -> DeadlockSnapshot {
        DeadlockSnapshot {
            cycle: now,
            control_pc: self.control.pc,
            control_len: program.control.len(),
            control_waiting: self.control.waiting,
            lanes: self.lanes.iter().map(LaneSnapshot::capture).collect(),
        }
    }
}

/// Cycle ceiling applied when `REVEL_SIM_DEBUG` is enabled, so a deadlock
/// dump arrives in seconds instead of after the full 50M-cycle budget.
const DEBUG_MAX_CYCLES: u64 = 2_000_000;

/// True when `REVEL_SIM_DEBUG` is set to a truthy value. An unset variable
/// and the conventional "off" spellings all disable debugging.
fn sim_debug_enabled() -> bool {
    std::env::var("REVEL_SIM_DEBUG").map(|v| env_truthy(&v)).unwrap_or(false)
}

/// Truthiness for debug-style environment variables: everything is enabled
/// except the empty string and the usual negatives.
fn env_truthy(v: &str) -> bool {
    let v = v.trim();
    !(v.is_empty()
        || v == "0"
        || v.eq_ignore_ascii_case("false")
        || v.eq_ignore_ascii_case("off")
        || v.eq_ignore_ascii_case("no"))
}

#[cfg(test)]
mod tests {
    use super::env_truthy;

    #[test]
    fn debug_env_truthiness() {
        // The documented "off" spellings must not enable the debug clamp —
        // REVEL_SIM_DEBUG=0 used to count as enabled and silently turned
        // long runs into bogus timeouts.
        for off in ["", "0", "false", "FALSE", "off", "Off", "no", " 0 "] {
            assert!(!env_truthy(off), "{off:?} must disable debugging");
        }
        for on in ["1", "true", "yes", "2", "debug"] {
            assert!(env_truthy(on), "{on:?} must enable debugging");
        }
    }
}
