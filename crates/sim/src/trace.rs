//! Timing-trace recording and functional replay: the "one timing run,
//! N datasets" lever.
//!
//! For a certified data-oblivious program (see `revel-verify`'s
//! `ObliviousnessCert`) the cycle-level behaviour of a run — which
//! commands issue when, which regions fire with how many valid lanes,
//! which words move through which ports — depends only on problem
//! *sizes*, never on dataset *values*. One cycle-accurate run can
//! therefore record a [`TimingTrace`] — the linear sequence of
//! functional micro-operations in exact execution order — and every
//! further same-shape dataset replays that trace at `O(words moved)`
//! cost, skipping the per-cycle stepping, store→load guard scans, stall
//! classification, and horizon bookkeeping entirely.
//!
//! The replayer drives the *real* machine components (port FSMs, DFG
//! evaluators, scratchpads), so replayed values are byte-identical to a
//! full simulation of the same dataset: the port reuse/discard/
//! predication FSMs and the evaluators are data-independent state
//! machines, and the trace feeds them the identical operation sequence.
//!
//! Replay is **checked**: every port push, pop, flush, and fire
//! revalidates the invariant the timing run established (guarded pushes
//! always succeed, pops always produce, fire widths match). A program
//! whose timing actually depends on data values desynchronizes the
//! replay — surfaced as [`SimError::Replay`], never a panic — which is
//! what keeps the replay path honest (and is pinned by the injected-edge
//! divergence tests). Callers must gate replay on the static certificate;
//! the trace machinery itself only detects, it does not prove.

use crate::kernel::MachineMem;
use crate::machine::{Machine, SimError};
use crate::stats::RunReport;
use revel_dfg::VecVal;
use revel_fabric::FabricMask;
use revel_isa::{MemTarget, OutPortId, ProdMode, RateFsm};
use revel_prog::{ControlStep, RevelProgram};
use std::collections::{HashMap, VecDeque};

/// One recorded functional micro-operation of a timing run.
///
/// Ops are recorded at the exact site (and in the exact global order)
/// where the timing walk mutates functional state, so a linear walk of
/// the sequence reproduces every data movement without any notion of
/// cycles. Timing-only state (busy flags, stream retirement, stall
/// classification) is deliberately absent: it affects *when* these ops
/// happen, which the trace has already resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceOp {
    /// A host op at control-program `pc` ran against scratchpad memory.
    Host {
        /// Control-program index of the [`ControlStep::Host`] step.
        pc: u32,
    },
    /// A lane applied fabric configuration `config`.
    Configure {
        /// Lane index.
        lane: u8,
        /// Index into `program.configs`.
        config: u32,
    },
    /// A region's accumulator length FSM was reprogrammed.
    SetAccumLen {
        /// Lane index.
        lane: u8,
        /// Region index within the active configuration.
        region: u8,
        /// The new accumulation-length FSM.
        len: RateFsm,
    },
    /// An input port was bound to a new stream (reuse FSM reset).
    BindIn {
        /// Lane index.
        lane: u8,
        /// Input-port index.
        port: u8,
        /// The stream's consumption/reuse FSM.
        reuse: RateFsm,
    },
    /// An output port was bound to a new drain stream (discard FSM reset).
    BindOut {
        /// Lane index.
        lane: u8,
        /// Output-port index.
        port: u8,
        /// The stream's production/discard FSM.
        discard: RateFsm,
        /// Keep-first vs drop-first phase selection.
        mode: ProdMode,
    },
    /// A load stream pushed the word at `addr` into an input port.
    /// Replay re-reads the address from *its* scratchpad image, which is
    /// how dataset values flow into the replayed computation.
    PushMem {
        /// Lane index.
        lane: u8,
        /// Destination input port.
        port: u8,
        /// Which scratchpad the word came from.
        target: MemTarget,
        /// Word address read.
        addr: i64,
        /// True when this word ended an inductive inner row.
        row_end: bool,
    },
    /// A const stream pushed an immediate (program-structural, therefore
    /// dataset-independent) value into an input port.
    PushConst {
        /// Lane index.
        lane: u8,
        /// Destination input port.
        port: u8,
        /// Raw bits of the immediate.
        bits: u64,
    },
    /// A stream-end flush landed on an input port (partial vector padded
    /// with predicated-off lanes).
    FlushIn {
        /// Lane index.
        lane: u8,
        /// Input-port index.
        port: u8,
    },
    /// A deferred staging flush landed on an input port's cycle tick.
    TickIn {
        /// Lane index.
        lane: u8,
        /// Input-port index.
        port: u8,
    },
    /// A region fired: inputs gathered from its ports, DFG evaluated.
    Fire {
        /// Lane index.
        lane: u8,
        /// Region index within the active configuration.
        region: u8,
        /// Valid-lane count the fire covered; replay recomputes this from
        /// its own port state and treats a mismatch as divergence.
        fire_valid: u32,
    },
    /// A matured systolic result left the pipeline for its output ports.
    Deliver {
        /// Lane index.
        lane: u8,
        /// Region index.
        region: u8,
    },
    /// A temporal (dataflow-PE) instance retired to its output ports.
    RetireTemp {
        /// Lane index.
        lane: u8,
        /// Region index.
        region: u8,
    },
    /// A store stream popped a kept value and wrote it to `addr`.
    PopStore {
        /// Lane index.
        lane: u8,
        /// Source output port.
        port: u8,
        /// Which scratchpad was written.
        target: MemTarget,
        /// Word address written.
        addr: i64,
    },
    /// A drain's `pop_kept` consumed spent/discarded values and returned
    /// nothing; replay repeats the call so discard-FSM state stays in
    /// lockstep, and treats a produced value as divergence.
    PopSpent {
        /// Lane index.
        lane: u8,
        /// Output-port index.
        port: u8,
    },
    /// An XFER moved one word from an output port to an input port
    /// (same lane or the right-hand neighbour).
    XferWord {
        /// Source lane.
        src_lane: u8,
        /// Source output port.
        src_port: u8,
        /// Destination lane.
        dst_lane: u8,
        /// Destination input port.
        dst_port: u8,
        /// True when this word ended an inductive inner row at the
        /// destination.
        row_end: bool,
    },
}

/// The recorded timing side of one cycle-accurate run: the functional
/// op sequence plus the run's full report (cycles, per-lane breakdown,
/// event counts), which every replayed dataset shares verbatim — that
/// *is* the obliviousness claim being cashed in.
#[derive(Debug, Clone)]
pub struct TimingTrace {
    /// Name of the program the trace was recorded from.
    pub program: String,
    /// The functional micro-ops in exact execution order.
    pub ops: Vec<TraceOp>,
    /// The timing run's report, shared by all replays.
    pub report: RunReport,
}

impl TimingTrace {
    /// Number of recorded micro-ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace recorded no functional activity.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Accumulates [`TraceOp`]s during a timing walk. Installed on the
/// machine by [`Machine::run_traced`]; `None` (the default) makes every
/// record site a no-op.
#[derive(Debug, Clone, Default)]
pub(crate) struct TraceRecorder {
    pub(crate) ops: Vec<TraceOp>,
}

impl TraceRecorder {
    #[inline]
    pub(crate) fn record(&mut self, op: TraceOp) {
        self.ops.push(op);
    }
}

/// The functional replayer desynchronized from its recorded trace: a
/// checked port/region/memory operation did not behave as the timing
/// run promised. For certified programs this cannot happen; for a
/// value-dependent program replayed on a different dataset it is the
/// expected, structured failure mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the offending op within [`TimingTrace::ops`].
    pub op: usize,
    /// What desynchronized.
    pub message: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace replay diverged at op {}: {}", self.op, self.message)
    }
}

/// Shorthand constructor for replay desync errors.
fn desync(op: usize, message: impl Into<String>) -> SimError {
    SimError::Replay(ReplayError { op, message: message.into() })
}

/// Fired-but-undelivered region outputs during replay, keyed by
/// (lane, region). The timing walk bounds these queues (pipeline depth 8,
/// temporal instance cap 4), so replay memory stays bounded too.
type PendingOutputs = HashMap<(u8, u8), VecDeque<Vec<(OutPortId, VecVal)>>>;

impl Machine {
    /// Runs `program` cycle-accurately while recording the functional
    /// micro-op sequence, returning the [`TimingTrace`] (which embeds
    /// the run's [`RunReport`]).
    ///
    /// # Errors
    /// Everything [`Machine::run`] can return, plus [`SimError::Replay`]
    /// when the machine is configured with fault injection or a degraded
    /// fabric — perturbed runs are not oblivious and must never seed a
    /// replay trace (mirroring the engine's cache-bypass rule).
    pub fn run_traced(&mut self, program: &RevelProgram) -> Result<TimingTrace, SimError> {
        if self.opts.fault_plan.is_some() || self.opts.fabric_mask != FabricMask::HEALTHY {
            return Err(desync(
                0,
                "refusing to record a timing trace under fault injection or a degraded fabric",
            ));
        }
        self.trace = Some(TraceRecorder::default());
        let result = self.run(program);
        // Always uninstall the recorder, even when the run errored.
        let recorder = self.trace.take().expect("recorder installed above");
        let report = result?;
        Ok(TimingTrace { program: program.name.clone(), ops: recorder.ops, report })
    }

    /// Replays a recorded [`TimingTrace`] against this machine's current
    /// scratchpad contents (the dataset), reproducing byte-identical
    /// functional results without cycle stepping.
    ///
    /// The machine should be freshly initialized with the new dataset;
    /// control/lane dynamic state is reset exactly as [`Machine::run`]
    /// does (scratchpad contents are kept).
    ///
    /// # Errors
    /// [`SimError::Program`]/[`SimError::Schedule`] as in `run`, and
    /// [`SimError::Replay`] when the trace desynchronizes — a checked
    /// port operation misbehaves or an address leaves its scratchpad —
    /// which for an uncertified (value-dependent) program is the
    /// expected structured failure instead of a panic.
    pub fn replay(&mut self, program: &RevelProgram, trace: &TimingTrace) -> Result<(), SimError> {
        program.validate(&self.cfg.lane)?;
        let schedules = self.compiled_schedules(program)?;
        self.trace = None;
        self.control = Default::default();
        for lane in &mut self.lanes {
            lane.cmd_queue.clear();
            lane.streams.clear();
            lane.instances.clear();
            lane.regions.clear();
            lane.breakdown = Default::default();
            lane.events = Default::default();
            lane.reconfig_until = 0;
        }
        let mut sys_q = PendingOutputs::new();
        let mut temp_q = PendingOutputs::new();

        for (i, op) in trace.ops.iter().enumerate() {
            match *op {
                TraceOp::Host { pc } => {
                    let Some(ControlStep::Host(host)) = program.control.get(pc as usize) else {
                        return Err(desync(i, format!("no host op at control pc {pc}")));
                    };
                    // Host ops are part of the trusted, validated program
                    // (not the dataset), so they use the same panicking
                    // memory adapter as the timing walk.
                    let mut mem = MachineMem { lanes: &mut self.lanes, shared: &mut self.shared };
                    (host.func)(&mut mem);
                }
                TraceOp::Configure { lane, config } => {
                    let l = self.lane_index(i, lane)?;
                    let c = config as usize;
                    if c >= program.configs.len() {
                        return Err(desync(i, format!("config {config} out of range")));
                    }
                    if sys_q.iter().any(|((ll, _), q)| *ll == lane && !q.is_empty())
                        || temp_q.iter().any(|((ll, _), q)| *ll == lane && !q.is_empty())
                    {
                        return Err(desync(i, "reconfigure with undelivered region outputs"));
                    }
                    self.lanes[l].apply_config(&program.configs[c], &schedules[c]);
                }
                TraceOp::SetAccumLen { lane, region, len } => {
                    let l = self.lane_index(i, lane)?;
                    let r = region as usize;
                    if r >= self.lanes[l].regions.len() {
                        return Err(desync(i, format!("region {region} out of range")));
                    }
                    self.lanes[l].regions[r].set_accum_len(len);
                }
                TraceOp::BindIn { lane, port, reuse } => {
                    let l = self.lane_index(i, lane)?;
                    self.in_port(i, l, port)?.bind_stream(reuse);
                }
                TraceOp::BindOut { lane, port, discard, mode } => {
                    let l = self.lane_index(i, lane)?;
                    self.out_port(i, l, port)?.bind_stream_mode(discard, mode);
                }
                TraceOp::PushMem { lane, port, target, addr, row_end } => {
                    let l = self.lane_index(i, lane)?;
                    let bits = match target {
                        MemTarget::Private => self.lanes[l].spad.try_read(addr),
                        MemTarget::Shared => self.shared.try_read(addr),
                    };
                    let Some(bits) = bits else {
                        return Err(desync(i, format!("load address {addr} out of bounds")));
                    };
                    if !self.in_port(i, l, port)?.push_word(f64::from_bits(bits), row_end) {
                        return Err(desync(i, format!("input port {port} rejected a word")));
                    }
                }
                TraceOp::PushConst { lane, port, bits } => {
                    let l = self.lane_index(i, lane)?;
                    if !self.in_port(i, l, port)?.push_word(f64::from_bits(bits), false) {
                        return Err(desync(i, format!("input port {port} rejected a const")));
                    }
                }
                TraceOp::FlushIn { lane, port } => {
                    let l = self.lane_index(i, lane)?;
                    if !self.in_port(i, l, port)?.flush_at_stream_end() {
                        return Err(desync(i, format!("stream-end flush on port {port} failed")));
                    }
                }
                TraceOp::TickIn { lane, port } => {
                    let l = self.lane_index(i, lane)?;
                    if !self.in_port(i, l, port)?.tick() {
                        return Err(desync(i, format!("deferred flush on port {port} failed")));
                    }
                }
                TraceOp::Fire { lane, region, fire_valid } => {
                    let l = self.lane_index(i, lane)?;
                    let r = region as usize;
                    if r >= self.lanes[l].regions.len() {
                        return Err(desync(i, format!("region {region} out of range")));
                    }
                    for p in self.lanes[l].regions[r].input_port_ids().to_vec() {
                        if self.lanes[l].in_ports[p as usize].peek().is_none() {
                            return Err(desync(i, format!("input port {p} empty at fire")));
                        }
                    }
                    let computed = self.lanes[l].compute_fire_valid(r);
                    if computed != fire_valid {
                        return Err(desync(
                            i,
                            format!(
                                "fire covers {computed} valid lanes, trace recorded {fire_valid}"
                            ),
                        ));
                    }
                    let (outputs, _) = self.lanes[l].gather_and_fire(r, fire_valid);
                    let q = if self.lanes[l].regions[r].is_temporal() {
                        temp_q.entry((lane, region)).or_default()
                    } else {
                        sys_q.entry((lane, region)).or_default()
                    };
                    q.push_back(outputs);
                }
                TraceOp::Deliver { lane, region } => {
                    let outs = sys_q.get_mut(&(lane, region)).and_then(VecDeque::pop_front);
                    self.deliver(i, lane, outs)?;
                }
                TraceOp::RetireTemp { lane, region } => {
                    let outs = temp_q.get_mut(&(lane, region)).and_then(VecDeque::pop_front);
                    self.deliver(i, lane, outs)?;
                }
                TraceOp::PopStore { lane, port, target, addr } => {
                    let l = self.lane_index(i, lane)?;
                    let Some(v) = self.out_port(i, l, port)?.pop_kept() else {
                        return Err(desync(i, format!("output port {port} produced no value")));
                    };
                    let ok = match target {
                        MemTarget::Private => self.lanes[l].spad.try_write(addr, v.to_bits()),
                        MemTarget::Shared => self.shared.try_write(addr, v.to_bits()),
                    };
                    if !ok {
                        return Err(desync(i, format!("store address {addr} out of bounds")));
                    }
                }
                TraceOp::PopSpent { lane, port } => {
                    let l = self.lane_index(i, lane)?;
                    if let Some(v) = self.out_port(i, l, port)?.pop_kept() {
                        return Err(desync(
                            i,
                            format!("output port {port} produced {v} where timing saw none"),
                        ));
                    }
                }
                TraceOp::XferWord { src_lane, src_port, dst_lane, dst_port, row_end } => {
                    let sl = self.lane_index(i, src_lane)?;
                    let Some(v) = self.out_port(i, sl, src_port)?.pop_kept() else {
                        return Err(desync(i, format!("xfer source port {src_port} was dry")));
                    };
                    let dl = self.lane_index(i, dst_lane)?;
                    if !self.in_port(i, dl, dst_port)?.push_word(v, row_end) {
                        return Err(desync(i, format!("xfer destination port {dst_port} full")));
                    }
                }
            }
        }
        if sys_q.values().chain(temp_q.values()).any(|q| !q.is_empty()) {
            return Err(desync(trace.ops.len(), "undelivered region outputs at end of trace"));
        }
        Ok(())
    }

    fn lane_index(&self, op: usize, lane: u8) -> Result<usize, SimError> {
        let l = lane as usize;
        if l < self.lanes.len() {
            Ok(l)
        } else {
            Err(desync(op, format!("lane {lane} out of range ({} lanes)", self.lanes.len())))
        }
    }

    fn in_port(&mut self, op: usize, l: usize, port: u8) -> Result<&mut crate::InPort, SimError> {
        let n = self.lanes[l].in_ports.len();
        self.lanes[l]
            .in_ports
            .get_mut(port as usize)
            .ok_or_else(|| desync(op, format!("input port {port} out of range ({n} ports)")))
    }

    fn out_port(&mut self, op: usize, l: usize, port: u8) -> Result<&mut crate::OutPort, SimError> {
        let n = self.lanes[l].out_ports.len();
        self.lanes[l]
            .out_ports
            .get_mut(port as usize)
            .ok_or_else(|| desync(op, format!("output port {port} out of range ({n} ports)")))
    }

    /// Pushes one fired result set to its output ports, checking space
    /// the way the timing walk's delivery gate did.
    fn deliver(
        &mut self,
        op: usize,
        lane: u8,
        outs: Option<Vec<(OutPortId, VecVal)>>,
    ) -> Result<(), SimError> {
        let l = self.lane_index(op, lane)?;
        let Some(outs) = outs else {
            return Err(desync(op, "delivery with no fired result in flight"));
        };
        for (p, v) in outs {
            if !v.any_valid() {
                continue;
            }
            let port = self.out_port(op, l, p.0)?;
            if !port.has_space() {
                return Err(desync(op, format!("output port {} full at delivery", p.0)));
            }
            port.push(v);
        }
        Ok(())
    }
}
