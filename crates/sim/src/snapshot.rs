//! Structured deadlock diagnostics.
//!
//! A run that exhausts its cycle budget used to print its machine state to
//! stderr only under `REVEL_SIM_DEBUG`, which made `timed_out` failures in
//! CI or batch sweeps unactionable without a rerun. A [`DeadlockSnapshot`]
//! is now captured unconditionally at timeout and attached to the
//! [`crate::RunReport`], so the failing state travels with the result. It
//! also participates in the differential oracle's observable comparison:
//! the event-horizon loop and the reference stepper must time out in
//! *identical* states, not merely at the same cycle.

use crate::lane::{Lane, StreamBody};
use std::fmt;

/// Deterministic one-line summary of an active stream. (The raw `Debug`
/// form is unsuitable here: a store's `written` set is a `HashSet` whose
/// iteration order varies per instance, and snapshot equality across the
/// two steppers requires stable text.)
fn stream_brief(body: &StreamBody) -> String {
    match body {
        StreamBody::Load { target, dst, flushed, .. } => {
            format!("load {target:?} -> in{dst} (flushed={flushed})")
        }
        StreamBody::Store { src, target, written, .. } => {
            format!("store out{src} -> {target:?} ({} written)", written.len())
        }
        StreamBody::Const { dst, values } => format!("const -> in{dst} ({} left)", values.len()),
        StreamBody::XferLocal { src, dst, remaining, .. } => {
            format!("xfer out{src} -> in{dst} ({remaining} left)")
        }
        StreamBody::XferRight { src, dst, remaining, .. } => {
            format!("xfer out{src} -> right in{dst} ({remaining} left)")
        }
    }
}

/// State of one region pipeline at timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSnapshot {
    /// Region name (diagnostic label from the DFG).
    pub name: String,
    /// Matured-but-undelivered firings in the region pipeline.
    pub inflight: usize,
    /// Cycle at which the region may next fire.
    pub next_fire: u64,
}

/// State of one lane at timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSnapshot {
    /// Commands waiting in the lane's command queue.
    pub queued: Vec<String>,
    /// Active streams in the stream table.
    pub streams: Vec<String>,
    /// Temporal region instances in flight on the dataflow PEs.
    pub instances: usize,
    /// Input-port FIFO occupancy (vectors), indexed by port.
    pub in_port_occupancy: Vec<usize>,
    /// Output-port FIFO occupancy (vectors), indexed by port.
    pub out_port_occupancy: Vec<usize>,
    /// Per-region pipeline state.
    pub regions: Vec<RegionSnapshot>,
    /// Reconfiguration deadline (0 = not reconfiguring).
    pub reconfig_until: u64,
}

/// The machine state captured when a run hits its cycle budget: enough to
/// see *what* every component was waiting on without re-running under a
/// debug flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockSnapshot {
    /// Cycle at which the budget ran out.
    pub cycle: u64,
    /// Control-core program counter.
    pub control_pc: usize,
    /// Length of the control program.
    pub control_len: usize,
    /// True if the control core was blocked on a `Wait`.
    pub control_waiting: bool,
    /// Per-lane state.
    pub lanes: Vec<LaneSnapshot>,
}

impl LaneSnapshot {
    pub(crate) fn capture(lane: &Lane) -> Self {
        LaneSnapshot {
            queued: lane.cmd_queue.iter().map(|c| format!("{c:?}")).collect(),
            streams: lane.streams.iter().map(|s| stream_brief(&s.body)).collect(),
            instances: lane.instances.len(),
            in_port_occupancy: lane.in_ports.iter().map(|p| p.occupancy()).collect(),
            out_port_occupancy: lane.out_ports.iter().map(|p| p.occupancy()).collect(),
            regions: lane
                .regions
                .iter()
                .map(|r| RegionSnapshot {
                    name: r.region.name.clone(),
                    inflight: r.inflight_len(),
                    next_fire: r.next_fire_cycle(),
                })
                .collect(),
            reconfig_until: lane.reconfig_until,
        }
    }
}

impl fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== DEADLOCK at cycle {} ===", self.cycle)?;
        writeln!(
            f,
            "control: pc={}/{} waiting={}",
            self.control_pc, self.control_len, self.control_waiting
        )?;
        for (i, lane) in self.lanes.iter().enumerate() {
            writeln!(
                f,
                "lane {i}: queue={} streams={} instances={}",
                lane.queued.len(),
                lane.streams.len(),
                lane.instances
            )?;
            for c in &lane.queued {
                writeln!(f, "  queued: {c}")?;
            }
            for s in &lane.streams {
                writeln!(f, "  stream: {s}")?;
            }
            for (p, occ) in lane.in_port_occupancy.iter().enumerate() {
                if *occ > 0 {
                    writeln!(f, "  in{p}: occ={occ}")?;
                }
            }
            for (p, occ) in lane.out_port_occupancy.iter().enumerate() {
                if *occ > 0 {
                    writeln!(f, "  out{p}: occ={occ}")?;
                }
            }
            if lane.reconfig_until != 0 {
                writeln!(f, "  reconfiguring until cycle {}", lane.reconfig_until)?;
            }
            for (r, reg) in lane.regions.iter().enumerate() {
                writeln!(
                    f,
                    "  region {r} '{}' inflight={} next_fire={}",
                    reg.name, reg.inflight, reg.next_fire
                )?;
            }
        }
        Ok(())
    }
}
