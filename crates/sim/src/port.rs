//! Programmable vector ports: the FIFOs with hardware FSMs that realize
//! inductive dependence semantics (reuse, discard, stream predication).

use revel_dfg::{VecVal, MAX_VEC_WIDTH};
use revel_isa::{ProdMode, RateFsm};
use std::collections::VecDeque;

/// An input port: words stream in, vectors (with predication) stream out to
/// the fabric.
///
/// The port owns two FSMs configured per stream:
/// * **vector assembly + stream predication**: incoming words are staged
///   into a vector of the port's width; an inductive inner-row boundary
///   flushes a partial vector padded with predicated-off lanes (Fig. 12);
/// * **reuse (consumption rate)**: the value at the FIFO head is presented
///   `reuse(k)` times before being popped, where `k` counts head values —
///   this is the "FIFOs with programmable reuse" of Fig. 3.
#[derive(Debug, Clone)]
pub struct InPort {
    width: usize,
    capacity: usize,
    fifo: VecDeque<VecVal>,
    staging: Vec<f64>,
    reuse: RateFsm,
    head_uses_left: i64,
    head_index: i64,
    pending_flush: bool,
    /// Words accepted since the port was (re)bound to a stream.
    words_in: u64,
}

impl InPort {
    /// A port of `width` words with a FIFO of `capacity` vectors.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds [`MAX_VEC_WIDTH`].
    pub fn new(width: usize, capacity: usize) -> Self {
        assert!((1..=MAX_VEC_WIDTH).contains(&width));
        InPort {
            width,
            capacity,
            fifo: VecDeque::new(),
            staging: Vec::with_capacity(width),
            reuse: RateFsm::ONCE,
            head_uses_left: 0,
            head_index: 0,
            pending_flush: false,
            words_in: 0,
        }
    }

    /// Vector width in words.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Configures the reuse FSM for a newly bound stream and resets
    /// assembly state.
    pub fn bind_stream(&mut self, reuse: RateFsm) {
        self.reuse = reuse;
        self.head_index = 0;
        self.head_uses_left = 0;
        self.words_in = 0;
        // Data already in the FIFO (from a previous stream) keeps draining;
        // staging should be empty between streams.
        debug_assert!(self.staging.is_empty(), "staging not flushed between streams");
    }

    /// True if the port can accept another word this cycle.
    ///
    /// A deferred (pending) flush is resolvable exactly when the FIFO has
    /// space; `push_word` resolves it before staging the new word. Staging
    /// can only be full while a flush is pending, so this is the complete
    /// condition.
    pub fn can_accept(&self) -> bool {
        if self.pending_flush {
            self.fifo_has_space()
        } else {
            debug_assert!(self.staging.len() < self.width);
            true
        }
    }

    /// Whether a full vector slot is free (staging flush target).
    fn fifo_has_space(&self) -> bool {
        self.fifo.len() < self.capacity
    }

    /// Pushes one word into the staging buffer; `row_end` marks the last
    /// element of an inductive inner row, which triggers stream-predication
    /// padding.
    ///
    /// Returns `false` (and consumes nothing) if the port cannot accept the
    /// word this cycle; the caller (a stream engine) retries next cycle.
    pub fn push_word(&mut self, value: f64, row_end: bool) -> bool {
        // Resolve any deferred flush before staging new data.
        if !self.resolve_pending() {
            return false;
        }
        debug_assert!(self.staging.len() < self.width);
        self.staging.push(value);
        self.words_in += 1;
        if (self.staging.len() == self.width || row_end) && !self.flush_staged() {
            // FIFO full: the word is consumed but the vector flush is
            // deferred to a later cycle.
            self.pending_flush = true;
        }
        true
    }

    fn resolve_pending(&mut self) -> bool {
        if self.pending_flush {
            if !self.flush_staged() {
                return false;
            }
            self.pending_flush = false;
        }
        true
    }

    /// Flushes the staging buffer (padded with predicated-off lanes when
    /// partial) into the FIFO. Returns `false` if the FIFO is full.
    fn flush_staged(&mut self) -> bool {
        if self.staging.is_empty() {
            return true;
        }
        if !self.fifo_has_space() {
            return false;
        }
        let valid = self.staging.len();
        let mut lanes = self.staging.clone();
        lanes.resize(self.width, 0.0);
        let pred = ((1u16 << valid) - 1) as u8;
        self.fifo.push_back(VecVal::with_pred(&lanes, pred));
        self.staging.clear();
        true
    }

    /// Forces any staged words out as a (possibly padded) vector — called
    /// at stream end. Returns `false` if the FIFO was full (retry later).
    pub fn flush_at_stream_end(&mut self) -> bool {
        if !self.resolve_pending() {
            return false;
        }
        self.flush_staged()
    }

    /// Retries any deferred staging flush; called once per cycle by the
    /// lane so stalled producers cannot strand staged data. Returns `true`
    /// iff the flush landed this call (i.e. port state changed).
    pub fn tick(&mut self) -> bool {
        if self.pending_flush && self.flush_staged() {
            self.pending_flush = false;
            return true;
        }
        false
    }

    /// True when the currently bound reuse FSM is the trivial
    /// once-per-value rate (safe to rebind over leftover FIFO data).
    pub fn reuse_is_trivial(&self) -> bool {
        self.reuse.is_trivial()
    }

    /// Value available for the fabric to consume this cycle, if any.
    pub fn peek(&self) -> Option<VecVal> {
        self.fifo.front().copied()
    }

    /// Number of buffered vectors.
    pub fn occupancy(&self) -> usize {
        self.fifo.len()
    }

    /// True if nothing is buffered or staged.
    pub fn is_drained(&self) -> bool {
        self.fifo.is_empty() && self.staging.is_empty()
    }

    /// Drops the vector at the FIFO head (fault injection: a lost link
    /// beat). Any partial reuse progress on the head is discarded with it.
    /// Returns `true` iff a vector was actually dropped.
    pub fn drop_front(&mut self) -> bool {
        if self.fifo.pop_front().is_some() {
            self.head_uses_left = 0;
            true
        } else {
            false
        }
    }

    /// Inverts bit `bit % 64` of the first valid lane buffered at the FIFO
    /// head (fault injection: a corrupted stream value). Returns `true` iff
    /// a lane was flipped.
    pub fn corrupt_front(&mut self, bit: u8) -> bool {
        let Some(head) = self.fifo.front() else {
            return false;
        };
        let Some((lane, v)) = head.iter_valid().next() else {
            return false;
        };
        let flipped = f64::from_bits(v.to_bits() ^ (1u64 << (bit % 64)));
        self.fifo.front_mut().expect("head exists").set_raw(lane, flipped);
        true
    }

    /// Consumes one presentation of the head value, honouring the reuse
    /// FSM: the head is popped only after its programmed number of uses.
    ///
    /// # Panics
    /// Panics if the port is empty.
    pub fn take(&mut self) -> VecVal {
        self.take_elems(1)
    }

    /// Consumes one presentation covering `elems` logical inner-loop
    /// elements. Reuse counts are in *element* units: the port FSM compares
    /// remaining iterations against the consumer's vector progress (§IV-B),
    /// so a scalar value broadcast to a W-wide region with E valid lanes
    /// burns E uses per fire.
    ///
    /// # Panics
    /// Panics if the port is empty or `elems < 1`.
    pub fn take_elems(&mut self, elems: i64) -> VecVal {
        assert!(elems >= 1, "must consume at least one element");
        let head = *self.fifo.front().expect("take from empty port");
        if self.head_uses_left == 0 {
            self.head_uses_left = self.reuse.count_at(self.head_index);
            self.head_index += 1;
        }
        self.head_uses_left -= elems;
        if self.head_uses_left <= 0 {
            self.head_uses_left = 0;
            self.fifo.pop_front();
        }
        head
    }
}

/// An output port: vectors from the fabric stream in; store/XFER streams
/// drain valid lanes as scalar words, honouring a production-rate
/// (keep-first-of-group discard) FSM.
#[derive(Debug, Clone)]
pub struct OutPort {
    width: usize,
    capacity: usize,
    fifo: VecDeque<VecVal>,
    /// Lane cursor within the head vector.
    head_lane: usize,
    discard: RateFsm,
    mode: ProdMode,
    /// Position within the current production group.
    group_pos: i64,
    /// Group index (outer induction variable of the production FSM).
    group_index: i64,
}

impl OutPort {
    /// A port of `width` words with a FIFO of `capacity` vectors.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds [`MAX_VEC_WIDTH`].
    pub fn new(width: usize, capacity: usize) -> Self {
        assert!((1..=MAX_VEC_WIDTH).contains(&width));
        OutPort {
            width,
            capacity,
            fifo: VecDeque::new(),
            head_lane: 0,
            discard: RateFsm::ONCE,
            mode: ProdMode::KeepFirst,
            group_pos: 0,
            group_index: 0,
        }
    }

    /// Vector width in words.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Configures the production/discard FSM for a newly bound drain
    /// stream.
    pub fn bind_stream(&mut self, discard: RateFsm) {
        self.bind_stream_mode(discard, ProdMode::KeepFirst);
    }

    /// Configures the production FSM with an explicit phase selection.
    pub fn bind_stream_mode(&mut self, discard: RateFsm, mode: ProdMode) {
        self.discard = discard;
        self.mode = mode;
        self.group_pos = 0;
        self.group_index = 0;
    }

    /// True if the fabric can push a result vector this cycle.
    pub fn has_space(&self) -> bool {
        self.fifo.len() < self.capacity
    }

    /// Accepts a result vector from the fabric. Vectors with no valid lane
    /// (e.g. non-emitting accumulator fires) are dropped silently.
    ///
    /// # Panics
    /// Panics if the port is full (fabric must check [`OutPort::has_space`]).
    pub fn push(&mut self, v: VecVal) {
        if !v.any_valid() {
            return;
        }
        assert!(self.has_space(), "push to full output port");
        self.fifo.push_back(v);
    }

    /// Number of buffered vectors.
    pub fn occupancy(&self) -> usize {
        self.fifo.len()
    }

    /// True if nothing is buffered.
    pub fn is_drained(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Pops the next *kept* valid scalar value for the drain stream,
    /// applying the production FSM: of every `discard(j)` valid values,
    /// the first is returned, the rest are dropped. Returns `None` when no
    /// value can be produced this call.
    pub fn pop_kept(&mut self) -> Option<f64> {
        loop {
            let (value, exhausted) = {
                let head = self.fifo.front()?;
                let mut lane = self.head_lane;
                let mut found = None;
                while lane < head.width() {
                    if let Some(v) = head.get(lane) {
                        found = Some((v, lane));
                        break;
                    }
                    lane += 1;
                }
                match found {
                    Some((v, l)) => (Some(v), l + 1 >= head.width()),
                    None => (None, true),
                }
            };
            match value {
                None => {
                    // Head had no remaining valid lanes.
                    self.fifo.pop_front();
                    self.head_lane = 0;
                    continue;
                }
                Some(v) => {
                    // Advance the lane cursor past the lane we just used.
                    let head = self.fifo.front().expect("head exists");
                    let mut lane = self.head_lane;
                    while lane < head.width() && head.get(lane).is_none() {
                        lane += 1;
                    }
                    self.head_lane = lane + 1;
                    if exhausted || self.head_lane >= head.width() {
                        self.fifo.pop_front();
                        self.head_lane = 0;
                    }
                    // Production FSM: phase selection within each group.
                    let group_len = self.discard.count_at(self.group_index);
                    let keep = match self.mode {
                        ProdMode::KeepFirst => self.group_pos == 0,
                        ProdMode::DropFirst => self.group_pos != 0,
                    };
                    self.group_pos += 1;
                    if self.group_pos >= group_len {
                        self.group_pos = 0;
                        self.group_index += 1;
                    }
                    if keep {
                        return Some(v);
                    }
                    // Dropped: loop to find the next kept value? No — one
                    // value consumed per call; dropped values cost no
                    // bandwidth downstream, so keep scanning.
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inport_assembles_vectors() {
        let mut p = InPort::new(4, 4);
        p.bind_stream(RateFsm::ONCE);
        for i in 0..4 {
            assert!(p.push_word(i as f64, false));
        }
        let v = p.peek().unwrap();
        assert_eq!(v.valid_count(), 4);
        assert_eq!(v.get(2), Some(2.0));
    }

    #[test]
    fn inport_predication_padding() {
        let mut p = InPort::new(4, 4);
        p.bind_stream(RateFsm::ONCE);
        assert!(p.push_word(1.0, false));
        assert!(p.push_word(2.0, true)); // inner row ends after 2 of 4
        let v = p.peek().unwrap();
        assert_eq!(v.valid_count(), 2);
        assert_eq!(v.pred(), 0b0011);
        assert_eq!(v.get(3), None);
    }

    #[test]
    fn inport_fifo_capacity() {
        let mut p = InPort::new(1, 2);
        p.bind_stream(RateFsm::ONCE);
        assert!(p.push_word(1.0, false));
        assert!(p.push_word(2.0, false));
        // FIFO full (2) + staging takes one more.
        assert!(p.push_word(3.0, false));
        // Now staging full and FIFO full: reject.
        assert!(!p.push_word(4.0, false));
        assert_eq!(p.occupancy(), 2);
    }

    #[test]
    fn inport_reuse_fsm() {
        let mut p = InPort::new(1, 4);
        p.bind_stream(RateFsm::fixed(3));
        p.push_word(7.0, false);
        p.push_word(8.0, false);
        for _ in 0..3 {
            assert_eq!(p.take().get(0), Some(7.0));
        }
        assert_eq!(p.take().get(0), Some(8.0));
    }

    #[test]
    fn inport_inductive_reuse() {
        // reuse counts 3, 2, 1 — like `inv` reused n-k times in Cholesky.
        let mut p = InPort::new(1, 4);
        p.bind_stream(RateFsm::inductive(3, -1));
        for v in [1.0, 2.0, 3.0] {
            p.push_word(v, false);
        }
        let taken: Vec<f64> = (0..6).map(|_| p.take().get(0).unwrap()).collect();
        assert_eq!(taken, [1.0, 1.0, 1.0, 2.0, 2.0, 3.0]);
        assert!(p.is_drained());
    }

    #[test]
    fn outport_pops_valid_lanes() {
        let mut p = OutPort::new(4, 4);
        p.bind_stream(RateFsm::ONCE);
        p.push(VecVal::with_pred(&[1.0, 2.0, 3.0, 4.0], 0b1011));
        assert_eq!(p.pop_kept(), Some(1.0));
        assert_eq!(p.pop_kept(), Some(2.0));
        assert_eq!(p.pop_kept(), Some(4.0)); // lane 2 predicated off
        assert_eq!(p.pop_kept(), None);
        assert!(p.is_drained());
    }

    #[test]
    fn outport_drops_invalid_vectors() {
        let mut p = OutPort::new(2, 4);
        p.push(VecVal::invalid(2));
        assert_eq!(p.occupancy(), 0);
    }

    #[test]
    fn outport_discard_fsm_keeps_first() {
        let mut p = OutPort::new(1, 8);
        p.bind_stream(RateFsm::fixed(3)); // keep 1 of every 3
        for i in 0..6 {
            p.push(VecVal::splat(i as f64, 1));
        }
        assert_eq!(p.pop_kept(), Some(0.0));
        assert_eq!(p.pop_kept(), Some(3.0));
        assert_eq!(p.pop_kept(), None);
    }

    #[test]
    fn outport_inductive_discard() {
        // groups of 3, 2, 1: keep values 0, 3, 5.
        let mut p = OutPort::new(1, 8);
        p.bind_stream(RateFsm::inductive(3, -1));
        for i in 0..6 {
            p.push(VecVal::splat(i as f64, 1));
        }
        assert_eq!(p.pop_kept(), Some(0.0));
        assert_eq!(p.pop_kept(), Some(3.0));
        assert_eq!(p.pop_kept(), Some(5.0));
        assert_eq!(p.pop_kept(), None);
    }

    #[test]
    fn inport_stream_end_flush() {
        let mut p = InPort::new(4, 4);
        p.bind_stream(RateFsm::ONCE);
        p.push_word(5.0, false);
        assert!(p.peek().is_none());
        assert!(p.flush_at_stream_end());
        assert_eq!(p.peek().unwrap().valid_count(), 1);
    }
}
