//! # revel-sim — cycle-level functional simulator for REVEL
//!
//! A cycle-level, *functional + timing* simulator of the REVEL accelerator
//! from *"A Hybrid Systolic-Dataflow Architecture for Inductive Matrix
//! Algorithms"* (HPCA 2020). It executes [`RevelProgram`]s — fabric
//! configurations plus vector-stream control code — on a machine model
//! comprising:
//!
//! * a **control core** that constructs and ships stream commands (one per
//!   few cycles) and blocks on `Wait`;
//! * per-lane **command queues** (8 entries) issuing to a **stream table**
//!   (8 concurrent streams) in per-port program order;
//! * **programmable ports** with reuse/discard FSMs and stream predication;
//! * **stream engines** enforcing scratchpad (512 b 1R/1W), XFER-bus, and
//!   inter-lane-bus bandwidth;
//! * **systolic region firing** at the scheduler-derived latency/II and a
//!   **triggered-instruction executor** for temporal regions;
//! * cycle classification (Fig. 23) and event counting for the power model.
//!
//! Because streams carry real data and DFGs are evaluated on real values,
//! every workload's numeric output can be verified against a reference
//! implementation — the simulator is its own correctness oracle.
//!
//! ```
//! use revel_fabric::RevelConfig;
//! use revel_sim::{Machine, RevelProgram, SimOptions};
//! use revel_dfg::{Dfg, OpCode, Region};
//! use revel_isa::*;
//!
//! // Negate 16 numbers through the fabric.
//! let mut g = Dfg::new("neg");
//! let a = g.input(InPortId(0));
//! let n = g.op(OpCode::Neg, &[a]);
//! g.output(n, OutPortId(0));
//!
//! let mut prog = RevelProgram::new("neg16");
//! let cfg_id = prog.add_config(vec![Region::systolic("neg", g, 8)]);
//! let lane0 = LaneMask::single(LaneId(0));
//! prog.push(VectorCommand::broadcast(lane0, StreamCommand::Configure { config: ConfigId(cfg_id) }));
//! prog.push(VectorCommand::broadcast(lane0, StreamCommand::load(
//!     MemTarget::Private, AffinePattern::linear(0, 16), InPortId(0), RateFsm::ONCE)));
//! prog.push(VectorCommand::broadcast(lane0, StreamCommand::store(
//!     OutPortId(0), MemTarget::Private, AffinePattern::linear(16, 16), RateFsm::ONCE)));
//! prog.push(VectorCommand::broadcast(lane0, StreamCommand::Wait));
//!
//! let mut m = Machine::new(RevelConfig::single_lane(), SimOptions::default());
//! let input: Vec<f64> = (0..16).map(|i| i as f64).collect();
//! m.write_private(LaneId(0), 0, &input);
//! let report = m.run(&prog).unwrap();
//! assert!(!report.timed_out);
//! assert_eq!(m.read_private(LaneId(0), 16, 16), input.iter().map(|x| -x).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod kernel;
mod lane;
mod machine;
mod memory;
mod port;
mod snapshot;
mod stats;
mod trace;

pub use fault::{
    FaultEvent, FaultKind, FaultPlan, FaultRecord, FaultSnapshot, RunOutcome, FAULT_ALL,
    FAULT_BIT_FLIP, FAULT_DEAD_PE, FAULT_DROP_PORT, FAULT_STALL_PE,
};
pub use kernel::NextEvent;
pub use machine::{
    force_reference_stepper, schedule_cache_stats, Machine, ScheduleCacheStats, SimError,
    SimOptions,
};
pub use memory::Scratchpad;
pub use port::{InPort, OutPort};
// The program representation lives in `revel-prog` (so the static verifier
// can analyze programs without depending on the simulator); re-exported here
// for backward compatibility.
pub use revel_prog::{
    ControlStep, DynBind, DynField, DynSrc, DynStep, HostMem, HostOp, HostWrite, ProgramError,
    RevelProgram,
};
pub use snapshot::{DeadlockSnapshot, LaneSnapshot, RegionSnapshot};
pub use stats::{CycleBreakdown, CycleClass, ObservableReport, RunReport, StepperStats};
pub use trace::{ReplayError, TimingTrace, TraceOp};
