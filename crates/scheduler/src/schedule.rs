use crate::instr::{expand, Endpoint, Expansion, InstrKey};
use crate::place::{place, repair_placement};
use crate::route::{region_hops, route_degraded, RouteStats, Routing};
use revel_dfg::{FuClass, Region, RegionKind};
use revel_fabric::{FabricMask, Mesh, MeshCoord, MeshLink};
use std::collections::HashMap;
use std::fmt;

/// Failure to map a configuration onto the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// More dedicated instructions of a class than systolic PEs provide.
    NotEnoughPes {
        /// FU class in shortage.
        class: FuClass,
        /// Instructions needing this class.
        needed: usize,
        /// PEs available.
        available: usize,
    },
    /// Temporal instructions exceed total dataflow-PE instruction slots.
    TemporalOverflow {
        /// Instructions to map.
        needed: usize,
        /// Total slots.
        capacity: usize,
    },
    /// Temporal instructions exist but the fabric has no dataflow PEs
    /// (e.g. the pure-systolic baseline).
    NoDataflowPes {
        /// Instructions that had nowhere to go.
        needed: usize,
    },
    /// A fabric mask's dead links disconnected two tiles an edge must
    /// connect: the degraded fabric cannot route this program.
    Unroutable {
        /// Producer tile.
        from: MeshCoord,
        /// Consumer tile.
        to: MeshCoord,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NotEnoughPes { class, needed, available } => {
                write!(f, "not enough {class} PEs: need {needed}, have {available}")
            }
            ScheduleError::TemporalOverflow { needed, capacity } => {
                write!(f, "temporal instructions ({needed}) exceed dataflow slots ({capacity})")
            }
            ScheduleError::NoDataflowPes { needed } => {
                write!(f, "{needed} temporal instructions but fabric has no dataflow PEs")
            }
            ScheduleError::Unroutable { from, to } => {
                write!(f, "dead links disconnect {from} from {to}: degraded fabric unroutable")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Timing of one scheduled region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSchedule {
    /// Pipeline latency from input ports to output ports (FU latencies plus
    /// routed hops along the critical path).
    pub latency: u32,
    /// Initiation interval: cycles between successive firings. 1 for a
    /// perfectly pipelined systolic region; >1 when a div/sqrt unit or a
    /// shared mesh link serializes firings.
    pub ii: u32,
    /// Deepest delay-FIFO the compiler must insert to equalize operand
    /// arrival at any PE of this region (systolic timing equalization).
    pub max_delay_fifo: u32,
    /// Mesh hops traversed per firing (for the energy model).
    pub hops_per_fire: u32,
}

/// The result of spatially compiling a configuration.
#[derive(Debug, Clone)]
pub struct FabricSchedule {
    /// Per-region timing, parallel to the scheduled region slice.
    pub regions: Vec<RegionSchedule>,
    /// Instruction placements (systolic exclusive, temporal shared).
    pub placement: HashMap<InstrKey, MeshCoord>,
    /// Temporal instructions resident per dataflow tile.
    pub dpe_load: HashMap<MeshCoord, usize>,
    /// Routing statistics.
    pub route_stats: RouteStats,
}

/// The spatial compiler: places and routes all concurrent regions of a
/// configuration onto one lane's mesh and extracts timing.
#[derive(Debug, Clone)]
pub struct SpatialScheduler {
    mesh: Mesh,
    seed: u64,
    sa_iterations: usize,
    route_iterations: u32,
    dpe_slots: usize,
}

impl SpatialScheduler {
    /// Creates a scheduler for a mesh with default effort (deterministic).
    pub fn new(mesh: Mesh) -> Self {
        SpatialScheduler {
            mesh,
            seed: 0xC0FFEE,
            sa_iterations: 4000,
            route_iterations: 8,
            dpe_slots: 32,
        }
    }

    /// Sets the annealing seed (placement is deterministic per seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the annealing effort.
    #[must_use]
    pub fn with_sa_iterations(mut self, iters: usize) -> Self {
        self.sa_iterations = iters;
        self
    }

    /// Sets instruction slots per dataflow PE (Table III: 32).
    #[must_use]
    pub fn with_dpe_slots(mut self, slots: usize) -> Self {
        self.dpe_slots = slots;
        self
    }

    /// The mesh being scheduled onto.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Maps all regions simultaneously onto the fabric.
    ///
    /// # Errors
    /// Returns [`ScheduleError`] if the configuration does not fit.
    pub fn schedule(&self, regions: &[Region]) -> Result<FabricSchedule, ScheduleError> {
        self.reschedule_degraded(regions, FabricMask::HEALTHY)
    }

    /// Maps all regions onto the fabric with some PEs/links masked out
    /// (permanent faults): the healthy placement is computed first (same
    /// seed and annealing effort as [`SpatialScheduler::schedule`], so an
    /// empty mask is byte-identical to the healthy schedule), then a
    /// deterministic greedy repair walks dead tiles in ascending row-major
    /// order — each displaced systolic instruction moves to the nearest
    /// free live tile of its FU class, displaced temporal instructions
    /// redistribute to the least-loaded live dataflow PEs — and routing
    /// re-runs with dead links excluded. Degradation is therefore graceful:
    /// throughput decays with lost tiles instead of the run wedging.
    ///
    /// # Errors
    /// [`ScheduleError::NotEnoughPes`] / [`ScheduleError::TemporalOverflow`]
    /// / [`ScheduleError::NoDataflowPes`] when the surviving fabric is too
    /// small, [`ScheduleError::Unroutable`] when dead links disconnect it.
    pub fn reschedule_degraded(
        &self,
        regions: &[Region],
        mask: FabricMask,
    ) -> Result<FabricSchedule, ScheduleError> {
        let exp = expand(regions);
        let healthy = place(&self.mesh, &exp, self.dpe_slots, self.seed, self.sa_iterations)?;
        let placement = repair_placement(&self.mesh, &exp, healthy, self.dpe_slots, mask)?;
        let routing = route_degraded(&self.mesh, &exp, &placement, self.route_iterations, mask)?;
        let link_sharing = dedicated_link_usage(&exp, &routing);

        let mut region_schedules = Vec::with_capacity(regions.len());
        for (r, region) in regions.iter().enumerate() {
            region_schedules.push(self.time_region(r, region, &exp, &routing, &link_sharing));
        }
        Ok(FabricSchedule {
            regions: region_schedules,
            placement: placement.instr_pos,
            dpe_load: placement.dpe_load,
            route_stats: routing.stats,
        })
    }

    /// Computes latency / II / delay-FIFO for one region.
    fn time_region(
        &self,
        r: usize,
        region: &Region,
        exp: &Expansion,
        routing: &Routing,
        link_sharing: &HashMap<MeshLink, u32>,
    ) -> RegionSchedule {
        // Arrival-time propagation per instruction (keys are topologically
        // ordered because DFG nodes are append-only).
        let mut arrival: HashMap<InstrKey, u32> = HashMap::new();
        let mut latency = 0u32;
        let mut max_delay_fifo = 0u32;
        // Group incoming edges by destination instruction.
        let mut incoming: HashMap<InstrKey, Vec<(Endpoint, u32)>> = HashMap::new();
        let mut output_edges: Vec<(Endpoint, u32)> = Vec::new();
        for (edge, path) in exp.edges.iter().zip(&routing.edge_paths) {
            if edge.region != r {
                continue;
            }
            let hops = path.len() as u32;
            match edge.to {
                Endpoint::Instr(k) => incoming.entry(k).or_default().push((edge.from, hops)),
                Endpoint::OutPort(_) => output_edges.push((edge.from, hops)),
                Endpoint::InPort(_) => {}
            }
        }
        let instr_latency: HashMap<InstrKey, u32> =
            exp.instrs.iter().filter(|i| i.key.region == r).map(|i| (i.key, i.latency)).collect();
        let mut instr_keys: Vec<InstrKey> =
            exp.instrs.iter().filter(|i| i.key.region == r).map(|i| i.key).collect();
        instr_keys.sort();
        for key in instr_keys {
            let ins = incoming.get(&key).cloned().unwrap_or_default();
            let times: Vec<u32> =
                ins.iter().map(|(from, hops)| endpoint_arrival(&arrival, *from) + hops).collect();
            let ready = times.iter().copied().max().unwrap_or(0);
            if let (Some(max), Some(min)) =
                (times.iter().copied().max(), times.iter().copied().min())
            {
                max_delay_fifo = max_delay_fifo.max(max - min);
            }
            // `instr_keys` and `instr_latency` are built from the same
            // filter over `exp.instrs`, so the lookup cannot miss.
            arrival.insert(key, ready + instr_latency[&key]);
        }
        for (from, hops) in &output_edges {
            latency = latency.max(endpoint_arrival(&arrival, *from) + hops);
        }

        // Initiation interval.
        let mut ii = exp
            .instrs
            .iter()
            .filter(|i| i.key.region == r && !i.temporal)
            .map(|i| i.ii)
            .max()
            .unwrap_or(1);
        // Dedicated links shared with anything serialize firings.
        for (edge, path) in exp.edges.iter().zip(&routing.edge_paths) {
            if edge.region != r || !edge.needs_dedicated_links() {
                continue;
            }
            for l in path {
                ii = ii.max(link_sharing.get(l).copied().unwrap_or(1));
            }
        }
        // Temporal regions: the sim models dPE contention cycle-by-cycle;
        // the schedule reports the FU floor only.
        if region.kind == RegionKind::Temporal {
            ii = ii.max(1);
        }

        RegionSchedule {
            latency: latency.max(1),
            ii,
            max_delay_fifo,
            hops_per_fire: region_hops(exp, routing, r),
        }
    }
}

fn endpoint_arrival(arrival: &HashMap<InstrKey, u32>, ep: Endpoint) -> u32 {
    match ep {
        Endpoint::Instr(k) => arrival.get(&k).copied().unwrap_or(0),
        Endpoint::InPort(_) | Endpoint::OutPort(_) => 0,
    }
}

fn dedicated_link_usage(exp: &Expansion, routing: &Routing) -> HashMap<MeshLink, u32> {
    let mut usage: HashMap<MeshLink, u32> = HashMap::new();
    for (edge, path) in exp.edges.iter().zip(&routing.edge_paths) {
        if !edge.needs_dedicated_links() {
            continue;
        }
        for l in path {
            *usage.entry(*l).or_insert(0) += 1;
        }
    }
    usage
}

#[cfg(test)]
mod tests {
    use super::*;
    use revel_dfg::{Dfg, OpCode};
    use revel_fabric::LaneConfig;
    use revel_isa::{InPortId, OutPortId, RateFsm};

    fn scheduler() -> SpatialScheduler {
        SpatialScheduler::new(Mesh::for_lane(&LaneConfig::paper_default()))
    }

    fn solver_inner(unroll: usize) -> Region {
        // b[i] -= b[j] * a[j,i]
        let mut g = Dfg::new("solver-inner");
        let bj = g.input(InPortId(0));
        let aji = g.input(InPortId(1));
        let bi = g.input(InPortId(2));
        let prod = g.op(OpCode::Mul, &[bj, aji]);
        let sub = g.op(OpCode::Sub, &[bi, prod]);
        g.output(sub, OutPortId(0));
        Region::systolic("inner", g, unroll)
    }

    fn solver_outer() -> Region {
        // b[j] / a[j,j]
        let mut g = Dfg::new("solver-outer");
        let b = g.input(InPortId(3));
        let a = g.input(InPortId(4));
        let d = g.op(OpCode::Div, &[b, a]);
        g.output(d, OutPortId(1));
        Region::temporal("outer", g)
    }

    #[test]
    fn schedules_hybrid_configuration() {
        let s = scheduler();
        let sched = s.schedule(&[solver_inner(4), solver_outer()]).unwrap();
        assert_eq!(sched.regions.len(), 2);
        let inner = &sched.regions[0];
        // mul(4) + sub(2) + some hops.
        assert!(inner.latency >= 6, "inner latency {}", inner.latency);
        assert!(inner.latency <= 40);
        assert_eq!(inner.ii, 1, "vectorized inner loop must pipeline at II=1");
        // Outer region lives on the dataflow PE.
        assert_eq!(sched.dpe_load.values().sum::<usize>(), 1);
    }

    #[test]
    fn divsqrt_ii_propagates() {
        let mut g = Dfg::new("divchain");
        let a = g.input(InPortId(0));
        let d = g.op(OpCode::Div, &[a, a]);
        g.output(d, OutPortId(0));
        let sched = scheduler().schedule(&[Region::systolic("d", g, 1)]).unwrap();
        assert_eq!(sched.regions[0].ii, 5, "div unit II must bound region II");
        assert!(sched.regions[0].latency >= 12);
    }

    #[test]
    fn accumulator_region_schedules() {
        let mut g = Dfg::new("dot");
        let a = g.input(InPortId(0));
        let b = g.input(InPortId(1));
        let m = g.op(OpCode::Mul, &[a, b]);
        let red = g.op(OpCode::ReduceAdd, &[m]);
        let acc = g.accum(red, RateFsm::fixed(8));
        g.output(acc, OutPortId(0));
        let sched = scheduler().schedule(&[Region::systolic("dot", g, 4)]).unwrap();
        assert!(sched.regions[0].latency > 0);
    }

    #[test]
    fn overflow_reported() {
        // 10 multiplies x 2 replicas > 9 multipliers.
        let mut g = Dfg::new("wide");
        let a = g.input(InPortId(0));
        let mut v = a;
        for _ in 0..10 {
            v = g.op(OpCode::Mul, &[v, a]);
        }
        g.output(v, OutPortId(0));
        let err = scheduler().schedule(&[Region::systolic("w", g, 2)]).unwrap_err();
        assert!(matches!(err, ScheduleError::NotEnoughPes { class: FuClass::Multiplier, .. }));
    }

    #[test]
    fn pure_systolic_mesh_rejects_temporal() {
        let mesh = Mesh::for_lane(&LaneConfig::pure_systolic());
        let err = SpatialScheduler::new(mesh).schedule(&[solver_outer()]).unwrap_err();
        assert!(matches!(err, ScheduleError::NoDataflowPes { .. }));
    }

    #[test]
    fn pure_dataflow_mesh_takes_everything_temporal() {
        let mesh = Mesh::for_lane(&LaneConfig::pure_dataflow());
        let mut g = Dfg::new("t");
        let a = g.input(InPortId(0));
        let s = g.op(OpCode::Add, &[a, a]);
        g.output(s, OutPortId(0));
        let sched = SpatialScheduler::new(mesh).schedule(&[Region::temporal("t", g)]).unwrap();
        assert_eq!(sched.dpe_load.values().sum::<usize>(), 1);
    }

    #[test]
    fn delay_fifo_reported_for_unbalanced_paths() {
        // One operand goes through a multiply (lat 4), the other is direct:
        // the join needs a delay FIFO of at least ~4.
        let mut g = Dfg::new("skew");
        let a = g.input(InPortId(0));
        let b = g.input(InPortId(1));
        let m = g.op(OpCode::Mul, &[a, b]);
        let s = g.op(OpCode::Add, &[m, b]);
        g.output(s, OutPortId(0));
        let sched = scheduler().schedule(&[Region::systolic("skew", g, 1)]).unwrap();
        assert!(sched.regions[0].max_delay_fifo >= 3);
    }

    #[test]
    fn determinism() {
        let a = scheduler().schedule(&[solver_inner(4), solver_outer()]).unwrap();
        let b = scheduler().schedule(&[solver_inner(4), solver_outer()]).unwrap();
        assert_eq!(a.regions, b.regions);
    }

    #[test]
    fn empty_mask_is_byte_identical_to_healthy_schedule() {
        let s = scheduler();
        let regions = [solver_inner(4), solver_outer()];
        let healthy = s.schedule(&regions).unwrap();
        let degraded = s.reschedule_degraded(&regions, FabricMask::HEALTHY).unwrap();
        assert_eq!(healthy.regions, degraded.regions);
        assert_eq!(healthy.placement, degraded.placement);
        assert_eq!(healthy.route_stats, degraded.route_stats);
    }

    #[test]
    fn masking_unused_tiles_leaves_the_schedule_unchanged() {
        let s = scheduler();
        let regions = [solver_inner(1)];
        let healthy = s.schedule(&regions).unwrap();
        // Find a systolic tile no instruction occupies and kill it.
        let occupied: std::collections::HashSet<MeshCoord> =
            healthy.placement.values().copied().collect();
        let idle = s
            .mesh()
            .slots()
            .iter()
            .find(|t| {
                matches!(t.kind, revel_fabric::PeKind::Systolic(_)) && !occupied.contains(&t.coord)
            })
            .expect("a 3-instruction region leaves tiles idle");
        let mask = FabricMask::HEALTHY.with_dead_pe(s.mesh().tile_index(idle.coord));
        let degraded = s.reschedule_degraded(&regions, mask).unwrap();
        assert_eq!(healthy.regions, degraded.regions, "an idle dead tile must change nothing");
        assert_eq!(healthy.placement, degraded.placement);
    }

    #[test]
    fn repair_moves_off_dead_tiles_and_still_schedules() {
        let s = scheduler();
        let regions = [solver_inner(4), solver_outer()];
        let healthy = s.schedule(&regions).unwrap();
        // Kill every occupied systolic tile's first victim: the lowest-index
        // occupied tile.
        let mesh = s.mesh();
        let victim = healthy
            .placement
            .values()
            .filter(|c| matches!(mesh.slot(**c).kind, revel_fabric::PeKind::Systolic(_)))
            .min_by_key(|c| mesh.tile_index(**c))
            .copied()
            .expect("systolic placements exist");
        let mask = FabricMask::HEALTHY.with_dead_pe(mesh.tile_index(victim));
        let degraded = s.reschedule_degraded(&regions, mask).unwrap();
        for (key, coord) in &degraded.placement {
            assert!(!mask.pe_dead(mesh.tile_index(*coord)), "{key:?} placed on dead tile {coord}");
        }
        assert_eq!(degraded.regions.len(), 2);
        assert!(degraded.regions[0].ii >= healthy.regions[0].ii);
    }

    #[test]
    fn dead_links_can_make_the_fabric_unroutable() {
        let s = scheduler();
        let mesh = s.mesh();
        // Sever both links of corner (0,0): input port 0 injects there, so
        // any region reading port 0 becomes unroutable.
        let c00 = MeshCoord { x: 0, y: 0 };
        let right = mesh.link_bit(c00, MeshCoord { x: 1, y: 0 }).unwrap();
        let down = mesh.link_bit(c00, MeshCoord { x: 0, y: 1 }).unwrap();
        let mask = FabricMask::HEALTHY.with_dead_link(right).with_dead_link(down);
        let err = s.reschedule_degraded(&[solver_inner(1)], mask).unwrap_err();
        assert!(matches!(err, ScheduleError::Unroutable { .. }), "{err}");
    }

    #[test]
    fn dead_dataflow_pe_without_spare_is_rejected() {
        let s = scheduler();
        let mesh = s.mesh();
        let dpe = mesh.dataflow_slots().next().unwrap().coord;
        let mask = FabricMask::HEALTHY.with_dead_pe(mesh.tile_index(dpe));
        // The paper mesh has exactly one dataflow PE; killing it strands
        // every temporal instruction.
        let err = s.reschedule_degraded(&[solver_outer()], mask).unwrap_err();
        assert!(matches!(err, ScheduleError::NoDataflowPes { needed: 1 }), "{err}");
    }

    #[test]
    fn degraded_capacity_errors_report_live_counts() {
        let s = scheduler();
        let mesh = s.mesh();
        // Kill 8 of the 9 multiplier tiles: a 2-multiply region still fits
        // nothing (2 > 1 live).
        let muls: Vec<usize> =
            mesh.systolic_slots(FuClass::Multiplier).map(|t| mesh.tile_index(t.coord)).collect();
        let mut mask = FabricMask::HEALTHY;
        for idx in muls.iter().take(8) {
            mask = mask.with_dead_pe(*idx);
        }
        let mut g = Dfg::new("mm");
        let a = g.input(InPortId(0));
        let m1 = g.op(OpCode::Mul, &[a, a]);
        let m2 = g.op(OpCode::Mul, &[m1, a]);
        g.output(m2, OutPortId(0));
        let err = s.reschedule_degraded(&[Region::systolic("mm", g, 1)], mask).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::NotEnoughPes { class: FuClass::Multiplier, needed: 2, available: 1 }
        );
    }
}
