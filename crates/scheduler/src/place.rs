//! Simulated-annealing placement of instructions onto mesh tiles.

use crate::instr::{Endpoint, Expansion, InstrKey};
use crate::schedule::ScheduleError;
use revel_fabric::{FabricMask, Mesh, MeshCoord, PeKind};
use revel_isa::Rng;
use std::collections::HashMap;

/// The result of placement: every instruction has a tile.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Instruction → tile. Systolic instructions own their tile
    /// exclusively; temporal instructions share dataflow tiles.
    pub instr_pos: HashMap<InstrKey, MeshCoord>,
    /// Number of temporal instructions resident on each dataflow tile.
    pub dpe_load: HashMap<MeshCoord, usize>,
}

/// Tile used to inject values from input port `p` (ports sit above the top
/// row of the mesh; Fig. 13).
pub fn in_port_coord(mesh: &Mesh, p: u8) -> MeshCoord {
    MeshCoord { x: (p as usize).min(mesh.width() - 1) as u8, y: 0 }
}

/// Tile used to eject values into output port `p` (ports sit below the
/// bottom row of the mesh).
pub fn out_port_coord(mesh: &Mesh, p: u8) -> MeshCoord {
    MeshCoord { x: (p as usize).min(mesh.width() - 1) as u8, y: (mesh.height() - 1) as u8 }
}

/// Resolves both tiles of an edge. Wide vector ports physically span
/// several mesh columns, so each unroll replica injects/ejects at a
/// different column: replica `k` of a port-adjacent edge is shifted `k`
/// columns (wrapping), which is what lets a vectorized region stream a full
/// vector per cycle without sharing a 64-bit mesh link.
pub fn edge_coords(
    mesh: &Mesh,
    placement: &Placement,
    edge: &crate::instr::Edge,
) -> (MeshCoord, MeshCoord) {
    let replica = match (edge.from, edge.to) {
        (Endpoint::Instr(k), _) => k.replica,
        (_, Endpoint::Instr(k)) => k.replica,
        _ => 0,
    };
    let spread =
        |c: MeshCoord| MeshCoord { x: ((c.x as usize + replica) % mesh.width()) as u8, y: c.y };
    let from = match edge.from {
        Endpoint::Instr(k) => placement.instr_pos[&k],
        Endpoint::InPort(p) => spread(in_port_coord(mesh, p.0)),
        Endpoint::OutPort(p) => spread(out_port_coord(mesh, p.0)),
    };
    let to = match edge.to {
        Endpoint::Instr(k) => placement.instr_pos[&k],
        Endpoint::InPort(p) => spread(in_port_coord(mesh, p.0)),
        Endpoint::OutPort(p) => spread(out_port_coord(mesh, p.0)),
    };
    (from, to)
}

/// Places all instructions: temporal instructions round-robin over dataflow
/// tiles (respecting instruction-slot capacity), systolic instructions by
/// simulated annealing minimizing total routed wirelength.
pub fn place(
    mesh: &Mesh,
    exp: &Expansion,
    dpe_slots: usize,
    seed: u64,
    iterations: usize,
) -> Result<Placement, ScheduleError> {
    let mut placement = Placement { instr_pos: HashMap::new(), dpe_load: HashMap::new() };

    // --- temporal instructions -> dataflow tiles (round robin) ---
    let dpe_tiles: Vec<MeshCoord> = mesh.dataflow_slots().map(|s| s.coord).collect();
    let temporal: Vec<&crate::instr::MappedInstr> = exp.temporal_instrs().collect();
    if !temporal.is_empty() {
        if dpe_tiles.is_empty() {
            return Err(ScheduleError::NoDataflowPes { needed: temporal.len() });
        }
        let capacity = dpe_tiles.len() * dpe_slots;
        if temporal.len() > capacity {
            return Err(ScheduleError::TemporalOverflow { needed: temporal.len(), capacity });
        }
        for (i, instr) in temporal.iter().enumerate() {
            let tile = dpe_tiles[i % dpe_tiles.len()];
            placement.instr_pos.insert(instr.key, tile);
            *placement.dpe_load.entry(tile).or_insert(0) += 1;
        }
    }

    // --- systolic instructions -> dedicated tiles ---
    // Group available tiles by FU class.
    let mut free: HashMap<revel_dfg::FuClass, Vec<MeshCoord>> = HashMap::new();
    for s in mesh.slots() {
        if let PeKind::Systolic(class) = s.kind {
            free.entry(class).or_default().push(s.coord);
        }
    }
    let systolic: Vec<&crate::instr::MappedInstr> = exp.systolic_instrs().collect();
    for class in revel_dfg::FuClass::ALL {
        let needed = systolic.iter().filter(|i| i.class == class).count();
        let avail = free.get(&class).map(|v| v.len()).unwrap_or(0);
        if needed > avail {
            return Err(ScheduleError::NotEnoughPes { class, needed, available: avail });
        }
    }
    // Initial assignment: in instruction order, take tiles in row-major
    // order per class (ports are on the top/bottom rows, so early nodes —
    // typically closest to inputs — get top tiles).
    let mut cursor: HashMap<revel_dfg::FuClass, usize> = HashMap::new();
    for instr in &systolic {
        let tiles = free.get(&instr.class).expect("checked above");
        let c = cursor.entry(instr.class).or_insert(0);
        placement.instr_pos.insert(instr.key, tiles[*c]);
        *c += 1;
    }

    if systolic.len() <= 1 || iterations == 0 {
        return Ok(placement);
    }

    // --- simulated annealing over systolic placements ---
    let mut rng = Rng::seed_from_u64(seed);
    // Reverse index: tile -> instr (systolic only).
    let mut occupant: HashMap<MeshCoord, InstrKey> = HashMap::new();
    for instr in &systolic {
        occupant.insert(placement.instr_pos[&instr.key], instr.key);
    }
    let instr_class: HashMap<InstrKey, revel_dfg::FuClass> =
        systolic.iter().map(|i| (i.key, i.class)).collect();

    let cost = |placement: &Placement| -> i64 {
        exp.edges
            .iter()
            .map(|e| {
                let (a, b) = edge_coords(mesh, placement, e);
                mesh.manhattan(a, b) as i64
            })
            .sum()
    };
    let mut cur_cost = cost(&placement);
    // Track the best placement seen: the walk may wander uphill near the
    // end of the schedule, and the final state is not necessarily the best.
    let mut best_cost = cur_cost;
    let mut best_pos = placement.instr_pos.clone();
    let mut temp = (cur_cost as f64 / exp.edges.len().max(1) as f64).max(2.0);
    let keys: Vec<InstrKey> = systolic.iter().map(|i| i.key).collect();
    for step in 0..iterations {
        // Pick an instruction and a random tile of the same class.
        let k = keys[rng.gen_index(keys.len())];
        let class = instr_class[&k];
        let tiles = &free[&class];
        let target = tiles[rng.gen_index(tiles.len())];
        let source = placement.instr_pos[&k];
        if target == source {
            continue;
        }
        let other = occupant.get(&target).copied();
        // Apply move/swap.
        placement.instr_pos.insert(k, target);
        if let Some(o) = other {
            placement.instr_pos.insert(o, source);
        }
        let new_cost = cost(&placement);
        let delta = new_cost - cur_cost;
        let accept = delta <= 0 || rng.gen_f64() < (-(delta as f64) / temp).exp();
        if accept {
            cur_cost = new_cost;
            occupant.insert(target, k);
            match other {
                Some(o) => {
                    occupant.insert(source, o);
                }
                None => {
                    occupant.remove(&source);
                }
            }
            if cur_cost < best_cost {
                best_cost = cur_cost;
                best_pos = placement.instr_pos.clone();
            }
        } else {
            // Revert.
            placement.instr_pos.insert(k, source);
            if let Some(o) = other {
                placement.instr_pos.insert(o, target);
            }
        }
        if step % 64 == 63 {
            temp *= 0.92;
        }
    }
    placement.instr_pos = best_pos;
    Ok(placement)
}

/// Repairs a healthy placement around a fabric mask's dead tiles.
///
/// The repair is a deterministic greedy pass (no annealing, no RNG), so
/// nested masks produce nested repairs: dead tiles are visited in
/// ascending row-major order; a displaced systolic instruction moves to
/// the nearest free live tile of its class (manhattan distance from the
/// dead tile, ties broken by row-major index); displaced temporal
/// instructions move, in `InstrKey` order, to the least-loaded live
/// dataflow tile. An empty mask returns the placement untouched.
///
/// # Errors
/// The same capacity errors as initial placement, computed against the
/// *live* tile counts.
pub fn repair_placement(
    mesh: &Mesh,
    exp: &Expansion,
    mut placement: Placement,
    dpe_slots: usize,
    mask: FabricMask,
) -> Result<Placement, ScheduleError> {
    if mask.is_empty() {
        return Ok(placement);
    }
    let dead = |c: MeshCoord| mask.pe_dead(mesh.tile_index(c));

    // Live-capacity checks before touching anything.
    let systolic: Vec<&crate::instr::MappedInstr> = exp.systolic_instrs().collect();
    for class in revel_dfg::FuClass::ALL {
        let needed = systolic.iter().filter(|i| i.class == class).count();
        let live = mesh
            .slots()
            .iter()
            .filter(|s| s.kind == PeKind::Systolic(class) && !dead(s.coord))
            .count();
        if needed > live {
            return Err(ScheduleError::NotEnoughPes { class, needed, available: live });
        }
    }
    let temporal: Vec<&crate::instr::MappedInstr> = exp.temporal_instrs().collect();
    let live_dpes: Vec<MeshCoord> =
        mesh.dataflow_slots().map(|s| s.coord).filter(|c| !dead(*c)).collect();
    if !temporal.is_empty() {
        if live_dpes.is_empty() {
            return Err(ScheduleError::NoDataflowPes { needed: temporal.len() });
        }
        let capacity = live_dpes.len() * dpe_slots;
        if temporal.len() > capacity {
            return Err(ScheduleError::TemporalOverflow { needed: temporal.len(), capacity });
        }
    }

    let mut occupant: HashMap<MeshCoord, InstrKey> = HashMap::new();
    for instr in &systolic {
        occupant.insert(placement.instr_pos[&instr.key], instr.key);
    }
    for idx in mask.dead_pe_indices() {
        if idx >= mesh.width() * mesh.height() {
            break;
        }
        let coord = mesh.tile_at(idx);
        match mesh.slot(coord).kind {
            PeKind::Systolic(class) => {
                let Some(k) = occupant.get(&coord).copied() else { continue };
                let target = mesh
                    .slots()
                    .iter()
                    .filter(|s| s.kind == PeKind::Systolic(class))
                    .filter(|s| !dead(s.coord) && !occupant.contains_key(&s.coord))
                    .min_by_key(|s| (mesh.manhattan(coord, s.coord), mesh.tile_index(s.coord)))
                    .map(|s| s.coord)
                    .expect("live capacity checked above");
                occupant.remove(&coord);
                occupant.insert(target, k);
                placement.instr_pos.insert(k, target);
            }
            PeKind::Dataflow => {
                placement.dpe_load.remove(&coord);
                let mut displaced: Vec<InstrKey> = temporal
                    .iter()
                    .filter(|i| placement.instr_pos[&i.key] == coord)
                    .map(|i| i.key)
                    .collect();
                displaced.sort();
                for k in displaced {
                    let target = live_dpes
                        .iter()
                        .filter(|t| placement.dpe_load.get(t).copied().unwrap_or(0) < dpe_slots)
                        .min_by_key(|t| {
                            (placement.dpe_load.get(t).copied().unwrap_or(0), mesh.tile_index(**t))
                        })
                        .copied()
                        .expect("live temporal capacity checked above");
                    placement.instr_pos.insert(k, target);
                    *placement.dpe_load.entry(target).or_insert(0) += 1;
                }
            }
        }
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::expand;
    use revel_dfg::{Dfg, OpCode, Region, RegionKind};
    use revel_fabric::LaneConfig;
    use revel_isa::{InPortId, OutPortId};

    fn mesh() -> Mesh {
        Mesh::for_lane(&LaneConfig::paper_default())
    }

    fn chain_region(n_ops: usize, unroll: usize) -> Region {
        let mut g = Dfg::new("chain");
        let mut v = g.input(InPortId(0));
        for i in 0..n_ops {
            let op = if i % 2 == 0 { OpCode::Add } else { OpCode::Mul };
            v = g.op(op, &[v, v]);
        }
        g.output(v, OutPortId(0));
        Region::new("chain", RegionKind::Systolic, g, unroll)
    }

    #[test]
    fn placement_assigns_all_instrs() {
        let exp = expand(&[chain_region(4, 2)]);
        let p = place(&mesh(), &exp, 32, 7, 2000).unwrap();
        assert_eq!(p.instr_pos.len(), 8);
        // Systolic tiles are exclusive.
        let mut seen = std::collections::HashSet::new();
        for c in p.instr_pos.values() {
            assert!(seen.insert(*c), "tile {c} assigned twice");
        }
    }

    #[test]
    fn placement_respects_fu_classes() {
        let exp = expand(&[chain_region(4, 1)]);
        let m = mesh();
        let p = place(&m, &exp, 32, 7, 1000).unwrap();
        for instr in &exp.instrs {
            let tile = m.slot(p.instr_pos[&instr.key]);
            assert_eq!(tile.kind, PeKind::Systolic(instr.class));
        }
    }

    #[test]
    fn too_many_instrs_rejected() {
        // 13 multiplies x 1 > 9 multiplier tiles.
        let mut g = Dfg::new("big");
        let a = g.input(InPortId(0));
        let mut v = a;
        for _ in 0..13 {
            v = g.op(OpCode::Mul, &[v, a]);
        }
        g.output(v, OutPortId(0));
        let exp = expand(&[Region::systolic("big", g, 1)]);
        let err = place(&mesh(), &exp, 32, 7, 100).unwrap_err();
        assert!(matches!(err, ScheduleError::NotEnoughPes { .. }));
    }

    #[test]
    fn temporal_goes_to_dpes() {
        let mut g = Dfg::new("t");
        let a = g.input(InPortId(0));
        let r = g.op(OpCode::Recip, &[a]);
        let s = g.op(OpCode::Mul, &[r, r]);
        g.output(s, OutPortId(0));
        let exp = expand(&[Region::temporal("t", g)]);
        let m = mesh();
        let p = place(&m, &exp, 32, 7, 0).unwrap();
        for instr in &exp.instrs {
            assert_eq!(m.slot(p.instr_pos[&instr.key]).kind, PeKind::Dataflow);
        }
        assert_eq!(p.dpe_load.values().sum::<usize>(), 2);
    }

    #[test]
    fn temporal_overflow_rejected() {
        let mut g = Dfg::new("huge");
        let a = g.input(InPortId(0));
        let mut v = a;
        for _ in 0..40 {
            v = g.op(OpCode::Add, &[v, a]);
        }
        g.output(v, OutPortId(0));
        let exp = expand(&[Region::temporal("huge", g)]);
        let err = place(&mesh(), &exp, 32, 7, 0).unwrap_err();
        assert!(matches!(err, ScheduleError::TemporalOverflow { .. }));
    }

    #[test]
    fn annealing_improves_or_keeps_cost() {
        let exp = expand(&[chain_region(6, 2)]);
        let m = mesh();
        let init = place(&m, &exp, 32, 7, 0).unwrap();
        let annealed = place(&m, &exp, 32, 7, 4000).unwrap();
        let cost = |p: &Placement| -> i64 {
            exp.edges
                .iter()
                .map(|e| {
                    let (a, b) = edge_coords(&m, p, e);
                    m.manhattan(a, b) as i64
                })
                .sum()
        };
        assert!(cost(&annealed) <= cost(&init));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let exp = expand(&[chain_region(5, 2)]);
        let m = mesh();
        let a = place(&m, &exp, 32, 42, 3000).unwrap();
        let b = place(&m, &exp, 32, 42, 3000).unwrap();
        assert_eq!(a.instr_pos, b.instr_pos);
    }
}
