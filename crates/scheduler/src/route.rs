//! Negotiated-congestion routing (Pathfinder-style) of dependences through
//! the circuit-switched mesh.
//!
//! Each systolic dependence needs a dedicated path; temporal dependences
//! may time-multiplex links. The router repeatedly routes every edge by
//! cheapest path, then raises the cost of over-subscribed links and
//! retries, converging to (near) conflict-free dedicated routes. Residual
//! sharing is reported and becomes an initiation-interval penalty, since a
//! shared circuit-switched link serializes its users.

use crate::instr::Expansion;
use crate::place::{edge_coords, Placement};
use crate::schedule::ScheduleError;
use revel_fabric::{FabricMask, Mesh, MeshCoord, MeshLink};
use std::collections::{BinaryHeap, HashMap};

/// Summary statistics of a routed configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteStats {
    /// Total hops across all routed edges (per-firing network energy).
    pub total_hops: u32,
    /// Worst-case number of *dedicated* (systolic) edges sharing one link.
    /// 1 means perfectly circuit-switched; >1 costs II.
    pub max_link_sharing: u32,
    /// Number of router iterations used.
    pub iterations: u32,
}

/// Result of routing: one path per edge (parallel to `exp.edges`).
#[derive(Debug, Clone)]
pub struct Routing {
    /// Links traversed by each edge, in order. Empty when source and
    /// destination tiles coincide.
    pub edge_paths: Vec<Vec<MeshLink>>,
    /// Stats.
    pub stats: RouteStats,
}

#[derive(PartialEq)]
struct QueueEntry {
    cost: f64,
    coord: MeshCoord,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on cost.
        other.cost.partial_cmp(&self.cost).unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn shortest_path(
    mesh: &Mesh,
    from: MeshCoord,
    to: MeshCoord,
    link_cost: &HashMap<MeshLink, f64>,
    mask: FabricMask,
) -> Option<Vec<MeshLink>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut dist: HashMap<MeshCoord, f64> = HashMap::new();
    let mut prev: HashMap<MeshCoord, MeshCoord> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(from, 0.0);
    heap.push(QueueEntry { cost: 0.0, coord: from });
    while let Some(QueueEntry { cost, coord }) = heap.pop() {
        if coord == to {
            break;
        }
        if cost > *dist.get(&coord).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for n in mesh.neighbors(coord) {
            // Dead links are severed in both directions. Dead *PEs* keep
            // their mesh switch (routing through a dead tile is allowed):
            // the circuit-switched network is a separate structure from
            // the FU datapath, so a stuck FU does not cut the crossbar.
            if mesh.link_bit(coord, n).is_some_and(|b| mask.link_dead(b)) {
                continue;
            }
            let link = MeshLink { from: coord, to: n };
            let lc = 1.0 + link_cost.get(&link).copied().unwrap_or(0.0);
            let nd = cost + lc;
            if nd < *dist.get(&n).unwrap_or(&f64::INFINITY) {
                dist.insert(n, nd);
                prev.insert(n, coord);
                heap.push(QueueEntry { cost: nd, coord: n });
            }
        }
    }
    // Reconstruct. On a healthy mesh the grid is connected, so Dijkstra
    // always reaches `to`; dead links can disconnect it, which surfaces
    // as `None` (the caller reports `ScheduleError::Unroutable`).
    let mut path = Vec::new();
    let mut cur = to;
    while cur != from {
        let p = *prev.get(&cur)?;
        path.push(MeshLink { from: p, to: cur });
        cur = p;
    }
    path.reverse();
    Some(path)
}

/// Routes every edge of the expansion with a fabric mask's dead links
/// excluded. `max_iterations` bounds the negotiation rounds; residual link
/// sharing is reported in [`RouteStats::max_link_sharing`]. The healthy
/// schedule passes [`FabricMask::HEALTHY`] — an empty mask and a degraded
/// one share this single code path, so an empty mask is byte-identical to
/// the healthy routing by construction.
///
/// # Errors
/// [`ScheduleError::Unroutable`] when dead links disconnect a producer
/// tile from its consumer (impossible for an empty mask: the grid is
/// connected).
pub fn route_degraded(
    mesh: &Mesh,
    exp: &Expansion,
    placement: &Placement,
    max_iterations: u32,
    mask: FabricMask,
) -> Result<Routing, ScheduleError> {
    let mut history: HashMap<MeshLink, f64> = HashMap::new();
    let mut paths: Vec<Vec<MeshLink>> = vec![Vec::new(); exp.edges.len()];
    let mut stats = RouteStats::default();

    for iter in 0..max_iterations.max(1) {
        stats.iterations = iter + 1;
        // Route all edges with current costs.
        let mut usage: HashMap<MeshLink, u32> = HashMap::new();
        for (i, edge) in exp.edges.iter().enumerate() {
            let (from, to) = edge_coords(mesh, placement, edge);
            // Present-congestion cost: history plus current usage this round.
            let mut cost = history.clone();
            for (l, u) in &usage {
                *cost.entry(*l).or_insert(0.0) += *u as f64 * 0.5;
            }
            let path = shortest_path(mesh, from, to, &cost, mask)
                .ok_or(ScheduleError::Unroutable { from, to })?;
            for l in &path {
                if edge.needs_dedicated_links() {
                    *usage.entry(*l).or_insert(0) += 1;
                }
            }
            paths[i] = path;
        }
        let overused: Vec<(MeshLink, u32)> =
            usage.iter().filter(|&(_, &u)| u > 1).map(|(l, u)| (*l, *u)).collect();
        let max_sharing = usage.values().copied().max().unwrap_or(1).max(1);
        stats.max_link_sharing = max_sharing;
        if overused.is_empty() {
            break;
        }
        // Raise history cost on over-subscribed links and retry.
        for (l, u) in overused {
            *history.entry(l).or_insert(0.0) += u as f64;
        }
    }
    stats.total_hops = paths.iter().map(|p| p.len() as u32).sum();
    Ok(Routing { edge_paths: paths, stats })
}

/// Total hops per firing of a particular region.
pub fn region_hops(exp: &Expansion, routing: &Routing, region: usize) -> u32 {
    exp.edges
        .iter()
        .zip(&routing.edge_paths)
        .filter(|(e, _)| e.region == region)
        .map(|(_, p)| p.len() as u32)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::expand;
    use crate::place::place;
    use revel_dfg::{Dfg, OpCode, Region};
    use revel_fabric::LaneConfig;
    use revel_isa::{InPortId, OutPortId};

    fn setup(unroll: usize) -> (Mesh, Expansion, Placement) {
        let mut g = Dfg::new("g");
        let a = g.input(InPortId(0));
        let b = g.input(InPortId(1));
        let m = g.op(OpCode::Mul, &[a, b]);
        let s = g.op(OpCode::Add, &[m, b]);
        g.output(s, OutPortId(0));
        let mesh = Mesh::for_lane(&LaneConfig::paper_default());
        let exp = expand(&[Region::systolic("g", g, unroll)]);
        let p = place(&mesh, &exp, 32, 11, 3000).unwrap();
        (mesh, exp, p)
    }

    #[test]
    fn paths_connect_endpoints() {
        let (mesh, exp, p) = setup(2);
        let r = route_degraded(&mesh, &exp, &p, 8, FabricMask::HEALTHY).unwrap();
        for (edge, path) in exp.edges.iter().zip(&r.edge_paths) {
            let (from, to) = edge_coords(&mesh, &p, edge);
            if from == to {
                assert!(path.is_empty());
                continue;
            }
            assert_eq!(path.first().unwrap().from, from);
            assert_eq!(path.last().unwrap().to, to);
            for w in path.windows(2) {
                assert_eq!(w[0].to, w[1].from, "path is contiguous");
            }
        }
    }

    #[test]
    fn small_graph_routes_conflict_free() {
        let (mesh, exp, p) = setup(1);
        let r = route_degraded(&mesh, &exp, &p, 8, FabricMask::HEALTHY).unwrap();
        assert_eq!(r.stats.max_link_sharing, 1, "dedicated links must not be shared");
    }

    #[test]
    fn hops_at_least_manhattan() {
        let (mesh, exp, p) = setup(2);
        let r = route_degraded(&mesh, &exp, &p, 8, FabricMask::HEALTHY).unwrap();
        for (edge, path) in exp.edges.iter().zip(&r.edge_paths) {
            let (from, to) = edge_coords(&mesh, &p, edge);
            assert!(path.len() as u32 >= mesh.manhattan(from, to));
        }
    }

    #[test]
    fn region_hop_totals() {
        let (mesh, exp, p) = setup(1);
        let r = route_degraded(&mesh, &exp, &p, 8, FabricMask::HEALTHY).unwrap();
        assert_eq!(region_hops(&exp, &r, 0), r.stats.total_hops);
    }
}
