use revel_dfg::{FuClass, Node, NodeId, OpCode, Region, RegionKind};
use revel_isa::{InPortId, OutPortId};

/// Identity of one mapped instruction: a node of a region's DFG in one
/// unroll replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstrKey {
    /// Index of the region in the scheduled configuration.
    pub region: usize,
    /// The DFG node.
    pub node: NodeId,
    /// Which unroll replica (0 for scalar regions).
    pub replica: usize,
}

/// A placeable instruction extracted from a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedInstr {
    /// Identity.
    pub key: InstrKey,
    /// FU class required.
    pub class: FuClass,
    /// True if the instruction executes on a dataflow (temporal) PE.
    pub temporal: bool,
    /// FU pipeline latency.
    pub latency: u32,
    /// FU initiation interval.
    pub ii: u32,
}

/// One endpoint of a routed dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// A mapped instruction.
    Instr(InstrKey),
    /// An input port (stream injection point).
    InPort(InPortId),
    /// An output port (stream ejection point).
    OutPort(OutPortId),
}

/// A dependence to be routed through the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producer endpoint.
    pub from: Endpoint,
    /// Consumer endpoint.
    pub to: Endpoint,
    /// Region the edge belongs to.
    pub region: usize,
    /// True if the edge belongs to a temporal region (time-multiplexed
    /// links are allowed on temporal routes).
    pub temporal: bool,
}

impl Edge {
    /// True when one endpoint is a vector port. Ports reach the mesh over
    /// dedicated wide data buses (Fig. 13), so port-adjacent hops are not
    /// exclusively-owned circuit-switched links; only PE-to-PE dependences
    /// contend for dedicated links.
    pub fn is_port_edge(&self) -> bool {
        matches!(self.from, Endpoint::InPort(_)) || matches!(self.to, Endpoint::OutPort(_))
    }

    /// True if the edge needs a dedicated (exclusive) mesh path.
    pub fn needs_dedicated_links(&self) -> bool {
        !self.temporal && !self.is_port_edge()
    }
}

/// The flattened view of a configuration: instructions + edges.
#[derive(Debug, Clone, Default)]
pub struct Expansion {
    /// All placeable instructions.
    pub instrs: Vec<MappedInstr>,
    /// All dependences to route.
    pub edges: Vec<Edge>,
}

/// Expands regions into placeable instructions and routable edges.
///
/// Systolic regions replicate their datapath `unroll` times (vectorization);
/// temporal regions stay scalar. Input/Output/Const nodes do not occupy PEs:
/// ports are fixed injection/ejection tiles and constants are configured
/// registers.
pub fn expand(regions: &[Region]) -> Expansion {
    let mut exp = Expansion::default();
    for (r, region) in regions.iter().enumerate() {
        let temporal = region.kind == RegionKind::Temporal;
        let replicas = region.unroll;
        for replica in 0..replicas {
            for (id, node) in region.dfg.iter() {
                let key = InstrKey { region: r, node: id, replica };
                match node {
                    Node::Op { op, args } => {
                        exp.instrs.push(MappedInstr {
                            key,
                            class: op.fu_class(),
                            temporal,
                            latency: op.latency(),
                            ii: op.initiation_interval(),
                        });
                        for a in args {
                            if let Some(e) = edge_from(region, r, replica, *a, key, temporal) {
                                exp.edges.push(e);
                            }
                        }
                    }
                    Node::Accum { arg, .. } | Node::AccumVec { arg, .. } => {
                        exp.instrs.push(MappedInstr {
                            key,
                            class: FuClass::Adder,
                            temporal,
                            latency: OpCode::Add.latency(),
                            ii: 1,
                        });
                        if let Some(e) = edge_from(region, r, replica, *arg, key, temporal) {
                            exp.edges.push(e);
                        }
                    }
                    Node::Output { arg, port } => {
                        if let Some(from) = producer_endpoint(region, r, replica, *arg) {
                            exp.edges.push(Edge {
                                from,
                                to: Endpoint::OutPort(*port),
                                region: r,
                                temporal,
                            });
                        }
                    }
                    Node::Input { .. } | Node::Const { .. } => {}
                }
            }
        }
    }
    exp
}

fn edge_from(
    region: &Region,
    r: usize,
    replica: usize,
    arg: NodeId,
    to: InstrKey,
    temporal: bool,
) -> Option<Edge> {
    producer_endpoint(region, r, replica, arg).map(|from| Edge {
        from,
        to: Endpoint::Instr(to),
        region: r,
        temporal,
    })
}

/// Constants are baked into the consumer PE's configuration register, so
/// they produce no routed edge (`None`).
fn producer_endpoint(region: &Region, r: usize, replica: usize, arg: NodeId) -> Option<Endpoint> {
    match region.dfg.node(arg) {
        Node::Input { port, .. } => Some(Endpoint::InPort(*port)),
        Node::Const { .. } => None,
        _ => Some(Endpoint::Instr(InstrKey { region: r, node: arg, replica })),
    }
}

impl Expansion {
    /// Instructions that need dedicated systolic PEs.
    pub fn systolic_instrs(&self) -> impl Iterator<Item = &MappedInstr> {
        self.instrs.iter().filter(|i| !i.temporal)
    }

    /// Instructions destined for dataflow PEs.
    pub fn temporal_instrs(&self) -> impl Iterator<Item = &MappedInstr> {
        self.instrs.iter().filter(|i| i.temporal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revel_dfg::Dfg;

    fn region(unroll: usize, kind: RegionKind) -> Region {
        let mut g = Dfg::new("r");
        let a = g.input(InPortId(0));
        let b = g.input(InPortId(1));
        let m = g.op(OpCode::Mul, &[a, b]);
        let s = g.op(OpCode::Add, &[m, m]);
        g.output(s, OutPortId(0));
        Region::new("r", kind, g, unroll)
    }

    #[test]
    fn systolic_expansion_replicates() {
        let exp = expand(&[region(4, RegionKind::Systolic)]);
        assert_eq!(exp.instrs.len(), 8); // 2 instrs x 4 replicas
        assert_eq!(exp.systolic_instrs().count(), 8);
        assert_eq!(exp.temporal_instrs().count(), 0);
        // Edges per replica: a->mul, b->mul, mul->add (x2 fanin), add->out.
        assert_eq!(exp.edges.len(), 5 * 4);
    }

    #[test]
    fn temporal_expansion_replicates_like_systolic() {
        // Tagged-dataflow fabrics replicate vectorized datapaths across
        // instruction slots, so unroll multiplies temporal instructions.
        let exp = expand(&[region(4, RegionKind::Temporal)]);
        assert_eq!(exp.instrs.len(), 8);
        assert!(exp.instrs.iter().all(|i| i.temporal));
    }

    #[test]
    fn multi_region_indices() {
        let exp = expand(&[region(1, RegionKind::Systolic), region(1, RegionKind::Temporal)]);
        assert!(exp.instrs.iter().any(|i| i.key.region == 0));
        assert!(exp.instrs.iter().any(|i| i.key.region == 1));
    }

    #[test]
    fn port_endpoints_present() {
        let exp = expand(&[region(1, RegionKind::Systolic)]);
        assert!(exp.edges.iter().any(|e| matches!(e.from, Endpoint::InPort(_))));
        assert!(exp.edges.iter().any(|e| matches!(e.to, Endpoint::OutPort(_))));
    }
}
