//! # revel-scheduler — the spatial architecture compiler backend
//!
//! Maps the computation graphs of all concurrent program regions onto a
//! REVEL lane's hybrid systolic-dataflow mesh, mirroring §VI of *"A Hybrid
//! Systolic-Dataflow Architecture for Inductive Matrix Algorithms"* (HPCA
//! 2020):
//!
//! * instructions → PEs via **simulated-annealing placement** (the paper
//!   adapts a hybrid scheduling heuristic to simulated annealing);
//! * dependences → the circuit-switched mesh via **negotiated-congestion
//!   routing** in the style of Pathfinder;
//! * **timing extraction**: per-region pipeline latency (FU latencies plus
//!   routed network hops), initiation interval, and the delay-FIFO depth
//!   needed to equalize systolic operand paths.
//!
//! All concurrent regions of a configuration are mapped simultaneously so
//! they can coexist on the fabric, which is what enables inter-region
//! (inductive) parallelism at runtime.
//!
//! ```
//! use revel_dfg::{Dfg, OpCode, Region};
//! use revel_fabric::{LaneConfig, Mesh};
//! use revel_isa::{InPortId, OutPortId};
//! use revel_scheduler::SpatialScheduler;
//!
//! let mut g = Dfg::new("axpy");
//! let a = g.input(InPortId(0));
//! let x = g.input(InPortId(1));
//! let ax = g.op(OpCode::Mul, &[a, x]);
//! g.output(ax, OutPortId(0));
//! let region = Region::systolic("inner", g, 4);
//!
//! let mesh = Mesh::for_lane(&LaneConfig::paper_default());
//! let schedule = SpatialScheduler::new(mesh).schedule(&[region]).unwrap();
//! assert!(schedule.regions[0].latency >= 4); // >= the multiply latency
//! assert_eq!(schedule.regions[0].ii, 1);     // perfectly pipelined
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod instr;
mod place;
mod route;
mod schedule;

pub use instr::{InstrKey, MappedInstr};
pub use route::RouteStats;
pub use schedule::{FabricSchedule, RegionSchedule, ScheduleError, SpatialScheduler};
