//! Property-based tests for the spatial scheduler: random small region
//! sets either schedule with sound timing or fail with a resource error —
//! never panic, never produce impossible schedules.

use proptest::prelude::*;
use revel_dfg::{Dfg, OpCode, Region, RegionKind};
use revel_fabric::{LaneConfig, Mesh};
use revel_isa::{InPortId, OutPortId};
use revel_scheduler::{ScheduleError, SpatialScheduler};

/// A random chain-with-fanin DFG of `n_ops` operations.
fn arb_region(max_ops: usize) -> impl Strategy<Value = Region> {
    (
        1usize..=max_ops,
        proptest::collection::vec(0usize..3, max_ops),
        1usize..=4,
        any::<bool>(),
    )
        .prop_map(|(n_ops, kinds, unroll, temporal)| {
            let mut g = Dfg::new("rand");
            let a = g.input(InPortId(0));
            let b = g.input(InPortId(1));
            let mut v = a;
            for k in kinds.iter().take(n_ops) {
                let op = match k {
                    0 => OpCode::Add,
                    1 => OpCode::Mul,
                    _ => OpCode::Sub,
                };
                v = g.op(op, &[v, b]);
            }
            g.output(v, OutPortId(0));
            let kind = if temporal { RegionKind::Temporal } else { RegionKind::Systolic };
            Region::new("rand", kind, g, unroll)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scheduling is total: success with sound timing, or a typed error.
    #[test]
    fn schedule_total_and_sound(region in arb_region(8), seed in 0u64..1000) {
        let mesh = Mesh::for_lane(&LaneConfig::paper_default());
        let s = SpatialScheduler::new(mesh).with_seed(seed).with_sa_iterations(300);
        match s.schedule(&[region.clone()]) {
            Ok(sched) => {
                let rs = &sched.regions[0];
                prop_assert!(rs.latency >= 1);
                prop_assert!(rs.ii >= 1);
                // Latency at least the DFG's FU critical path.
                prop_assert!(rs.latency >= region.dfg.critical_path_latency());
                // Every mapped instruction has a placement.
                prop_assert_eq!(
                    sched.placement.len(),
                    region.mapped_instructions()
                );
            }
            Err(
                ScheduleError::NotEnoughPes { .. }
                | ScheduleError::TemporalOverflow { .. }
                | ScheduleError::NoDataflowPes { .. },
            ) => {}
        }
    }

    /// Systolic placements are exclusive: no two instructions share a tile.
    #[test]
    fn systolic_tiles_exclusive(region in arb_region(5), seed in 0u64..100) {
        prop_assume!(region.kind == RegionKind::Systolic);
        let mesh = Mesh::for_lane(&LaneConfig::paper_default());
        let s = SpatialScheduler::new(mesh).with_seed(seed).with_sa_iterations(200);
        if let Ok(sched) = s.schedule(&[region]) {
            let mut seen = std::collections::HashSet::new();
            for coord in sched.placement.values() {
                prop_assert!(seen.insert(*coord), "tile {coord} shared");
            }
        }
    }

    /// Determinism: the same seed gives the same schedule.
    #[test]
    fn deterministic(region in arb_region(6), seed in 0u64..50) {
        let mesh = Mesh::for_lane(&LaneConfig::paper_default());
        let a = SpatialScheduler::new(mesh.clone())
            .with_seed(seed)
            .with_sa_iterations(500)
            .schedule(&[region.clone()]);
        let b = SpatialScheduler::new(mesh)
            .with_seed(seed)
            .with_sa_iterations(500)
            .schedule(&[region]);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.regions, y.regions);
                prop_assert_eq!(x.placement, y.placement);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "nondeterministic success/failure"),
        }
    }
}
