//! Property-style tests for the spatial scheduler: random small region
//! sets either schedule with sound timing or fail with a resource error —
//! never panic, never produce impossible schedules.
//!
//! Randomized-but-deterministic via the seeded `revel_isa::Rng` (the
//! workspace builds with no external crates, so `proptest` is unavailable).

use revel_dfg::{Dfg, OpCode, Region, RegionKind};
use revel_fabric::{LaneConfig, Mesh};
use revel_isa::{InPortId, OutPortId, Rng};
use revel_scheduler::{ScheduleError, SpatialScheduler};

/// A random chain-with-fanin DFG of up to `max_ops` operations.
fn arb_region(r: &mut Rng, max_ops: usize) -> Region {
    let n_ops = 1 + r.gen_index(max_ops);
    let unroll = 1 + r.gen_index(4);
    let temporal = r.gen_bool();
    let mut g = Dfg::new("rand");
    let a = g.input(InPortId(0));
    let b = g.input(InPortId(1));
    let mut v = a;
    for _ in 0..n_ops {
        let op = match r.gen_index(3) {
            0 => OpCode::Add,
            1 => OpCode::Mul,
            _ => OpCode::Sub,
        };
        v = g.op(op, &[v, b]);
    }
    g.output(v, OutPortId(0));
    let kind = if temporal { RegionKind::Temporal } else { RegionKind::Systolic };
    Region::new("rand", kind, g, unroll)
}

/// Scheduling is total: success with sound timing, or a typed error.
#[test]
fn schedule_total_and_sound() {
    let mut r = Rng::seed_from_u64(0x5C4E_D001);
    for case in 0..64 {
        let region = arb_region(&mut r, 8);
        let seed = r.gen_range_i64(0, 1000) as u64;
        let mesh = Mesh::for_lane(&LaneConfig::paper_default());
        let s = SpatialScheduler::new(mesh).with_seed(seed).with_sa_iterations(300);
        match s.schedule(std::slice::from_ref(&region)) {
            Ok(sched) => {
                let rs = &sched.regions[0];
                assert!(rs.latency >= 1, "case {case}");
                assert!(rs.ii >= 1, "case {case}");
                // Latency at least the DFG's FU critical path.
                assert!(rs.latency >= region.dfg.critical_path_latency(), "case {case}");
                // Every mapped instruction has a placement.
                assert_eq!(sched.placement.len(), region.mapped_instructions(), "case {case}");
            }
            Err(
                ScheduleError::NotEnoughPes { .. }
                | ScheduleError::TemporalOverflow { .. }
                | ScheduleError::NoDataflowPes { .. },
            ) => {}
            Err(e @ ScheduleError::Unroutable { .. }) => {
                panic!("healthy mesh can never be unroutable: {e}")
            }
        }
    }
}

/// Systolic placements are exclusive: no two instructions share a tile.
#[test]
fn systolic_tiles_exclusive() {
    let mut r = Rng::seed_from_u64(0x5C4E_D002);
    let mut checked = 0;
    for case in 0..64 {
        let region = arb_region(&mut r, 5);
        let seed = r.gen_range_i64(0, 100) as u64;
        if region.kind != RegionKind::Systolic {
            continue;
        }
        let mesh = Mesh::for_lane(&LaneConfig::paper_default());
        let s = SpatialScheduler::new(mesh).with_seed(seed).with_sa_iterations(200);
        if let Ok(sched) = s.schedule(&[region]) {
            let mut seen = std::collections::HashSet::new();
            for coord in sched.placement.values() {
                assert!(seen.insert(*coord), "case {case}: tile {coord} shared");
            }
            checked += 1;
        }
    }
    assert!(checked > 0, "no systolic region ever scheduled");
}

/// Determinism: the same seed gives the same schedule.
#[test]
fn deterministic() {
    let mut r = Rng::seed_from_u64(0x5C4E_D003);
    for case in 0..32 {
        let region = arb_region(&mut r, 6);
        let seed = r.gen_range_i64(0, 50) as u64;
        let mesh = Mesh::for_lane(&LaneConfig::paper_default());
        let a = SpatialScheduler::new(mesh.clone())
            .with_seed(seed)
            .with_sa_iterations(500)
            .schedule(std::slice::from_ref(&region));
        let b =
            SpatialScheduler::new(mesh).with_seed(seed).with_sa_iterations(500).schedule(&[region]);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.regions, y.regions, "case {case}");
                assert_eq!(x.placement, y.placement, "case {case}");
            }
            (Err(_), Err(_)) => {}
            _ => panic!("case {case}: nondeterministic success/failure"),
        }
    }
}
