//! End-to-end persistence through the engine: a run lands on disk, a
//! (simulated) restart serves it back without re-simulating, and corrupt
//! tier files degrade to counted cold starts — never panics.
//!
//! The disk tier is process-global state (like the engine caches), so
//! the whole journey lives in one test: phases share the tier
//! deliberately and in order.

use revel_compiler::BuildCfg;
use revel_core::engine::persist::{PersistedRun, PersistentTier};
use revel_core::engine::{self, Served};
use revel_core::workloads::run_workload_with;
use revel_core::Bench;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("revel-engine-persist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disk_tier_round_trips_warm_starts_and_survives_corruption() {
    // Phase 1: a simulated run is appended to the tier.
    let dir_a = tmp_dir("a");
    let warm = engine::enable_persistence(&dir_a).expect("enable");
    assert_eq!(warm.entries, 0, "fresh directory starts cold");
    assert!(warm.cold_starts.is_empty());
    let solver = Bench::Solver { n: 12 };
    let cfg = BuildCfg::revel(1);
    let served = solver.run_served(&cfg, None).expect("runs");
    let solver_run = match served {
        Served::Run(run) => run,
        Served::Disk(_) => panic!("a cold key cannot be served from disk"),
    };
    engine::persist_snapshot().expect("snapshot");
    // The snapshot is readable by a *new* tier instance (what a restarted
    // process would open) and holds exactly the run's persisted surface.
    let fp = engine::key_fingerprint(solver, &cfg, false);
    let (tier, reopen) = PersistentTier::open(&dir_a).expect("reopen");
    assert_eq!(reopen.entries, 1);
    let entry = tier.lookup(fp).expect("the simulated run must be on disk");
    assert_eq!(entry.cycles, solver_run.cycles);
    assert_eq!(entry.commands_issued, solver_run.report.commands_issued);
    assert_eq!(entry.canonical_text, solver_run.report.canonical_text());
    drop(tier);

    // Phase 2: warm restart. Pre-populate a fresh tier with a key this
    // process has never put in the memory cache, then point the engine at
    // it — the next request must be answered from disk, before any
    // simulation, and counted as a disk hit (not a memory hit or miss).
    let fft = Bench::Fft { n: 64 };
    let fft_full =
        run_workload_with(fft.workload().as_ref(), &cfg, cfg.sim_options()).expect("reference run");
    let fft_fp = engine::key_fingerprint(fft, &cfg, false);
    let dir_b = tmp_dir("b");
    {
        let (mut tier, _) = PersistentTier::open(&dir_b).expect("open b");
        tier.append(
            fft_fp,
            &PersistedRun {
                cycles: fft_full.cycles,
                commands_issued: fft_full.report.commands_issued,
                verified: fft_full.verified.clone(),
                canonical_text: fft_full.report.canonical_text(),
            },
        )
        .expect("append");
    }
    let warm = engine::enable_persistence(&dir_b).expect("re-enable");
    assert_eq!(warm.entries, 1, "the predecessor's entry is recovered");
    let before = engine::stats();
    assert_eq!(before.warm_start_entries, 1);
    let served = fft.run_served(&cfg, None).expect("served");
    let after = engine::stats();
    match served {
        Served::Disk(run) => {
            assert_eq!(run.cycles, fft_full.cycles, "disk must serve the true result");
            assert!(run.verified.is_ok());
            assert_eq!(run.canonical_text, fft_full.report.canonical_text());
        }
        Served::Run(_) => panic!("a warm-started key must be served from disk, not simulated"),
    }
    assert_eq!(after.disk_hits, before.disk_hits + 1, "the disk hit is counted");
    assert_eq!(after.misses, before.misses, "a disk hit is not a memory miss");

    // Phase 3: corruption degrades to a counted cold start.
    let dir_c = tmp_dir("c");
    fs::create_dir_all(&dir_c).expect("mkdir");
    fs::write(dir_c.join("segment.log"), b"garbage, not a tier file").expect("write");
    let warm = engine::enable_persistence(&dir_c).expect("corrupt tier still opens");
    assert_eq!(warm.entries, 0, "nothing serveable from a corrupt segment");
    assert_eq!(warm.cold_starts.len(), 1, "the corruption is surfaced as data");
    let stats = engine::stats();
    assert!(stats.disk_cold_starts >= 1, "cold starts are counted: {stats:?}");
    // The engine still works — the corrupt tier just starts cold.
    let served = fft.run_served(&cfg, None).expect("cold tier still serves");
    assert!(matches!(served, Served::Run(_)), "nothing on disk, so the key simulates");

    for dir in [dir_a, dir_b, dir_c] {
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn key_fingerprints_are_stable_and_distinct() {
    let cfg = BuildCfg::revel(1);
    let a = engine::key_fingerprint(Bench::Solver { n: 12 }, &cfg, false);
    let b = engine::key_fingerprint(Bench::Solver { n: 12 }, &cfg, false);
    assert_eq!(a, b, "same key, same fingerprint");
    let c = engine::key_fingerprint(Bench::Solver { n: 16 }, &cfg, false);
    assert_ne!(a, c, "different params, different fingerprint");
    let d =
        engine::key_fingerprint(Bench::Solver { n: 12 }, &BuildCfg::systolic_baseline(1), false);
    assert_ne!(a, d, "different arch, different fingerprint");
}
