//! # revel-core — the REVEL reproduction, assembled
//!
//! Top-level crate of the reproduction of *"A Hybrid Systolic-Dataflow
//! Architecture for Inductive Matrix Algorithms"* (HPCA 2020). It re-exports
//! the full stack and provides:
//!
//! * [`Bench`] — the seven evaluation kernels at Table V parameters, with
//!   every comparison point attached (REVEL and the two spatial baselines
//!   on the cycle-level simulator; DSP/CPU/GPU/ASIC as calibrated
//!   analytical models);
//! * [`experiments`] — one generator per paper table and figure, each
//!   returning a formatted [`report::Table`];
//! * [`engine`] — the parallel, memoized evaluation engine: a scoped-thread
//!   job pool with deterministic result ordering plus a process-wide run
//!   cache keyed by `(Bench, BuildCfg)`, shared by every figure generator
//!   and test suite;
//! * [`report`] — plain-text table rendering for the harness binaries.
//!
//! ```no_run
//! use revel_core::{Bench, Comparison};
//! let bench = Bench::cholesky_small();
//! let c = bench.compare().unwrap();
//! assert!(c.speedup_vs_dsp() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiments;
pub mod report;
mod suite;

pub use suite::{Bench, Comparison};

pub use revel_compiler as compiler;
pub use revel_dfg as dfg;
pub use revel_fabric as fabric;
pub use revel_isa as isa;
pub use revel_models as models;
pub use revel_scheduler as scheduler;
pub use revel_sim as sim;
pub use revel_verify as verify;
pub use revel_workloads as workloads;
