//! The evaluation suite: each kernel at Table V parameters with every
//! comparison point attached.

use revel_compiler::BuildCfg;
use revel_models::{asic, cpu, dsp, gpu};
use revel_sim::SimError;
use revel_workloads::{CentroFir, Cholesky, Fft, Gemm, Qr, Solver, Svd, Workload, WorkloadRun};

/// Jacobi sweeps used for the SVD benchmarks (the paper's `m` iteration
/// parameter; kept small so cycle-level simulation stays fast — all
/// platforms are modelled at the same sweep count, so ratios are unaffected).
pub const SVD_SWEEPS: usize = 2;

/// One benchmark: a kernel instance plus its analytical comparison models.
/// `Eq + Hash` so a `(Bench, BuildCfg)` pair can fingerprint a simulation
/// in the evaluation engine's run cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// Triangular solver, batch-1 on one lane (Table V).
    Solver {
        /// Matrix dimension.
        n: usize,
    },
    /// Cholesky decomposition.
    Cholesky {
        /// Matrix dimension.
        n: usize,
    },
    /// Householder QR.
    Qr {
        /// Matrix dimension.
        n: usize,
    },
    /// One-sided Jacobi SVD.
    Svd {
        /// Matrix dimension.
        n: usize,
    },
    /// Radix-2 FFT.
    Fft {
        /// Transform size.
        n: usize,
    },
    /// Dense GEMM (8 lanes).
    Gemm {
        /// Rows of A/C.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of B/C.
        p: usize,
    },
    /// Centro-symmetric FIR (8 lanes).
    Fir {
        /// Filter taps.
        taps: usize,
        /// Output samples.
        n: usize,
    },
}

impl Bench {
    /// The "small" suite (Table V bold small sizes).
    pub fn suite_small() -> Vec<Bench> {
        vec![
            Bench::Svd { n: 12 },
            Bench::Qr { n: 12 },
            Bench::Cholesky { n: 12 },
            Bench::Solver { n: 12 },
            Bench::Fft { n: 64 },
            Bench::Gemm { m: 12, k: 16, p: 64 },
            Bench::Fir { taps: 37, n: 1024 },
        ]
    }

    /// The "large" suite (Table V bold large sizes).
    pub fn suite_large() -> Vec<Bench> {
        vec![
            Bench::Svd { n: 32 },
            Bench::Qr { n: 32 },
            Bench::Cholesky { n: 32 },
            Bench::Solver { n: 32 },
            Bench::Fft { n: 1024 },
            Bench::Gemm { m: 48, k: 16, p: 64 },
            Bench::Fir { taps: 199, n: 1024 },
        ]
    }

    /// Shorthand constructors for doc examples and tests.
    pub fn cholesky_small() -> Bench {
        Bench::Cholesky { n: 12 }
    }

    /// Kernel name (figure labels).
    pub fn name(&self) -> &'static str {
        match self {
            Bench::Solver { .. } => "solver",
            Bench::Cholesky { .. } => "cholesky",
            Bench::Qr { .. } => "qr",
            Bench::Svd { .. } => "svd",
            Bench::Fft { .. } => "fft",
            Bench::Gemm { .. } => "gemm",
            Bench::Fir { .. } => "fir",
        }
    }

    /// Parameter string.
    pub fn params(&self) -> String {
        self.workload().params()
    }

    /// Lanes used in batch-1 mode. GEMM/FIR partition one problem across
    /// the lanes; Cholesky pipelines its outer iterations around the lane
    /// ring (Fig. 17). QR/SVD/Solver/FFT run one lane (the paper also
    /// rings QR across 8 lanes — future work here, see EXPERIMENTS.md).
    pub fn lanes(&self) -> usize {
        match self {
            Bench::Gemm { .. } | Bench::Fir { .. } | Bench::Cholesky { .. } => 8,
            _ => 1,
        }
    }

    /// The workload object (batch-1 semantics).
    pub fn workload(&self) -> Box<dyn Workload> {
        self.workload_seeded(1)
    }

    /// The workload object with a caller-chosen dataset seed. The seed
    /// changes only the input values, never the program structure: two
    /// seeds of the same cell must produce identical command streams, and
    /// — for obliviousness-certified programs — identical timing too.
    pub fn workload_seeded(&self, seed: u64) -> Box<dyn Workload> {
        match *self {
            Bench::Solver { n } => Box::new(Solver::new(n, seed)),
            Bench::Cholesky { n } => Box::new(Cholesky::parallel(n, seed)),
            Bench::Qr { n } => Box::new(Qr::new(n, seed)),
            Bench::Svd { n } => Box::new(Svd::new(n, SVD_SWEEPS, seed)),
            Bench::Fft { n } => Box::new(Fft::new(n, seed)),
            Bench::Gemm { m, k, p } => Box::new(Gemm::new(m, k, p, seed)),
            Bench::Fir { taps, n } => Box::new(CentroFir::new(taps, n, seed)),
        }
    }

    /// The workload object with batch semantics (one independent problem
    /// per lane; used by the Figure 20 batch-8 experiment).
    pub fn batch_workload(&self) -> Box<dyn Workload> {
        match *self {
            Bench::Cholesky { n } => Box::new(Cholesky::new(n, 1)),
            _ => self.workload(),
        }
    }

    /// True when [`Bench::batch_workload`] builds a different program than
    /// [`Bench::workload`] (kept in lockstep with the match above, so the
    /// run cache shares entries whenever the two builds are identical).
    pub(crate) fn batch_build_differs(&self) -> bool {
        matches!(self, Bench::Cholesky { .. })
    }

    /// FLOPs per invocation.
    pub fn flops(&self) -> u64 {
        self.workload().flops()
    }

    /// Ideal-ASIC cycles (Table IV).
    pub fn asic_cycles(&self) -> u64 {
        match *self {
            Bench::Solver { n } => asic::solver_cycles(n),
            Bench::Cholesky { n } => asic::cholesky_cycles(n),
            Bench::Qr { n } => asic::qr_cycles(n),
            Bench::Svd { n } => asic::svd_cycles(n, SVD_SWEEPS),
            Bench::Fft { n } => asic::fft_cycles(n),
            Bench::Gemm { m, k, p } => asic::gemm_cycles(m, k, p),
            Bench::Fir { taps, n } => asic::fir_cycles(n, taps),
        }
    }

    /// DSP-model cycles.
    pub fn dsp_cycles(&self) -> u64 {
        match *self {
            Bench::Solver { n } => dsp::solver_cycles(n),
            Bench::Cholesky { n } => dsp::cholesky_cycles(n),
            Bench::Qr { n } => dsp::qr_cycles(n),
            Bench::Svd { n } => dsp::svd_cycles(n, SVD_SWEEPS),
            Bench::Fft { n } => dsp::fft_cycles(n),
            Bench::Gemm { m, k, p } => dsp::gemm_cycles(m, k, p),
            Bench::Fir { taps, n } => dsp::fir_cycles(n, taps),
        }
    }

    /// CPU-model cycles (2.1 GHz domain).
    pub fn cpu_cycles(&self) -> u64 {
        match *self {
            Bench::Solver { n } => cpu::solver_cycles(n),
            Bench::Cholesky { n } => cpu::cholesky_mkl(n, 8),
            Bench::Qr { n } => cpu::qr_cycles(n),
            Bench::Svd { n } => cpu::svd_cycles(n, SVD_SWEEPS),
            Bench::Fft { n } => cpu::fft_cycles(n),
            Bench::Gemm { m, k, p } => cpu::gemm_cycles(m, k, p),
            Bench::Fir { taps, n } => cpu::fir_cycles(n, taps),
        }
    }

    /// GPU-model cycles (1.2 GHz domain).
    pub fn gpu_cycles(&self) -> u64 {
        let flops = self.flops();
        match *self {
            Bench::Solver { n } => gpu::solver_cycles(n, flops),
            Bench::Cholesky { n } => gpu::cholesky_cycles(n, flops),
            Bench::Qr { n } => gpu::qr_cycles(n, flops),
            Bench::Svd { n } => gpu::svd_cycles(n, SVD_SWEEPS, flops),
            Bench::Fft { .. } => gpu::fft_cycles(flops),
            Bench::Gemm { .. } => gpu::gemm_cycles(flops),
            Bench::Fir { .. } => gpu::fir_cycles(flops),
        }
    }

    /// Runs the kernel on a build configuration (verified), through the
    /// evaluation engine's process-wide run cache: the first call per
    /// `(bench, cfg)` simulates, repeats are free.
    ///
    /// # Errors
    /// Propagates simulator errors.
    pub fn run(&self, cfg: &BuildCfg) -> Result<WorkloadRun, SimError> {
        crate::engine::run_cached(*self, cfg, false)
    }

    /// [`Bench::run`] with a wall-clock deadline threaded into the
    /// simulator ([`revel_sim::SimOptions::wall_deadline`]): cache hits are
    /// served instantly regardless of the deadline, misses simulate under
    /// it, and a run the deadline cut short is returned as `timed_out`
    /// (with `deadline_expired` set) but never cached. This is the serving
    /// front-end's entry point for per-request deadlines.
    ///
    /// # Errors
    /// Propagates simulator errors.
    pub fn run_with_deadline(
        &self,
        cfg: &BuildCfg,
        deadline: Option<std::time::Instant>,
    ) -> Result<WorkloadRun, SimError> {
        crate::engine::run_cached_deadline(*self, cfg, false, deadline)
    }

    /// [`Bench::run_with_deadline`] with the engine's disk tier layered
    /// in: memory cache first, then the persistent tier (when
    /// [`crate::engine::enable_persistence`] is active), then simulation.
    /// A disk hit returns the persisted result surface of a previous
    /// process's run without simulating — the serving fleet's
    /// warm-restart path.
    ///
    /// # Errors
    /// Propagates simulator errors.
    pub fn run_served(
        &self,
        cfg: &BuildCfg,
        deadline: Option<std::time::Instant>,
    ) -> Result<crate::engine::Served, SimError> {
        crate::engine::run_served(*self, cfg, deadline)
    }

    /// [`Bench::run`] for the batch-semantics build (one independent
    /// problem per lane, Figure 20); shares cache entries with `run`
    /// whenever the batch build is identical.
    ///
    /// # Errors
    /// Propagates simulator errors.
    pub fn run_batch(&self, cfg: &BuildCfg) -> Result<WorkloadRun, SimError> {
        crate::engine::run_cached(*self, cfg, true)
    }

    /// Executes this bench once per dataset seed through the engine's
    /// batched replay path ([`crate::engine::run_batched`]): certified
    /// cells pay one timing walk plus N cheap functional replays;
    /// uncertified cells fall back to N full simulations.
    ///
    /// # Errors
    /// Propagates simulator errors.
    pub fn run_batched(
        &self,
        cfg: &BuildCfg,
        seeds: &[u64],
    ) -> Result<crate::engine::BatchRun, SimError> {
        crate::engine::run_batched(*self, cfg, seeds)
    }

    /// Builds the kernel for `cfg` and runs every static lint over it,
    /// including post-schedule legality, through the engine's lint cache.
    /// Empty result = clean.
    pub fn lint(&self, cfg: &BuildCfg) -> Vec<revel_verify::Diagnostic> {
        crate::engine::lint_cached(*self, cfg)
    }

    /// Runs REVEL and both spatial baselines, returning all comparisons
    /// (each run served by the evaluation engine's cache).
    ///
    /// # Errors
    /// Propagates simulator errors; panics (via `assert_ok`) if any run
    /// fails numerical verification.
    pub fn compare(&self) -> Result<Comparison, SimError> {
        crate::engine::compare_cached(*self)
    }
}

/// Measured + modelled results for one kernel.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The benchmark.
    pub bench: Bench,
    /// REVEL's verified run (cycles, breakdown, events).
    pub revel: WorkloadRun,
    /// Pure-systolic baseline cycles.
    pub systolic_cycles: u64,
    /// Tagged-dataflow baseline cycles.
    pub dataflow_cycles: u64,
}

impl Comparison {
    /// REVEL speedup over the DSP model (same 1.25 GHz clock).
    pub fn speedup_vs_dsp(&self) -> f64 {
        self.bench.dsp_cycles() as f64 / self.revel.cycles as f64
    }

    /// REVEL speedup over the CPU model, in *time* (different clocks).
    pub fn speedup_vs_cpu(&self) -> f64 {
        let cpu_ns = self.bench.cpu_cycles() as f64 / revel_models::CPU_CLOCK_GHZ;
        let revel_ns = self.revel.cycles as f64 / revel_models::ACCEL_CLOCK_GHZ;
        cpu_ns / revel_ns
    }

    /// REVEL speedup over the GPU model, in time.
    pub fn speedup_vs_gpu(&self) -> f64 {
        let gpu_ns = self.bench.gpu_cycles() as f64 / revel_models::GPU_CLOCK_GHZ;
        let revel_ns = self.revel.cycles as f64 / revel_models::ACCEL_CLOCK_GHZ;
        gpu_ns / revel_ns
    }

    /// REVEL speedup over the systolic baseline.
    pub fn speedup_vs_systolic(&self) -> f64 {
        self.systolic_cycles as f64 / self.revel.cycles as f64
    }

    /// REVEL speedup over the dataflow baseline.
    pub fn speedup_vs_dataflow(&self) -> f64 {
        self.dataflow_cycles as f64 / self.revel.cycles as f64
    }

    /// REVEL's fraction of ideal-ASIC performance.
    pub fn fraction_of_ideal(&self) -> f64 {
        self.bench.asic_cycles() as f64 / self.revel.cycles as f64
    }
}

/// Geometric mean helper. `None` for an empty set — an absent measurement
/// must never masquerade as a `0.0x` speedup.
pub(crate) fn geomean(vals: impl IntoIterator<Item = f64>) -> Option<f64> {
    let v: Vec<f64> = vals.into_iter().collect();
    if v.is_empty() {
        return None;
    }
    Some((v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_cover_all_kernels() {
        let names: Vec<&str> = Bench::suite_small().iter().map(|b| b.name()).collect();
        assert_eq!(names, ["svd", "qr", "cholesky", "solver", "fft", "gemm", "fir"]);
        assert_eq!(Bench::suite_large().len(), 7);
    }

    #[test]
    fn models_all_positive() {
        for b in Bench::suite_small() {
            assert!(b.asic_cycles() > 0, "{}", b.name());
            assert!(b.dsp_cycles() > 0);
            assert!(b.cpu_cycles() > 0);
            assert!(b.gpu_cycles() > 0);
            assert!(b.flops() > 0);
        }
    }

    #[test]
    fn cholesky_small_comparison_is_sane() {
        let c = Bench::cholesky_small().compare().unwrap();
        assert!(c.speedup_vs_dsp() > 1.0, "vs dsp {}", c.speedup_vs_dsp());
        assert!(c.speedup_vs_systolic() > 1.0);
        assert!(c.speedup_vs_dataflow() > 1.0);
        assert!(c.fraction_of_ideal() < 1.5);
    }

    #[test]
    fn geomean_works() {
        assert!((geomean([2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_empty_set_is_explicitly_absent() {
        // Not 0.0: a figure with no rows has no speedup, and "0.0x" would
        // read as "infinitely slower".
        assert_eq!(geomean([]), None);
    }

    #[test]
    fn repeated_comparisons_share_cached_runs() {
        let b = Bench::cholesky_small();
        let first = b.compare().unwrap();
        let before = crate::engine::stats();
        let second = b.compare().unwrap();
        let after = crate::engine::stats();
        assert_eq!(first.revel.cycles, second.revel.cycles);
        assert_eq!(after.misses, before.misses, "repeat comparison must not re-simulate");
        assert!(after.hits >= before.hits + 3, "all three arch runs served from cache");
    }
}
