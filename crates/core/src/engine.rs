//! The parallel, memoized evaluation engine.
//!
//! The paper's evaluation is a (workload × architecture × ablation) grid
//! in which many cells repeat across figures: Fig. 8/19/23/25/Tab. VII all
//! consume the same large-suite comparisons, and Fig. 20–24 re-simulate
//! overlapping configurations. Each cell is also embarrassingly parallel —
//! a cycle-level simulation touching only its own [`Machine`] — so this
//! module provides the two mechanisms the harness and test suites share:
//!
//! * a **run cache** keyed by a `(Bench, BuildCfg)` fingerprint (plus the
//!   batch-replication flag), so every distinct configuration is built,
//!   annealed (`Machine::run`'s 2000-iteration simulated-annealing spatial
//!   schedule), and simulated exactly once per process;
//! * a **scoped-thread job pool** ([`par_map`]) fanning independent cells
//!   across worker threads with *deterministic result ordering* — results
//!   land in per-item slots, so tables are byte-identical to a serial run
//!   regardless of `--jobs`.
//!
//! Determinism argument: the simulator is a pure function of
//! `(program, init, SimOptions)` — its only ambient input, the
//! `REVEL_SIM_DEBUG` variable, is read once per run and never changes
//! results below the clamp — so caching and reordering execution cannot
//! change any table cell. Workers only interleave *which* cell is computed
//! when; each cell's value and its position in the output are fixed.
//!
//! The cache lives for the process (`OnceLock`), so within one
//! `all_experiments` run or one test binary every repeated configuration
//! is a hit; [`stats`] exposes the hit/miss counters the report footer
//! prints.

use crate::suite::{Bench, Comparison};
use revel_compiler::BuildCfg;
use revel_sim::SimError;
use revel_workloads::{run_workload, WorkloadRun};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Cache key: one simulated configuration. `batch` distinguishes the
/// batch-replicated build of a kernel from its batch-1 build *only* for
/// kernels whose two builds differ (see [`Bench::batch_workload`]), so
/// identical programs share one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RunKey {
    bench: Bench,
    cfg: BuildCfg,
    batch: bool,
}

struct Engine {
    runs: Mutex<HashMap<RunKey, WorkloadRun>>,
    lints: Mutex<HashMap<(Bench, BuildCfg), Vec<revel_verify::Diagnostic>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    // Machine-cycle accounting across all *distinct* cached runs. Counted
    // at insert time (not at miss time): two workers racing on the same key
    // both simulate, but only the entry that lands in the cache is counted,
    // so the totals are deterministic for every --jobs setting.
    sim_cycles: AtomicU64,
    skipped_cycles: AtomicU64,
}

fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine {
        runs: Mutex::new(HashMap::new()),
        lints: Mutex::new(HashMap::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        sim_cycles: AtomicU64::new(0),
        skipped_cycles: AtomicU64::new(0),
    })
}

/// Worker-thread count: 0 means "auto" (one per available core).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker-thread count for [`par_map`]. `0` restores the default
/// (one worker per available core). Tables are byte-identical for every
/// setting; only wall-clock changes.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// The effective worker-thread count.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `items` on the engine's job pool, preserving order.
///
/// Scoped threads pull items off a shared index and write results into
/// per-item slots, so the output `Vec` is ordered exactly as `items`
/// regardless of scheduling. A panicking worker propagates its panic when
/// the scope joins (verification failures stay loud under parallelism).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_jobs(items, jobs(), f)
}

/// [`par_map`] with an explicit worker count (`1` = serial, no threads).
pub fn par_map_jobs<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // A worker panic is caught and re-thrown on the caller's thread with
    // its original payload (scope's own join panic would replace e.g. an
    // assertion message with "a scoped thread panicked").
    let panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => *slots[i].lock().expect("slot lock") = Some(r),
                    Err(payload) => {
                        let mut first = panic.lock().expect("panic slot");
                        if first.is_none() {
                            *first = Some(payload);
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = panic.into_inner().expect("panic slot") {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("worker filled slot"))
        .collect()
}

/// Runs `bench` under `cfg` through the run cache.
///
/// # Errors
/// Propagates simulator errors (never cached; they fail identically on
/// every attempt).
pub(crate) fn run_cached(
    bench: Bench,
    cfg: &BuildCfg,
    batch: bool,
) -> Result<WorkloadRun, SimError> {
    let key = RunKey { bench, cfg: *cfg, batch: batch && bench.batch_build_differs() };
    let e = engine();
    if let Some(run) = e.runs.lock().expect("run cache lock").get(&key) {
        e.hits.fetch_add(1, Ordering::Relaxed);
        return Ok(run.clone());
    }
    e.misses.fetch_add(1, Ordering::Relaxed);
    let workload = if key.batch { bench.batch_workload() } else { bench.workload() };
    let run = run_workload(workload.as_ref(), cfg)?;
    if let std::collections::hash_map::Entry::Vacant(v) =
        e.runs.lock().expect("run cache lock").entry(key)
    {
        e.sim_cycles.fetch_add(run.report.cycles, Ordering::Relaxed);
        e.skipped_cycles.fetch_add(run.report.stepper.skipped_cycles, Ordering::Relaxed);
        v.insert(run.clone());
    }
    Ok(run)
}

/// Runs REVEL and both spatial baselines for `bench` through the cache.
///
/// # Errors
/// Propagates simulator errors; panics (via `assert_ok`) if any run fails
/// numerical verification or timed out.
pub(crate) fn compare_cached(bench: Bench) -> Result<Comparison, SimError> {
    let lanes = bench.lanes();
    let revel = run_cached(bench, &BuildCfg::revel(lanes), false)?;
    revel.assert_ok(&format!("{} revel", bench.name()));
    let systolic = run_cached(bench, &BuildCfg::systolic_baseline(lanes), false)?;
    systolic.assert_ok(&format!("{} systolic", bench.name()));
    let dataflow = run_cached(bench, &BuildCfg::dataflow_baseline(lanes), false)?;
    dataflow.assert_ok(&format!("{} dataflow", bench.name()));
    Ok(Comparison {
        bench,
        revel,
        systolic_cycles: systolic.cycles,
        dataflow_cycles: dataflow.cycles,
    })
}

/// Lints `bench`'s build for `cfg` through the lint cache (the full
/// verifier re-runs the spatial scheduler, so repeats are worth memoizing
/// across the lint CLI and the test suites).
pub(crate) fn lint_cached(bench: Bench, cfg: &BuildCfg) -> Vec<revel_verify::Diagnostic> {
    let key = (bench, *cfg);
    let e = engine();
    if let Some(diags) = e.lints.lock().expect("lint cache lock").get(&key) {
        e.hits.fetch_add(1, Ordering::Relaxed);
        return diags.clone();
    }
    e.misses.fetch_add(1, Ordering::Relaxed);
    let built = bench.workload().build(cfg);
    let diags = revel_verify::Verifier::new().verify(&built.program, &cfg.machine_config());
    e.lints.lock().expect("lint cache lock").insert(key, diags.clone());
    diags
}

/// Cache counters for the report footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to simulate (or lint) from scratch.
    pub misses: u64,
    /// Distinct simulated configurations currently cached.
    pub run_entries: usize,
    /// Distinct linted configurations currently cached.
    pub lint_entries: usize,
    /// Machine cycles across all distinct cached runs (deterministic:
    /// counted once per cache entry regardless of worker interleaving).
    pub sim_cycles: u64,
    /// Of [`CacheStats::sim_cycles`], cycles the event-horizon kernel
    /// skipped rather than stepped (0 under `--reference-stepper`).
    pub skipped_cycles: u64,
}

impl CacheStats {
    /// Skipped cycles as a percentage of all simulated machine cycles.
    pub fn skipped_pct(&self) -> f64 {
        if self.sim_cycles == 0 {
            0.0
        } else {
            100.0 * self.skipped_cycles as f64 / self.sim_cycles as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "evaluation cache: {} hit(s), {} miss(es) ({} sim + {} lint entries)",
            self.hits, self.misses, self.run_entries, self.lint_entries
        )?;
        write!(
            f,
            "simulated {} machine cycles; {} stepped, {} skipped by the \
             event-horizon kernel ({:.1}%)",
            self.sim_cycles,
            self.sim_cycles - self.skipped_cycles,
            self.skipped_cycles,
            self.skipped_pct()
        )
    }
}

/// Snapshot of the engine's cache counters.
pub fn stats() -> CacheStats {
    let e = engine();
    CacheStats {
        hits: e.hits.load(Ordering::Relaxed),
        misses: e.misses.load(Ordering::Relaxed),
        run_entries: e.runs.lock().expect("run cache lock").len(),
        lint_entries: e.lints.lock().expect("lint cache lock").len(),
        sim_cycles: e.sim_cycles.load(Ordering::Relaxed),
        skipped_cycles: e.skipped_cycles.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_jobs(&items, 8, |i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_serial_and_parallel_agree() {
        let items: Vec<u64> = (0..33).collect();
        let f = |x: &u64| x.wrapping_mul(2654435761).rotate_left(7);
        assert_eq!(par_map_jobs(&items, 1, f), par_map_jobs(&items, 4, f));
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_jobs(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map_jobs(&[7u32], 4, |x| *x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "worker panic propagates")]
    fn par_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..8).collect();
        par_map_jobs(&items, 4, |i| {
            if *i == 5 {
                panic!("worker panic propagates");
            }
            *i
        });
    }

    #[test]
    fn run_cache_hits_on_repeat() {
        let b = Bench::Solver { n: 12 };
        let cfg = BuildCfg::revel(1);
        let first = run_cached(b, &cfg, false).expect("runs");
        let before = stats();
        let second = run_cached(b, &cfg, false).expect("runs");
        let after = stats();
        assert_eq!(first.cycles, second.cycles);
        assert!(after.hits > before.hits, "second lookup must hit: {before:?} -> {after:?}");
    }

    #[test]
    fn cycle_counters_track_distinct_runs() {
        let before = stats();
        let b = Bench::Gemm { m: 4, k: 4, p: 8 };
        let cfg = BuildCfg::revel(1);
        let run = run_cached(b, &cfg, false).expect("runs");
        let after = stats();
        // Lower bounds only: other tests in this binary run concurrently
        // and may add their own cycles.
        assert!(
            after.sim_cycles >= before.sim_cycles + run.cycles,
            "sim-cycle counter must grow by at least this run: {before:?} -> {after:?}"
        );
        assert!(after.skipped_cycles <= after.sim_cycles);
        assert!(after.skipped_pct() >= 0.0 && after.skipped_pct() <= 100.0);
        // A repeat is a hit and must not re-count cycles; assert indirectly
        // by checking the entry count didn't change for this key.
        let again = run_cached(b, &cfg, false).expect("runs");
        assert_eq!(run.cycles, again.cycles);
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let b = Bench::Solver { n: 12 };
        let revel = run_cached(b, &BuildCfg::revel(1), false).expect("runs");
        let systolic = run_cached(b, &BuildCfg::systolic_baseline(1), false).expect("runs");
        assert_ne!(revel.cycles, systolic.cycles, "different archs must not share an entry");
    }

    #[test]
    fn parallel_compare_matches_serial() {
        // The determinism claim the whole engine rests on: fanned-out,
        // cache-warmed comparisons equal fresh serial ones cycle-for-cycle.
        let benches = [Bench::Solver { n: 12 }, Bench::Fft { n: 64 }];
        let par = par_map_jobs(&benches, 2, |b| compare_cached(*b).expect("runs"));
        for (b, c) in benches.iter().zip(&par) {
            let serial = compare_cached(*b).expect("runs");
            assert_eq!(c.revel.cycles, serial.revel.cycles, "{}", b.name());
            assert_eq!(c.systolic_cycles, serial.systolic_cycles, "{}", b.name());
            assert_eq!(c.dataflow_cycles, serial.dataflow_cycles, "{}", b.name());
        }
    }
}
