//! One generator per paper table/figure. Each returns a [`Table`] so the
//! harness binaries (`crates/bench/src/bin/*`) just print them; the
//! integration tests assert the shapes (who wins, by roughly how much).

use crate::engine;
use crate::report::{pct, ratio, Table};
use crate::suite::{geomean, Bench, Comparison};
use revel_compiler::{AblationStep, BuildCfg};
use revel_fabric::{AreaBreakdown, CostModel, RelativePeArea};
use revel_models::{power, ACCEL_CLOCK_GHZ, CPU_CLOCK_GHZ, GPU_CLOCK_GHZ};
use revel_sim::CycleClass;

/// Runs the full comparison set for a suite, fanned across the evaluation
/// engine's job pool and served from its run cache: the first caller per
/// configuration simulates, every later figure gets cache hits. Result
/// order always matches `benches`.
pub fn run_comparisons(benches: &[Bench]) -> Vec<Comparison> {
    engine::par_map(benches, |b| b.compare().expect("bench runs"))
}

/// Formats a geomean at one decimal; "n/a" when the set was empty.
fn gm1(g: Option<f64>) -> String {
    g.map_or_else(|| "n/a".into(), |g| format!("{g:.1}"))
}

/// Formats a geomean at zero decimals; "n/a" when the set was empty.
fn gm0(g: Option<f64>) -> String {
    g.map_or_else(|| "n/a".into(), |g| format!("{g:.0}"))
}

/// Figure 1: percent of ideal (ASIC) performance for CPU, DSP, GPU.
pub fn fig01_percent_ideal() -> Table {
    let mut t = Table::new(
        "Figure 1: percent of ideal performance (CPU / DSP / GPU models)",
        &["kernel", "params", "cpu", "dsp", "gpu"],
    );
    for b in Bench::suite_large() {
        let ideal_ns = b.asic_cycles() as f64 / ACCEL_CLOCK_GHZ;
        let cpu_ns = b.cpu_cycles() as f64 / CPU_CLOCK_GHZ;
        let dsp_ns = b.dsp_cycles() as f64 / ACCEL_CLOCK_GHZ;
        let gpu_ns = b.gpu_cycles() as f64 / GPU_CLOCK_GHZ;
        t.row(vec![
            b.name().into(),
            b.params(),
            pct(ideal_ns / cpu_ns),
            pct(ideal_ns / dsp_ns),
            pct(ideal_ns / gpu_ns),
        ]);
    }
    t.note("paper: all platforms an order of magnitude below ideal on the factorizations");
    t
}

/// Figure 6: cumulative inter-region dependence distances.
pub fn fig06_dep_distance() -> Table {
    use revel_workloads::depdist;
    let mut t = Table::new(
        "Figure 6: inter-region dependence distance (instructions)",
        &["kernel", "n", "median", "p90", "<=100", "<=1000", "<=10000"],
    );
    let cases: Vec<(&str, usize, depdist::DepDistances)> = vec![
        ("cholesky", 24, depdist::cholesky_distances(24)),
        ("qr", 24, depdist::qr_distances(24)),
        ("svd", 24, depdist::svd_distances(24)),
        ("solver", 24, depdist::solver_distances(24)),
    ];
    for (name, n, d) in cases {
        let sorted = d.sorted();
        let p90 = sorted.get(sorted.len() * 9 / 10).copied().unwrap_or(0);
        t.row(vec![
            name.into(),
            n.to_string(),
            d.median().to_string(),
            p90.to_string(),
            pct(d.cumulative_at(100)),
            pct(d.cumulative_at(1000)),
            pct(d.cumulative_at(10_000)),
        ]);
    }
    t.note("paper: most dependences are around a thousand instructions apart");
    t
}

/// Figure 7: relative PE area across the spatial-architecture taxonomy.
pub fn fig07_taxonomy_area() -> Table {
    let r = RelativePeArea::paper();
    let mut t = Table::new(
        "Figure 7: relative PE area (taxonomy quadrants)",
        &["quadrant", "relative area"],
    );
    t.row(vec!["systolic (dedicated/static)".into(), ratio(r.systolic)]);
    t.row(vec!["ordered dataflow (dedicated/dynamic)".into(), ratio(r.ordered_dataflow)]);
    t.row(vec!["CGRA (shared/static)".into(), ratio(r.cgra)]);
    t.row(vec!["tagged dataflow (shared/dynamic)".into(), ratio(r.tagged_dataflow)]);
    t.note(format!(
        "per-PE synthesis: systolic {:.0} um^2, tagged dataflow {:.0} um^2",
        revel_fabric::SPE_AREA_UM2,
        revel_fabric::DPE_AREA_UM2
    ));
    t
}

/// Figure 8: the spatial baselines' fraction of ideal performance.
pub fn fig08_spatial_baselines(comparisons: &[Comparison]) -> Table {
    let mut t = Table::new(
        "Figure 8: spatial baselines relative to ideal",
        &["kernel", "params", "systolic", "dataflow", "revel"],
    );
    for c in comparisons {
        let ideal = c.bench.asic_cycles() as f64;
        t.row(vec![
            c.bench.name().into(),
            c.bench.params(),
            pct(ideal / c.systolic_cycles as f64),
            pct(ideal / c.dataflow_cycles as f64),
            pct(c.fraction_of_ideal()),
        ]);
    }
    t.note("paper: spatial architectures beat CPUs/DSPs but stay well under ideal");
    t
}

/// Figure 19 (batch 1): speedups over the DSP.
pub fn fig19_batch1(comparisons: &[Comparison]) -> Table {
    let mut t = Table::new(
        "Figure 19: batch-1 speedup over DSP",
        &["kernel", "params", "revel", "systolic", "dataflow"],
    );
    for c in comparisons {
        let dsp = c.bench.dsp_cycles() as f64;
        t.row(vec![
            c.bench.name().into(),
            c.bench.params(),
            ratio(c.speedup_vs_dsp()),
            ratio(dsp / c.systolic_cycles as f64),
            ratio(dsp / c.dataflow_cycles as f64),
        ]);
    }
    let g = gm1(geomean(comparisons.iter().map(|c| c.speedup_vs_dsp())));
    t.note(format!("geomean REVEL speedup over DSP: {g}x (paper: 11x small / 17x large)"));
    let gs = gm1(geomean(comparisons.iter().map(|c| c.speedup_vs_systolic())));
    let gd = gm1(geomean(comparisons.iter().map(|c| c.speedup_vs_dataflow())));
    t.note(format!("geomean vs systolic {gs}x (paper 3.3x), vs dataflow {gd}x (paper 3.5x)"));
    t
}

/// Figure 20 (batch 8): each lane runs an independent input; the DSP model
/// likewise runs one instance per core, so its per-instance time is its
/// single-core time.
pub fn fig20_batch8() -> Table {
    let mut t = Table::new("Figure 20: batch-8 speedup over DSP", &["kernel", "params", "revel"]);
    let benches = Bench::suite_small();
    // GEMM/FIR already use all lanes for one input; batch scales both
    // platforms equally, so the batch-1 number carries over (and shares the
    // batch-1 cache entry — only kernels whose batch build differs re-run).
    let speeds: Vec<f64> = engine::par_map(&benches, |b| {
        let run = b.run_batch(&BuildCfg::revel(8)).expect("run");
        run.assert_ok(b.name());
        b.dsp_cycles() as f64 / run.cycles as f64
    });
    for (b, s) in benches.iter().zip(&speeds) {
        t.row(vec![b.name().into(), b.params(), ratio(*s)]);
    }
    t.note(format!(
        "geomean: {}x (paper: 6.2x small / 8.1x large; DSP gets its own 8x from batch)",
        gm1(geomean(speeds))
    ));
    t
}

/// Figure 21: MKL thread scaling vs REVEL on Cholesky.
pub fn fig21_cpu_scaling() -> Table {
    use revel_models::cpu;
    let mut t = Table::new(
        "Figure 21: Cholesky — CPU (MKL model) thread scaling vs REVEL",
        &["n", "cpu 1t (us)", "cpu 2t", "cpu 4t", "cpu 8t", "revel (us)"],
    );
    for n in [16usize, 32, 64, 128, 256, 512] {
        let us = |cycles: u64| format!("{:.2}", cycles as f64 / CPU_CLOCK_GHZ / 1000.0);
        let revel = if n <= 32 {
            let run = Bench::Cholesky { n }.run(&BuildCfg::revel(1)).expect("run");
            run.assert_ok("cholesky");
            format!("{:.2}", run.cycles as f64 / ACCEL_CLOCK_GHZ / 1000.0)
        } else {
            "-".into()
        };
        t.row(vec![
            n.to_string(),
            us(cpu::cholesky_1t(n)),
            us(cpu::cholesky_mt(n, 2)),
            us(cpu::cholesky_mt(n, 4)),
            us(cpu::cholesky_mt(n, 8)),
            revel,
        ]);
    }
    t.note("paper: MKL threads only from n=128, where threading first *hurts*");
    t
}

/// Figure 22: the mechanism ablation ladder.
pub fn fig22_ablation() -> Table {
    let mut t = Table::new(
        "Figure 22: performance impact of each mechanism (speedup over systolic base)",
        &["kernel", "params", "+ind-streams", "+hybrid", "+stream-pred"],
    );
    let benches = Bench::suite_large();
    let rows = engine::par_map(&benches, |b| {
        let lanes = b.lanes();
        let base = b.run(&BuildCfg::ablation(AblationStep::Systolic, lanes)).expect("base");
        base.assert_ok(b.name());
        let mut cells = vec![b.name().to_string(), b.params()];
        for step in
            [AblationStep::InductiveStreams, AblationStep::Hybrid, AblationStep::StreamPredication]
        {
            let run = b.run(&BuildCfg::ablation(step, lanes)).expect("step");
            run.assert_ok(b.name());
            cells.push(ratio(base.cycles as f64 / run.cycles as f64));
        }
        cells
    });
    for cells in rows {
        t.row(cells);
    }
    t.note("paper: streams help everything; hybrid helps QR/SVD/Solver most; predication pays off on vectorized inductive loops");
    t
}

/// Figure 23: cycle-level bottleneck breakdown for REVEL.
pub fn fig23_bottlenecks(comparisons: &[Comparison]) -> Table {
    let classes = CycleClass::ALL;
    let mut headers: Vec<&str> = vec!["kernel", "params"];
    headers.extend(classes.iter().map(|c| c.label()));
    let mut t = Table::new("Figure 23: REVEL cycle-level breakdown", &headers);
    for c in comparisons {
        let b = c.revel.report.total_breakdown();
        let mut cells = vec![c.bench.name().to_string(), c.bench.params()];
        cells.extend(classes.iter().map(|cl| pct(b.fraction(*cl))));
        t.row(cells);
    }
    t.note("issue/multi-issue/temporal are useful work; the rest are stalls");
    t
}

/// Figure 24: sensitivity to the number of dataflow PEs.
pub fn fig24_dpe_sensitivity() -> Table {
    let mut t = Table::new(
        "Figure 24: dataflow-PE count sensitivity (cycles; area)",
        &["kernel", "1 dPE", "2 dPE", "4 dPE", "8 dPE"],
    );
    let benches = [
        Bench::Svd { n: 16 },
        Bench::Qr { n: 16 },
        Bench::Cholesky { n: 16 },
        Bench::Solver { n: 16 },
    ];
    let rows = engine::par_map(&benches, |b| {
        let mut cells = vec![b.name().to_string()];
        for dpes in [1usize, 2, 4, 8] {
            let cfg = BuildCfg::revel_with_dpes(b.lanes(), dpes);
            match b.run(&cfg) {
                Ok(run) => {
                    run.assert_ok(b.name());
                    cells.push(run.cycles.to_string());
                }
                Err(_) => cells.push("n/a".into()),
            }
        }
        cells
    });
    for cells in rows {
        t.row(cells);
    }
    let m = CostModel::paper();
    t.note(format!(
        "area: 1 dPE {:.2} mm^2, 2 dPE {:.2}, 4 dPE {:.2}, 8 dPE {:.2} (paper picks 1)",
        m.revel_mm2_with_dpes(8, 1),
        m.revel_mm2_with_dpes(8, 2),
        m.revel_mm2_with_dpes(8, 4),
        m.revel_mm2_with_dpes(8, 8)
    ));
    t
}

/// Figure 25: performance per area, normalized to the CPU.
pub fn fig25_perf_per_area(comparisons: &[Comparison]) -> Table {
    // Areas (28 nm-normalized): Xeon 4116 die share ~8 cores; the paper
    // normalizes technology and reports REVEL at 1089x the OOO core and
    // 7.3x the DSP. We use published per-core area estimates.
    const CPU_MM2: f64 = 8.0 * 35.0; // 8 Skylake cores + uncore, 28nm-equivalent
    const DSP_MM2: f64 = 8.0 * 1.6; // 8 C66x cores (core+L2 only), 28nm-equivalent
    let revel_mm2 = AreaBreakdown::paper().revel_mm2;
    let mut t = Table::new(
        "Figure 25: relative performance/mm^2 (normalized to CPU)",
        &["kernel", "dsp", "revel"],
    );
    let mut dsp_r = Vec::new();
    let mut revel_r = Vec::new();
    for c in comparisons {
        let cpu_time = c.bench.cpu_cycles() as f64 / CPU_CLOCK_GHZ;
        let dsp_time = c.bench.dsp_cycles() as f64 / ACCEL_CLOCK_GHZ;
        let revel_time = c.revel.cycles as f64 / ACCEL_CLOCK_GHZ;
        let cpu_pa = 1.0 / (cpu_time * CPU_MM2);
        let dsp_pa = 1.0 / (dsp_time * DSP_MM2) / cpu_pa;
        let rev_pa = 1.0 / (revel_time * revel_mm2) / cpu_pa;
        dsp_r.push(dsp_pa);
        revel_r.push(rev_pa);
        t.row(vec![c.bench.name().into(), ratio(dsp_pa), ratio(rev_pa)]);
    }
    t.note(format!(
        "geomean: DSP {}x, REVEL {}x over CPU (paper: REVEL 1089x CPU, 7.3x DSP)",
        gm0(geomean(dsp_r)),
        gm0(geomean(revel_r))
    ));
    t
}

/// Table IV: the ideal ASIC cycle models.
pub fn tab04_asic_models() -> Table {
    let mut t = Table::new("Table IV: ideal ASIC model cycles", &["kernel", "small", "large"]);
    for (s, l) in Bench::suite_small().into_iter().zip(Bench::suite_large()) {
        t.row(vec![
            s.name().into(),
            format!("{} ({})", s.asic_cycles(), s.params()),
            format!("{} ({})", l.asic_cycles(), l.params()),
        ]);
    }
    t
}

/// Table VI: the published area/power breakdown.
pub fn tab06_area_power() -> Table {
    let b = AreaBreakdown::paper();
    let mut t = Table::new(
        "Table VI: area and power breakdown (28 nm)",
        &["component", "area (mm^2)", "power (mW)"],
    );
    let mut row = |n: &str, a: f64, p: f64| {
        t.row(vec![n.into(), format!("{a:.2}"), format!("{p:.2}")]);
    };
    row("dedicated network (24)", b.dedicated_net_mm2, b.dedicated_net_mw);
    row("temporal network (1)", b.temporal_net_mm2, b.temporal_net_mw);
    row("functional units", b.func_units_mm2, b.func_units_mw);
    row("control (ports/XFER/stream)", b.control_mm2, b.control_mw);
    row("SPAD 8KB", b.spad_mm2, b.spad_mw);
    row("1 vector lane", b.lane_mm2, b.lane_mw);
    row("control core", b.core_mm2, b.core_mw);
    row("REVEL total", b.revel_mm2, b.revel_mw);
    t
}

/// Table VII: power/area overhead versus an iso-performance ASIC, from
/// measured simulator events.
pub fn tab07_asic_overhead(comparisons: &[Comparison]) -> Table {
    let mut t = Table::new(
        "Table VII: power/area overhead vs ideal ASIC (iso-performance)",
        &["kernel", "power ovhd", "area ovhd"],
    );
    let mut povs = Vec::new();
    for c in comparisons {
        let lanes = c.bench.lanes();
        let pov =
            power::power_overhead(&c.revel.report.events, c.revel.cycles, ACCEL_CLOCK_GHZ, lanes);
        let aov = power::revel_area_mm2(lanes) / power::asic_area_mm2(lanes);
        povs.push(pov);
        t.row(vec![c.bench.name().into(), ratio(pov), ratio(aov)]);
    }
    t.note(format!(
        "mean power overhead {}x (paper 2.0x); combined-ASIC area ratio {:.2} (paper 0.55)",
        gm1(geomean(povs)),
        power::combined_asics_vs_revel()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        assert!(fig01_percent_ideal().to_string().contains("cholesky"));
        assert!(fig07_taxonomy_area().to_string().contains("tagged"));
        assert!(tab04_asic_models().to_string().contains("fft"));
        assert!(tab06_area_power().to_string().contains("REVEL total"));
    }

    #[test]
    fn fig01_platforms_below_ideal_on_factorizations() {
        let t = fig01_percent_ideal();
        // Every cpu/dsp entry for the factorizations is below 100%.
        for row in &t.rows[..4] {
            for cell in &row[2..4] {
                let v: f64 = cell.trim_end_matches('%').parse().unwrap();
                assert!(v < 100.0, "{row:?}");
            }
        }
    }
}
