//! The parallel, memoized evaluation engine.
//!
//! The paper's evaluation is a (workload × architecture × ablation) grid
//! in which many cells repeat across figures: Fig. 8/19/23/25/Tab. VII all
//! consume the same large-suite comparisons, and Fig. 20–24 re-simulate
//! overlapping configurations. Each cell is also embarrassingly parallel —
//! a cycle-level simulation touching only its own
//! [`Machine`](crate::sim::Machine) — so this
//! module provides the two mechanisms the harness, test suites, and the
//! `revel-serve` request handlers share:
//!
//! * a **run cache** keyed by a `(Bench, BuildCfg)` fingerprint (plus the
//!   batch-replication flag), so every distinct configuration is built,
//!   annealed (`Machine::run`'s 2000-iteration simulated-annealing spatial
//!   schedule), and simulated exactly once per process;
//! * a **scoped-thread job pool** ([`par_map`]) fanning independent cells
//!   across worker threads with *deterministic result ordering* — results
//!   land in per-item slots, so tables are byte-identical to a serial run
//!   regardless of `--jobs`.
//!
//! Determinism argument: the simulator is a pure function of
//! `(program, init, SimOptions)` — its only ambient input, the
//! `REVEL_SIM_DEBUG` variable, is read once per run and never changes
//! results below the clamp — so caching and reordering execution cannot
//! change any table cell. Workers only interleave *which* cell is computed
//! when; each cell's value and its position in the output are fixed.
//!
//! Three properties make the engine safe to park behind a long-running
//! server (`revel-serve`), not just a batch harness:
//!
//! * **Bounded caches.** Both caches evict least-recently-used entries
//!   beyond [`cache_capacity`] (an unbounded memo table is a slow memory
//!   leak under an infinite request stream); hit/miss/eviction counters are
//!   exposed through [`stats`] for the report footer and the `stats`
//!   endpoint.
//! * **Single-flight misses.** Concurrent requests for the same key wait
//!   for the first simulation instead of duplicating it, so a thundering
//!   herd on a cold cell costs one simulation — and the hit/miss split
//!   becomes exact (misses == distinct simulations) and deterministic for
//!   every worker count.
//! * **Deadline pass-through.** A per-request wall-clock deadline threads
//!   into [`SimOptions::wall_deadline`]; deadline-expired runs are returned
//!   to their caller but *never* cached (where the wall clock fired is not
//!   deterministic, and a poisoned entry would serve bogus timeouts
//!   forever).
//!
//! The cache lives for the process (`OnceLock`), so within one
//! `all_experiments` run, one server process, or one test binary every
//! repeated configuration is a hit.

pub mod persist;

use crate::suite::{Bench, Comparison};
use persist::{PersistedRun, PersistentTier, WarmStart};
use revel_compiler::BuildCfg;
use revel_fabric::FabricMask;
use revel_sim::{FaultPlan, SimError, SimOptions, TimingTrace};
use revel_workloads::{
    batch_replayable, record_timing, replay_trace_on, run_workload_with, WorkloadRun,
};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Cache key: one simulated configuration. `batch` distinguishes the
/// batch-replicated build of a kernel from its batch-1 build *only* for
/// kernels whose two builds differ (see [`Bench::batch_workload`]), so
/// identical programs share one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RunKey {
    bench: Bench,
    cfg: BuildCfg,
    batch: bool,
}

/// A bounded, recency-evicting memo table. The engine's run and lint
/// caches are both instances; the run cache additionally uses the `None`
/// value state to mark *in-flight* computations for single-flight misses.
struct BoundedCache<K, V> {
    map: HashMap<K, CacheEntry<V>>,
    clock: u64,
}

struct CacheEntry<V> {
    /// `Some` = completed result; `None` = another caller is computing it.
    value: Option<V>,
    /// Logical access time (monotone per-cache counter, not wall clock).
    last_used: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> BoundedCache<K, V> {
    fn new() -> Self {
        BoundedCache { map: HashMap::new(), clock: 0 }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Completed-entry lookup; a hit refreshes the entry's recency.
    fn get(&mut self, key: &K) -> Option<V> {
        let clock = self.tick();
        match self.map.get_mut(key) {
            Some(e) if e.value.is_some() => {
                e.last_used = clock;
                e.value.clone()
            }
            _ => None,
        }
    }

    /// True while another caller holds the in-flight claim for `key`.
    fn in_flight(&self, key: &K) -> bool {
        matches!(self.map.get(key), Some(e) if e.value.is_none())
    }

    /// Claims `key` for computation (single-flight marker).
    fn claim(&mut self, key: K) {
        let clock = self.tick();
        self.map.insert(key, CacheEntry { value: None, last_used: clock });
    }

    /// Releases an unfulfilled claim (computation failed or was aborted).
    /// A completed entry under the same key is left untouched.
    fn release_claim(&mut self, key: &K) {
        if self.in_flight(key) {
            self.map.remove(key);
        }
    }

    /// Inserts a completed value, then evicts least-recently-used
    /// *completed* entries until at most `capacity` remain (in-flight
    /// claims are never evicted — there is a thread waiting on each).
    /// Returns the number of entries evicted.
    fn insert(&mut self, key: K, value: V, capacity: usize) -> usize {
        let clock = self.tick();
        self.map.insert(key, CacheEntry { value: Some(value), last_used: clock });
        let mut ready = self.ready_len();
        let mut evicted = 0;
        while ready > capacity {
            let victim = self
                .map
                .iter()
                .filter(|(_, e)| e.value.is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.map.remove(&k);
                    ready -= 1;
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }

    /// Number of completed entries (excludes in-flight claims).
    fn ready_len(&self) -> usize {
        self.map.values().filter(|e| e.value.is_some()).count()
    }

    /// Number of completed entries whose value satisfies `pred`.
    fn ready_matching(&self, pred: impl Fn(&V) -> bool) -> usize {
        self.map.values().filter(|e| e.value.as_ref().is_some_and(&pred)).count()
    }
}

struct Engine {
    runs: Mutex<BoundedCache<RunKey, WorkloadRun>>,
    /// Signalled whenever a run completes or releases its claim, waking
    /// single-flight waiters.
    runs_done: Condvar,
    lints: Mutex<BoundedCache<(Bench, BuildCfg), Vec<revel_verify::Diagnostic>>>,
    /// Timing traces recorded by [`run_batched_with`]'s timing walk, a
    /// first-class artifact cached next to the run results under the same
    /// key shape. Plain get/insert (no single-flight): a duplicated timing
    /// walk is wasted work, not a correctness hazard, and batch requests
    /// for one cell rarely race.
    traces: Mutex<BoundedCache<RunKey, Arc<TimingTrace>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    // Machine-cycle accounting across all *distinct* cached runs. Counted
    // at insert time by the single thread that executed the run, so the
    // totals are deterministic for every --jobs setting.
    sim_cycles: AtomicU64,
    skipped_cycles: AtomicU64,
    // Runs that went through [`run_uncached`] because they carried a fault
    // plan or a fabric mask. The run key does not include `SimOptions`, so
    // such runs must bypass the cache entirely; this counter is the proof
    // (asserted by the degradation sweep) that none of them touched it.
    fault_bypasses: AtomicU64,
    // Deadline-expired waiters that gave up on another thread's in-flight
    // run and simulated uncached. Those lookups are neither hits nor
    // misses, so without this counter `hits + misses` undercounts lookups.
    deadline_fallbacks: AtomicU64,
    // Batched executions served by a cached timing trace (no timing walk).
    trace_hits: AtomicU64,
    // Individual datasets executed through the functional replayer instead
    // of the full simulator. Stays zero for uncertified or perturbed
    // batches — the counter-delta proof that the replay gate holds.
    batched_replays: AtomicU64,
    /// The optional disk tier ([`enable_persistence`]); `None` outside
    /// server processes. Its own lock, never held while simulating.
    disk: Mutex<Option<PersistentTier>>,
    // Lookups served from the disk tier (a memory miss answered without
    // simulating). Neither a hit nor a miss of the in-memory cache.
    disk_hits: AtomicU64,
    // Entries the disk tier recovered at [`enable_persistence`] time.
    warm_start_entries: AtomicU64,
    // Files (or file suffixes) the tier loader had to skip as corrupt —
    // each one a structured cold start, never a panic.
    disk_cold_starts: AtomicU64,
}

fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine {
        runs: Mutex::new(BoundedCache::new()),
        runs_done: Condvar::new(),
        lints: Mutex::new(BoundedCache::new()),
        traces: Mutex::new(BoundedCache::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        evictions: AtomicU64::new(0),
        sim_cycles: AtomicU64::new(0),
        skipped_cycles: AtomicU64::new(0),
        fault_bypasses: AtomicU64::new(0),
        deadline_fallbacks: AtomicU64::new(0),
        trace_hits: AtomicU64::new(0),
        batched_replays: AtomicU64::new(0),
        disk: Mutex::new(None),
        disk_hits: AtomicU64::new(0),
        warm_start_entries: AtomicU64::new(0),
        disk_cold_starts: AtomicU64::new(0),
    })
}

/// Worker-thread count: 0 means "auto" (one per available core).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Default bound on each cache (run and lint separately). Generous enough
/// that the full evaluation grid never evicts, small enough that a
/// long-running server's memory stays flat.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Completed entries each engine cache may hold before least-recently-used
/// eviction kicks in (clamped to ≥ 1).
static CACHE_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CACHE_CAPACITY);

/// Sets the per-cache entry bound (`revel_serve --cache-capacity`). Takes
/// effect on subsequent inserts; already-cached entries above the new bound
/// are evicted lazily as new results land.
pub fn set_cache_capacity(n: usize) {
    CACHE_CAPACITY.store(n.max(1), Ordering::SeqCst);
}

/// The current per-cache entry bound.
pub fn cache_capacity() -> usize {
    CACHE_CAPACITY.load(Ordering::SeqCst)
}

/// Sets the worker-thread count for [`par_map`]. `0` restores the default
/// (one worker per available core). Tables are byte-identical for every
/// setting; only wall-clock changes.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// The effective worker-thread count.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `items` on the engine's job pool, preserving order.
///
/// Scoped threads pull items off a shared index and write results into
/// per-item slots, so the output `Vec` is ordered exactly as `items`
/// regardless of scheduling. A panicking worker propagates its panic when
/// the scope joins (verification failures stay loud under parallelism).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_jobs(items, jobs(), f)
}

/// [`par_map`] with an explicit worker count (`1` = serial, no threads).
pub fn par_map_jobs<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // A worker panic is caught and re-thrown on the caller's thread with
    // its original payload (scope's own join panic would replace e.g. an
    // assertion message with "a scoped thread panicked").
    let panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => *slots[i].lock().expect("slot lock") = Some(r),
                    Err(payload) => {
                        let mut first = panic.lock().expect("panic slot");
                        if first.is_none() {
                            *first = Some(payload);
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = panic.into_inner().expect("panic slot") {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("worker filled slot"))
        .collect()
}

/// Releases an unfulfilled single-flight claim when the executing thread
/// unwinds (simulator error or panic), so waiters retry instead of hanging.
struct RunClaim<'a> {
    engine: &'a Engine,
    key: RunKey,
    fulfilled: bool,
}

impl Drop for RunClaim<'_> {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.engine.runs.lock().expect("run cache lock").release_claim(&self.key);
            self.engine.runs_done.notify_all();
        }
    }
}

/// Runs `bench` under `cfg` through the run cache.
///
/// # Errors
/// Propagates simulator errors (never cached; they fail identically on
/// every attempt).
pub(crate) fn run_cached(
    bench: Bench,
    cfg: &BuildCfg,
    batch: bool,
) -> Result<WorkloadRun, SimError> {
    run_cached_deadline(bench, cfg, batch, None)
}

/// [`run_cached`] with an optional wall-clock deadline.
///
/// Cache hits are served instantly regardless of the deadline. On a miss
/// the deadline threads into [`SimOptions::wall_deadline`]; a run the
/// deadline cut short is returned (as `timed_out`) but never cached. A
/// caller that finds the key in flight waits for the executing thread —
/// but only until its own deadline, after which it simulates uncached with
/// the (expired) deadline and reports the timeout itself.
///
/// # Errors
/// Propagates simulator errors (never cached).
pub(crate) fn run_cached_deadline(
    bench: Bench,
    cfg: &BuildCfg,
    batch: bool,
    deadline: Option<Instant>,
) -> Result<WorkloadRun, SimError> {
    let key = RunKey { bench, cfg: *cfg, batch: batch && bench.batch_build_differs() };
    let e = engine();
    let opts = SimOptions { wall_deadline: deadline, ..cfg.sim_options() };

    // Phase 1: hit, claim the key, or wait out another claimant.
    {
        let mut runs = e.runs.lock().expect("run cache lock");
        loop {
            if let Some(run) = runs.get(&key) {
                e.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(run);
            }
            if !runs.in_flight(&key) {
                runs.claim(key);
                e.misses.fetch_add(1, Ordering::Relaxed);
                break;
            }
            match deadline {
                None => runs = e.runs_done.wait(runs).expect("run cache lock"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Budget spent waiting on someone else's run: fall
                        // through to an uncached simulation with the expired
                        // deadline — it returns `timed_out` almost
                        // immediately and never touches the cache. Counted
                        // separately: this lookup is neither a hit nor a
                        // miss, and dropping it would break the
                        // `hits + misses + deadline_fallbacks == lookups`
                        // invariant the stats endpoint reports.
                        e.deadline_fallbacks.fetch_add(1, Ordering::Relaxed);
                        drop(runs);
                        let workload =
                            if key.batch { bench.batch_workload() } else { bench.workload() };
                        return run_workload_with(workload.as_ref(), cfg, opts);
                    }
                    runs = e.runs_done.wait_timeout(runs, d - now).expect("run cache lock").0;
                }
            }
        }
    }

    // Phase 2: simulate outside the lock, claim guarded against unwinds.
    let mut claim = RunClaim { engine: e, key, fulfilled: false };
    let workload = if key.batch { bench.batch_workload() } else { bench.workload() };
    let result = run_workload_with(workload.as_ref(), cfg, opts);
    if let Ok(run) = &result {
        // A deadline-expired run is not a property of the configuration
        // (the wall clock fired at an arbitrary cycle); caching it would
        // serve bogus timeouts to every later request. Leave the claim to
        // the drop guard instead. The faulted check is defense in depth:
        // fault-injected runs are supposed to arrive via [`run_uncached`]
        // and never reach this path, but a corrupted result must not be
        // served to later clean requests under any circumstances.
        if !run.report.deadline_expired && !run.report.faulted() {
            e.sim_cycles.fetch_add(run.report.cycles, Ordering::Relaxed);
            e.skipped_cycles.fetch_add(run.report.stepper.skipped_cycles, Ordering::Relaxed);
            let evicted = {
                let mut runs = e.runs.lock().expect("run cache lock");
                runs.insert(key, run.clone(), cache_capacity())
            };
            e.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
            claim.fulfilled = true;
            e.runs_done.notify_all();
            // Every result admitted to the memory tier is also appended
            // to the disk tier (when one is enabled): timed-out, faulted,
            // and degraded runs can never get here, so disk entries are
            // always completed, trustworthy runs. Best-effort — an I/O
            // failure degrades persistence, never the request.
            let mut disk = e.disk.lock().expect("disk tier lock");
            if let Some(tier) = disk.as_mut() {
                let _ = tier.append(key_fingerprint(bench, cfg, batch), &persisted_from(run));
            }
        }
    }
    result
}

/// The 128-bit, process-independent fingerprint of one run-cache key —
/// the same key shape the run cache uses, rendered stably and hashed
/// with the disk tier's FNV-1a pair. The serving fleet routes requests by
/// this fingerprint (consistent hashing keeps each shard's LRU disjoint),
/// and the disk tier files results under it.
pub fn key_fingerprint(bench: Bench, cfg: &BuildCfg, batch: bool) -> (u64, u64) {
    let batch = batch && bench.batch_build_differs();
    persist::fingerprint(&format!("{bench:?}|{cfg:?}|batch={batch}"))
}

fn persisted_from(run: &WorkloadRun) -> PersistedRun {
    PersistedRun {
        cycles: run.cycles,
        commands_issued: run.report.commands_issued,
        verified: run.verified.clone(),
        canonical_text: run.report.canonical_text(),
    }
}

/// Attaches a disk-backed persistence tier rooted at `dir` to the engine:
/// every subsequent cacheable run is appended to the tier, and lookups
/// that miss memory are answered from disk ([`run_served`]). Loads
/// whatever the directory already holds — a restarted server warm-starts
/// from its predecessor's results. Corrupt files surface as structured
/// cold starts in the returned [`WarmStart`] (and in
/// [`CacheStats::disk_cold_starts`]), never as a panic.
///
/// Calling again replaces the tier (tests use fresh directories); the
/// warm-start counter is overwritten, the cold-start counter accumulates.
///
/// # Errors
/// Propagates directory-creation and file-open failures.
pub fn enable_persistence(dir: &std::path::Path) -> std::io::Result<WarmStart> {
    let (tier, warm) = PersistentTier::open(dir)?;
    let e = engine();
    e.warm_start_entries.store(warm.entries as u64, Ordering::SeqCst);
    e.disk_cold_starts.fetch_add(warm.cold_starts.len() as u64, Ordering::SeqCst);
    *e.disk.lock().expect("disk tier lock") = Some(tier);
    Ok(warm)
}

/// Compacts the disk tier into a fresh atomic snapshot (no-op when
/// persistence is disabled). Servers call this on graceful shutdown so a
/// restart loads one snapshot instead of replaying a long segment.
///
/// # Errors
/// Propagates snapshot write/rename failures.
pub fn persist_snapshot() -> std::io::Result<()> {
    match engine().disk.lock().expect("disk tier lock").as_mut() {
        Some(tier) => tier.snapshot(),
        None => Ok(()),
    }
}

/// A result served by [`run_served`]: either a live (or memory-cached)
/// [`WorkloadRun`], or the persisted surface of a previous process's run,
/// recovered from the disk tier without simulating.
#[derive(Debug, Clone)]
pub enum Served {
    /// Simulated in this process (or served from the in-memory cache).
    /// Boxed: a live run dwarfs the persisted summary, and callers on the
    /// serving path immediately unbox it.
    Run(Box<WorkloadRun>),
    /// Served from the disk tier: the run completed in an earlier
    /// process; only its persisted summary is available.
    Disk(PersistedRun),
}

/// The cached-run lookup with the disk tier layered in: memory first,
/// then disk ([`CacheStats::disk_hits`]), then simulation. A disk hit
/// costs one index lookup — a restarted shard answers its first repeat
/// requests from disk *before* its first simulation completes.
///
/// # Errors
/// Propagates simulator errors (never cached).
pub fn run_served(
    bench: Bench,
    cfg: &BuildCfg,
    deadline: Option<Instant>,
) -> Result<Served, SimError> {
    let key = RunKey { bench, cfg: *cfg, batch: false };
    let e = engine();
    if let Some(run) = e.runs.lock().expect("run cache lock").get(&key) {
        e.hits.fetch_add(1, Ordering::Relaxed);
        return Ok(Served::Run(Box::new(run)));
    }
    {
        let disk = e.disk.lock().expect("disk tier lock");
        if let Some(tier) = disk.as_ref() {
            // Failpoint on the served-run disk path: an injected error
            // degrades to a cache miss (simulate instead of serving a
            // possibly-suspect disk record); an armed abort crashes at
            // the exact instant a reply would have come from disk.
            if revel_failpoint::hit("engine.serve.disk-lookup").is_ok() {
                if let Some(run) = tier.lookup(key_fingerprint(bench, cfg, false)) {
                    e.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Served::Disk(run.clone()));
                }
            }
        }
    }
    run_cached_deadline(bench, cfg, false, deadline).map(|run| Served::Run(Box::new(run)))
}

/// Runs `bench` under explicit [`SimOptions`], bypassing the run cache in
/// both directions: no lookup, no insert. The cache key deliberately
/// excludes `SimOptions` (clean runs are a pure function of the
/// configuration), so any run whose options perturb results — a fault
/// plan, a fabric mask, a reduced budget — must go through here. Each call
/// increments [`CacheStats::fault_bypasses`], which the degradation sweep
/// uses to prove no perturbed run touched the cache.
///
/// # Errors
/// Propagates simulator errors.
pub fn run_uncached(
    bench: Bench,
    cfg: &BuildCfg,
    opts: SimOptions,
) -> Result<WorkloadRun, SimError> {
    engine().fault_bypasses.fetch_add(1, Ordering::Relaxed);
    run_workload_with(bench.workload().as_ref(), cfg, opts)
}

/// [`run_uncached`] with `plan` injected: the simulator applies the plan's
/// seeded fault events at their exact cycles and reports the outcome in
/// [`revel_sim::RunReport::fault`]. Never cached.
///
/// # Errors
/// Propagates simulator errors.
pub fn run_fault_injected(
    bench: Bench,
    cfg: &BuildCfg,
    plan: FaultPlan,
) -> Result<WorkloadRun, SimError> {
    let opts = SimOptions { fault_plan: Some(plan), ..cfg.sim_options() };
    run_uncached(bench, cfg, opts)
}

/// [`run_uncached`] on a degraded fabric: the scheduler re-places and
/// re-routes around the PEs and links masked out by `mask` before the run.
/// Never cached (the key does not carry the mask).
///
/// # Errors
/// Propagates simulator errors, including `Unschedulable`/`Unroutable`
/// when too little fabric survives the mask.
pub fn run_degraded(
    bench: Bench,
    cfg: &BuildCfg,
    mask: FabricMask,
) -> Result<WorkloadRun, SimError> {
    let opts = SimOptions { fabric_mask: mask, ..cfg.sim_options() };
    run_uncached(bench, cfg, opts)
}

/// The result of a batched execution: one [`WorkloadRun`] per dataset
/// seed, plus whether the batch went through the trace-replay fast path
/// (`false` = every dataset was a full simulation).
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Per-dataset results, in `seeds` order.
    pub runs: Vec<WorkloadRun>,
    /// True when the datasets were executed by replaying one recorded
    /// timing trace instead of N full simulations.
    pub replayed: bool,
}

/// Executes `bench` under `cfg` once per dataset seed — through the
/// batched replay path when the configuration is certified oblivious.
///
/// For certified programs one cycle-accurate **timing walk** records a
/// [`TimingTrace`] (cached process-wide, next to the run cache), and each
/// seed's dataset is then executed by the cheap functional replayer:
/// byte-identical results, one simulation's worth of scheduling work.
/// Uncertified programs fall back to N independent full simulations.
///
/// # Errors
/// Propagates simulator errors, including replay desynchronization
/// ([`revel_sim::SimError::Replay`]) — which a certified program can only
/// hit if the certificate is wrong, so it is surfaced, never swallowed.
pub fn run_batched(bench: Bench, cfg: &BuildCfg, seeds: &[u64]) -> Result<BatchRun, SimError> {
    run_batched_with(bench, cfg, seeds, cfg.sim_options())
}

/// [`run_batched`] under explicit [`SimOptions`]. Perturbed options (a
/// fault plan or a degraded fabric) force every dataset through
/// [`run_uncached`]-style full simulation — each one counted in
/// [`CacheStats::fault_bypasses`] — because perturbation changes timing
/// behind the certifier's back.
///
/// # Errors
/// Propagates simulator errors.
pub fn run_batched_with(
    bench: Bench,
    cfg: &BuildCfg,
    seeds: &[u64],
    opts: SimOptions,
) -> Result<BatchRun, SimError> {
    let e = engine();
    let perturbed = opts.fault_plan.is_some() || opts.fabric_mask != FabricMask::HEALTHY;
    let full_batch = |count_bypasses: bool| -> Result<BatchRun, SimError> {
        let mut runs = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            if count_bypasses {
                e.fault_bypasses.fetch_add(1, Ordering::Relaxed);
            }
            runs.push(run_workload_with(bench.workload_seeded(seed).as_ref(), cfg, opts)?);
        }
        Ok(BatchRun { runs, replayed: false })
    };
    if perturbed {
        return full_batch(true);
    }
    let built = bench.workload().build(cfg);
    if !batch_replayable(&built, cfg, &opts) {
        return full_batch(false);
    }

    // Certified: fetch or record the timing trace for this cell.
    let key = RunKey { bench, cfg: *cfg, batch: false };
    let cached = e.traces.lock().expect("trace cache lock").get(&key);
    let trace = match cached {
        Some(t) => {
            e.trace_hits.fetch_add(1, Ordering::Relaxed);
            t
        }
        None => {
            let (timing, trace) = record_timing(&built, cfg, opts)?;
            if timing.report.timed_out {
                // A budget- or deadline-capped timing walk is not a usable
                // trace (and caching it would poison every later batch).
                return full_batch(false);
            }
            let trace = Arc::new(trace);
            let evicted = e.traces.lock().expect("trace cache lock").insert(
                key,
                trace.clone(),
                cache_capacity(),
            );
            e.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
            trace
        }
    };

    // Replay the one trace over every dataset, reusing a single machine
    // across lanes — allocating scratchpads per lane would cost more than
    // the functional replay itself (see `replay_trace_on`).
    let mut machine = revel_sim::Machine::new(cfg.machine_config(), opts);
    let mut runs = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let built_seed = bench.workload_seeded(seed).build(cfg);
        let run = replay_trace_on(&mut machine, &built_seed, &trace)?;
        e.batched_replays.fetch_add(1, Ordering::Relaxed);
        runs.push(run);
    }
    Ok(BatchRun { runs, replayed: true })
}

/// Runs REVEL and both spatial baselines for `bench` through the cache.
///
/// # Errors
/// Propagates simulator errors; panics (via `assert_ok`) if any run fails
/// numerical verification or timed out.
pub(crate) fn compare_cached(bench: Bench) -> Result<Comparison, SimError> {
    let lanes = bench.lanes();
    let revel = run_cached(bench, &BuildCfg::revel(lanes), false)?;
    revel.assert_ok(&format!("{} revel", bench.name()));
    let systolic = run_cached(bench, &BuildCfg::systolic_baseline(lanes), false)?;
    systolic.assert_ok(&format!("{} systolic", bench.name()));
    let dataflow = run_cached(bench, &BuildCfg::dataflow_baseline(lanes), false)?;
    dataflow.assert_ok(&format!("{} dataflow", bench.name()));
    Ok(Comparison {
        bench,
        revel,
        systolic_cycles: systolic.cycles,
        dataflow_cycles: dataflow.cycles,
    })
}

/// Lints `bench`'s build for `cfg` through the lint cache (the full
/// verifier re-runs the spatial scheduler, so repeats are worth memoizing
/// across the lint CLI, the serving front-end, and the test suites).
pub(crate) fn lint_cached(bench: Bench, cfg: &BuildCfg) -> Vec<revel_verify::Diagnostic> {
    let key = (bench, *cfg);
    let e = engine();
    if let Some(diags) = e.lints.lock().expect("lint cache lock").get(&key) {
        e.hits.fetch_add(1, Ordering::Relaxed);
        return diags;
    }
    e.misses.fetch_add(1, Ordering::Relaxed);
    let built = bench.workload().build(cfg);
    let diags = revel_verify::Verifier::new().verify(&built.program, &cfg.machine_config());
    let evicted =
        e.lints.lock().expect("lint cache lock").insert(key, diags.clone(), cache_capacity());
    e.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
    diags
}

/// Cache counters for the report footer and the `stats` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to simulate (or lint) from scratch.
    pub misses: u64,
    /// Entries dropped by least-recently-used eviction (both caches).
    pub evictions: u64,
    /// Per-cache entry bound currently in force.
    pub capacity: usize,
    /// Distinct simulated configurations currently cached.
    pub run_entries: usize,
    /// Distinct linted configurations currently cached.
    pub lint_entries: usize,
    /// Machine cycles across all distinct cached runs (deterministic:
    /// counted once per cache entry regardless of worker interleaving).
    pub sim_cycles: u64,
    /// Of [`CacheStats::sim_cycles`], cycles the event-horizon kernel
    /// skipped rather than stepped (0 under `--reference-stepper`).
    pub skipped_cycles: u64,
    /// Runs routed through [`run_uncached`] (fault-injected or degraded):
    /// they neither read nor wrote the cache. Not shown in the standard
    /// footer (clean-run output stays byte-identical); the degradation
    /// sweep prints it directly.
    pub fault_bypasses: u64,
    /// Of [`CacheStats::run_entries`], entries whose program carries an
    /// obliviousness certificate (`revel_verify::certify`): their timing
    /// is provably data-independent, so a batched executor may reuse the
    /// cached cycle counts across datasets of the same shape.
    pub oblivious_entries: usize,
    /// Deadline-expired waiters that gave up on another thread's in-flight
    /// run and simulated uncached. These lookups are neither hits nor
    /// misses; `hits + misses + deadline_fallbacks` equals total lookups.
    pub deadline_fallbacks: u64,
    /// Batched executions whose timing trace was served from the trace
    /// cache (no timing walk needed).
    pub trace_hits: u64,
    /// Datasets executed through the functional trace replayer instead of
    /// the full simulator. Zero for uncertified or perturbed batches — the
    /// counter-delta proof that the replay gate holds.
    pub batched_replays: u64,
    /// Lookups that missed memory but were answered from the disk tier
    /// without simulating. Neither a hit nor a miss of the memory cache.
    pub disk_hits: u64,
    /// Entries the disk tier recovered when persistence was enabled: the
    /// size of the warm start a restarted server inherited.
    pub warm_start_entries: u64,
    /// Corrupt tier files (truncated, checksum-failed, or
    /// version-mismatched) skipped as structured cold starts.
    pub disk_cold_starts: u64,
}

impl CacheStats {
    /// Skipped cycles as a percentage of all simulated machine cycles.
    pub fn skipped_pct(&self) -> f64 {
        if self.sim_cycles == 0 {
            0.0
        } else {
            100.0 * self.skipped_cycles as f64 / self.sim_cycles as f64
        }
    }

    /// Cache hits as a fraction of all lookups (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "evaluation cache: {} hit(s), {} miss(es) ({} sim + {} lint entries, \
             {} eviction(s), capacity {})",
            self.hits,
            self.misses,
            self.run_entries,
            self.lint_entries,
            self.evictions,
            self.capacity
        )?;
        write!(
            f,
            "simulated {} machine cycles; {} stepped, {} skipped by the \
             event-horizon kernel ({:.1}%)",
            self.sim_cycles,
            self.sim_cycles - self.skipped_cycles,
            self.skipped_cycles,
            self.skipped_pct()
        )
    }
}

/// Snapshot of the engine's cache counters.
pub fn stats() -> CacheStats {
    let e = engine();
    let (run_entries, oblivious_entries) = {
        let runs = e.runs.lock().expect("run cache lock");
        (runs.ready_len(), runs.ready_matching(|r| r.oblivious))
    };
    CacheStats {
        hits: e.hits.load(Ordering::Relaxed),
        misses: e.misses.load(Ordering::Relaxed),
        evictions: e.evictions.load(Ordering::Relaxed),
        capacity: cache_capacity(),
        run_entries,
        lint_entries: e.lints.lock().expect("lint cache lock").ready_len(),
        sim_cycles: e.sim_cycles.load(Ordering::Relaxed),
        skipped_cycles: e.skipped_cycles.load(Ordering::Relaxed),
        fault_bypasses: e.fault_bypasses.load(Ordering::Relaxed),
        oblivious_entries,
        deadline_fallbacks: e.deadline_fallbacks.load(Ordering::Relaxed),
        trace_hits: e.trace_hits.load(Ordering::Relaxed),
        batched_replays: e.batched_replays.load(Ordering::Relaxed),
        disk_hits: e.disk_hits.load(Ordering::Relaxed),
        warm_start_entries: e.warm_start_entries.load(Ordering::SeqCst),
        disk_cold_starts: e.disk_cold_starts.load(Ordering::SeqCst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_jobs(&items, 8, |i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_serial_and_parallel_agree() {
        let items: Vec<u64> = (0..33).collect();
        let f = |x: &u64| x.wrapping_mul(2654435761).rotate_left(7);
        assert_eq!(par_map_jobs(&items, 1, f), par_map_jobs(&items, 4, f));
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_jobs(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map_jobs(&[7u32], 4, |x| *x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "worker panic propagates")]
    fn par_map_propagates_worker_panics() {
        let items: Vec<usize> = (0..8).collect();
        par_map_jobs(&items, 4, |i| {
            if *i == 5 {
                panic!("worker panic propagates");
            }
            *i
        });
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new();
        assert_eq!(c.insert(1, 10, 2), 0);
        assert_eq!(c.insert(2, 20, 2), 0);
        // Refresh 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.insert(3, 30, 2), 1);
        assert_eq!(c.get(&2), None, "LRU entry must be gone");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.ready_len(), 2);
    }

    #[test]
    fn bounded_cache_shrinks_to_new_capacity_on_insert() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new();
        for k in 0..8 {
            c.insert(k, k, 8);
        }
        // A smaller capacity evicts down in one insert.
        assert_eq!(c.insert(100, 100, 4), 5);
        assert_eq!(c.ready_len(), 4);
        assert_eq!(c.get(&100), Some(100), "the fresh insert must survive");
    }

    #[test]
    fn bounded_cache_never_evicts_in_flight_claims() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new();
        c.claim(1);
        assert!(c.in_flight(&1));
        assert_eq!(c.ready_len(), 0);
        // Capacity 1 with a claim present: inserts only evict ready entries.
        c.insert(2, 20, 1);
        assert_eq!(c.insert(3, 30, 1), 1);
        assert!(c.in_flight(&1), "claim must survive eviction pressure");
        // Completing the claim works; releasing a fulfilled key is a no-op.
        c.insert(1, 10, 3);
        c.release_claim(&1);
        assert_eq!(c.get(&1), Some(10));
    }

    #[test]
    fn cache_capacity_is_settable_and_clamped() {
        let prev = cache_capacity();
        set_cache_capacity(64);
        assert_eq!(stats().capacity, 64);
        set_cache_capacity(0);
        assert_eq!(cache_capacity(), 1, "capacity clamps to at least one entry");
        set_cache_capacity(prev);
    }

    #[test]
    fn run_cache_hits_on_repeat() {
        let b = Bench::Solver { n: 12 };
        let cfg = BuildCfg::revel(1);
        let first = run_cached(b, &cfg, false).expect("runs");
        let before = stats();
        let second = run_cached(b, &cfg, false).expect("runs");
        let after = stats();
        assert_eq!(first.cycles, second.cycles);
        assert!(after.hits > before.hits, "second lookup must hit: {before:?} -> {after:?}");
    }

    #[test]
    fn expired_deadline_times_out_and_is_never_cached() {
        let b = Bench::Qr { n: 12 };
        let cfg = BuildCfg::systolic_baseline(1);
        let before = stats();
        let dead = Some(Instant::now());
        let run = run_cached_deadline(b, &cfg, false, dead).expect("runs");
        assert!(run.report.timed_out, "expired deadline must surface as timed_out");
        assert!(run.report.deadline_expired);
        // The poisoned result must not have landed in the cache: a fresh
        // lookup with no deadline simulates and completes normally.
        let good = run_cached(b, &cfg, false).expect("runs");
        assert!(!good.report.timed_out, "cache must not have been poisoned");
        let after = stats();
        assert!(after.misses >= before.misses + 2, "both lookups were misses");
    }

    #[test]
    fn generous_deadline_matches_undeadlined_run() {
        let b = Bench::Fft { n: 64 };
        let cfg = BuildCfg::revel(1);
        let plain = run_cached(b, &cfg, false).expect("runs");
        let far = Some(Instant::now() + std::time::Duration::from_secs(600));
        let with = run_cached_deadline(b, &cfg, false, far).expect("runs");
        assert_eq!(plain.cycles, with.cycles);
        assert!(!with.report.deadline_expired);
    }

    #[test]
    fn single_flight_dedups_concurrent_misses() {
        // 8 threads race one cold key; single-flight must simulate it once.
        let b = Bench::Solver { n: 16 };
        let cfg = BuildCfg::dataflow_baseline(1);
        let before = stats();
        let items: Vec<u32> = (0..8).collect();
        let runs = par_map_jobs(&items, 8, |_| run_cached(b, &cfg, false).expect("runs"));
        let after = stats();
        for r in &runs {
            assert_eq!(r.cycles, runs[0].cycles);
        }
        assert_eq!(
            after.misses,
            before.misses + 1,
            "exactly one simulation for eight concurrent requests"
        );
        assert!(after.hits >= before.hits + 7, "the other seven are hits");
    }

    #[test]
    fn cycle_counters_track_distinct_runs() {
        let before = stats();
        let b = Bench::Gemm { m: 4, k: 4, p: 8 };
        let cfg = BuildCfg::revel(1);
        let run = run_cached(b, &cfg, false).expect("runs");
        let after = stats();
        // Lower bounds only: other tests in this binary run concurrently
        // and may add their own cycles.
        assert!(
            after.sim_cycles >= before.sim_cycles + run.cycles,
            "sim-cycle counter must grow by at least this run: {before:?} -> {after:?}"
        );
        assert!(after.skipped_cycles <= after.sim_cycles);
        assert!(after.skipped_pct() >= 0.0 && after.skipped_pct() <= 100.0);
        // A repeat is a hit and must not re-count cycles; assert indirectly
        // by checking the entry count didn't change for this key.
        let again = run_cached(b, &cfg, false).expect("runs");
        assert_eq!(run.cycles, again.cycles);
    }

    #[test]
    fn cached_runs_record_the_oblivious_certificate() {
        let b = Bench::Fft { n: 64 };
        let cfg = BuildCfg::revel(1);
        let run = run_cached(b, &cfg, false).expect("runs");
        assert!(run.oblivious, "suite kernels are statically data-oblivious");
        let s = stats();
        assert!(s.oblivious_entries >= 1, "certified entry must be counted: {s:?}");
        assert!(
            s.oblivious_entries <= s.run_entries,
            "certified entries are a subset of cached runs: {s:?}"
        );
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let b = Bench::Solver { n: 12 };
        let revel = run_cached(b, &BuildCfg::revel(1), false).expect("runs");
        let systolic = run_cached(b, &BuildCfg::systolic_baseline(1), false).expect("runs");
        assert_ne!(revel.cycles, systolic.cycles, "different archs must not share an entry");
    }

    #[test]
    fn parallel_compare_matches_serial() {
        // The determinism claim the whole engine rests on: fanned-out,
        // cache-warmed comparisons equal fresh serial ones cycle-for-cycle.
        let benches = [Bench::Solver { n: 12 }, Bench::Fft { n: 64 }];
        let par = par_map_jobs(&benches, 2, |b| compare_cached(*b).expect("runs"));
        for (b, c) in benches.iter().zip(&par) {
            let serial = compare_cached(*b).expect("runs");
            assert_eq!(c.revel.cycles, serial.revel.cycles, "{}", b.name());
            assert_eq!(c.systolic_cycles, serial.systolic_cycles, "{}", b.name());
            assert_eq!(c.dataflow_cycles, serial.dataflow_cycles, "{}", b.name());
        }
    }

    #[test]
    fn fault_runs_bypass_and_never_poison_the_cache() {
        use revel_sim::{FaultPlan, FAULT_DEAD_PE};
        // A key no other test in this binary touches, so the clean lookup
        // below exercises a genuinely cold entry.
        let b = Bench::Qr { n: 12 };
        let cfg = BuildCfg::revel(1);
        let before = stats();
        // Enough dead-PE events across a wide window that at least one
        // lands on a configured region (seed-pinned; asserted below).
        let plan = FaultPlan::new(7, 8, 4096).with_kinds(FAULT_DEAD_PE);
        let run = run_fault_injected(b, &cfg, plan).expect("runs");
        let snap = run.report.fault.as_ref().expect("fault plan carried => snapshot present");
        assert!(snap.any_applied(), "seed 7 must land at least one dead-PE event");
        assert!(run.report.faulted());
        assert_eq!(run.verified, Err("fault injected".to_string()));
        let mid = stats();
        assert!(
            mid.fault_bypasses > before.fault_bypasses,
            "fault run must count as a bypass: {before:?} -> {mid:?}"
        );
        // The faulted result must not be visible to clean lookups: the same
        // key simulates fresh and completes unfaulted.
        let clean = run_cached(b, &cfg, false).expect("runs");
        assert!(clean.report.fault.is_none(), "clean run must carry no fault section");
        assert!(clean.verified.is_ok(), "cache must serve an unpoisoned result");
        assert_ne!(clean.cycles, 0);
    }

    #[test]
    fn degraded_runs_bypass_the_cache() {
        use revel_fabric::FabricMask;
        let b = Bench::Fft { n: 64 };
        let cfg = BuildCfg::revel(1);
        let before = stats();
        // Mask one systolic tile: the scheduler repairs around it and the
        // run still verifies (degraded, not broken).
        let mask = FabricMask { dead_pes: 1, dead_links: 0 };
        let run = run_degraded(b, &cfg, mask).expect("schedulable around one dead PE");
        assert!(run.verified.is_ok(), "degraded run must still verify: {:?}", run.verified);
        let after = stats();
        assert!(
            after.fault_bypasses > before.fault_bypasses,
            "degraded run must count as a bypass: {before:?} -> {after:?}"
        );
    }

    /// Serializes the tests that assert exact deltas on the batch counters
    /// (`batched_replays`, `trace_hits`): the counters are process-global,
    /// so two batch tests interleaving would see each other's bumps.
    static BATCH_COUNTER_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn batched_replay_matches_independent_full_simulations() {
        let _serial = BATCH_COUNTER_LOCK.lock().expect("batch counter lock");
        let b = Bench::Fft { n: 64 };
        let cfg = BuildCfg::revel(1);
        let seeds = [2u64, 3, 4];
        let before = stats();
        let batch = run_batched(b, &cfg, &seeds).expect("batched run");
        let after = stats();
        assert!(batch.replayed, "a certified cell must take the replay path");
        assert_eq!(batch.runs.len(), seeds.len());
        assert_eq!(
            after.batched_replays,
            before.batched_replays + seeds.len() as u64,
            "one replay per dataset: {before:?} -> {after:?}"
        );
        for (seed, run) in seeds.iter().zip(&batch.runs) {
            run.assert_ok(&format!("fft batched seed {seed}"));
            let full =
                run_workload_with(b.workload_seeded(*seed).as_ref(), &cfg, cfg.sim_options())
                    .expect("full sim");
            full.assert_ok(&format!("fft full seed {seed}"));
            assert_eq!(run.cycles, full.cycles, "seed {seed}: oblivious timing must match");
            assert_eq!(
                run.report.canonical_text(),
                full.report.canonical_text(),
                "seed {seed}: replayed report must be byte-identical to full simulation"
            );
        }
        // A second batch of the same cell reuses the cached trace.
        let mid = stats();
        let again = run_batched(b, &cfg, &seeds).expect("batched rerun");
        let last = stats();
        assert!(again.replayed);
        assert!(last.trace_hits > mid.trace_hits, "second batch must hit the trace cache");
    }

    #[test]
    fn perturbed_batches_never_take_the_replay_path() {
        use revel_sim::FaultPlan;
        let _serial = BATCH_COUNTER_LOCK.lock().expect("batch counter lock");
        let b = Bench::Fft { n: 64 };
        let cfg = BuildCfg::revel(1);
        let seeds = [5u64, 6];
        let opts = SimOptions { fault_plan: Some(FaultPlan::new(7, 2, 4096)), ..cfg.sim_options() };
        let before = stats();
        let batch = run_batched_with(b, &cfg, &seeds, opts).expect("perturbed batch");
        let after = stats();
        assert!(!batch.replayed, "fault injection must force full simulation");
        // `>=`: the fault/degraded bypass tests in this binary bump the
        // same counter concurrently.
        assert!(
            after.fault_bypasses >= before.fault_bypasses + seeds.len() as u64,
            "each perturbed dataset counts as a bypass: {before:?} -> {after:?}"
        );
        assert_eq!(
            after.batched_replays, before.batched_replays,
            "no perturbed dataset may reach the replayer"
        );
        let degraded = SimOptions {
            fabric_mask: FabricMask { dead_pes: 1, dead_links: 0 },
            ..cfg.sim_options()
        };
        let batch = run_batched_with(b, &cfg, &seeds, degraded).expect("degraded batch");
        assert!(!batch.replayed, "a degraded fabric must force full simulation");
        assert_eq!(stats().batched_replays, after.batched_replays);
    }

    #[test]
    fn contended_deadline_fallback_keeps_lookup_accounting_exact() {
        // Satellite fix: a waiter that gives up on someone else's in-flight
        // run used to simulate uncached without bumping any counter,
        // breaking `hits + misses + deadline_fallbacks == lookups`. Claim a
        // key nobody else in this binary touches and watch a deadlined
        // lookup fall back.
        let b = Bench::Svd { n: 12 };
        let cfg = BuildCfg::dataflow_baseline(1);
        let key = RunKey { bench: b, cfg, batch: false };
        let e = engine();
        e.runs.lock().expect("run cache lock").claim(key);
        let before = stats();
        let deadline = Some(Instant::now() + std::time::Duration::from_millis(50));
        let run = run_cached_deadline(b, &cfg, false, deadline).expect("falls back uncached");
        let after = stats();
        // Release the synthetic claim before asserting, so a failure here
        // cannot hang other tests waiting on the key.
        e.runs.lock().expect("run cache lock").release_claim(&key);
        e.runs_done.notify_all();
        assert!(run.report.timed_out, "expired-deadline fallback surfaces as timed_out");
        assert!(run.report.deadline_expired);
        assert_eq!(
            after.deadline_fallbacks,
            before.deadline_fallbacks + 1,
            "the fallback must be counted: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn hit_rate_is_well_defined() {
        let zero = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            capacity: 1,
            run_entries: 0,
            lint_entries: 0,
            sim_cycles: 0,
            skipped_cycles: 0,
            fault_bypasses: 0,
            oblivious_entries: 0,
            deadline_fallbacks: 0,
            trace_hits: 0,
            batched_replays: 0,
            disk_hits: 0,
            warm_start_entries: 0,
            disk_cold_starts: 0,
        };
        assert_eq!(zero.hit_rate(), 0.0);
        let mixed = CacheStats { hits: 3, misses: 1, ..zero };
        assert!((mixed.hit_rate() - 0.75).abs() < 1e-12);
    }
}
