//! The disk-backed persistent result-cache tier.
//!
//! A restarted server process loses the in-memory run cache, and every
//! cell it was keeping hot must re-simulate — seconds of annealing and
//! cycle-level simulation per cell. But a completed run is a pure function
//! of its `(Bench, BuildCfg)` fingerprint, and its serveable surface
//! (cycles, commands issued, verification verdict, canonical report text)
//! is tiny. This module persists exactly that surface so a restarted
//! shard warm-starts from disk instead of re-simulating.
//!
//! ## On-disk layout
//!
//! A tier directory holds two files:
//!
//! * `segment.log` — an **append-only segment**: every newly simulated
//!   run is appended as one self-checking record. Appends are flushed
//!   immediately; a crash can only truncate the tail, never corrupt the
//!   prefix.
//! * `snapshot.bin` — a **compacted snapshot** of the whole index,
//!   written to a temporary file, fsynced, then atomically renamed into
//!   place ([`PersistentTier::snapshot`]); the segment is truncated
//!   afterwards. A reader therefore sees either the old snapshot or the
//!   new one, never a half-written hybrid.
//!
//! Both files share one format: an 8-byte magic + format-version header,
//! then a sequence of records. Each record carries its 128-bit key
//! fingerprint, the persisted run fields, and a CRC-32 over everything
//! before the checksum. Loading stops at the first record that fails its
//! CRC, truncates mid-field, or overruns a sanity bound — the valid
//! prefix is kept (append-only means it is trustworthy) and the failure
//! surfaces as a structured [`ColdStart`], **never** a panic. A snapshot
//! with the wrong format version is skipped whole: its record layout
//! cannot be trusted even where the CRCs pass.
//!
//! The tier never stores timed-out, faulted, or degraded runs; the
//! engine only appends results it also admitted to the in-memory cache,
//! so every disk entry is a completed, trustworthy run.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File-format version. Bump whenever the record layout (or the
/// fingerprint recipe in [`fingerprint`]) changes; old files then surface
/// as a structured version-mismatch cold start instead of misdecoding.
pub const FORMAT_VERSION: u32 = 1;

/// Magic prefix of every tier file.
const MAGIC: &[u8; 8] = b"RVLCACH\0";

/// Sanity bound on one persisted string (verification error or canonical
/// text). A corrupted length field must not make the loader allocate
/// gigabytes before the CRC catches it.
const MAX_FIELD_BYTES: u32 = 16 * 1024 * 1024;

/// The append-only segment file name inside a tier directory.
const SEGMENT: &str = "segment.log";

/// The compacted snapshot file name inside a tier directory.
const SNAPSHOT: &str = "snapshot.bin";

/// 128-bit cache-key fingerprint: two independent 64-bit FNV-1a passes
/// over a stable rendering of the key. Deliberately *not* the standard
/// library's `DefaultHasher` (its algorithm and keying are unspecified
/// and may change between releases); an on-disk format needs a hash that
/// is stable across processes, toolchains, and time.
pub fn fingerprint(key: &str) -> (u64, u64) {
    (fnv1a(key.as_bytes(), 0xcbf2_9ce4_8422_2325), fnv1a(key.as_bytes(), 0x9e37_79b9_7f4a_7c15))
}

fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320) over `bytes`.
/// Table-free: tier records are small and loads are one-shot, so the
/// 8-iterations-per-byte loop is not worth a lookup table.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The serveable surface of one completed run, as persisted on disk.
///
/// Deliberately *not* a full `WorkloadRun`: the simulator's in-memory
/// report (stepper internals, deadlock snapshots, fault sections) exists
/// only for runs that actually executed in this process. What a server
/// needs to answer a repeat request is the result summary plus the
/// byte-stable canonical report text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedRun {
    /// Total machine cycles of the completed run.
    pub cycles: u64,
    /// Stream commands issued by the control core.
    pub commands_issued: u64,
    /// Numerical verification verdict (`Err` carries the failure text).
    pub verified: Result<(), String>,
    /// The run report's byte-stable canonical rendering
    /// (`RunReport::canonical_text`), the artifact warm comparisons diff.
    pub canonical_text: String,
}

/// One file the loader had to give up on, surfaced as data (never a
/// panic): the affected shard cold-starts for the lost suffix and
/// re-simulates on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColdStart {
    /// File name inside the tier directory (`segment.log` /
    /// `snapshot.bin`).
    pub file: String,
    /// What was wrong (truncated record, checksum mismatch, version
    /// mismatch, ...).
    pub reason: String,
}

impl std::fmt::Display for ColdStart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file, self.reason)
    }
}

/// What [`PersistentTier::open`] recovered from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmStart {
    /// Entries loaded into the index (serveable without simulation).
    pub entries: usize,
    /// Files (or file suffixes) that failed validation and were skipped.
    pub cold_starts: Vec<ColdStart>,
}

/// A disk-backed result-cache tier: an in-memory index over an
/// append-only segment plus an atomically-replaced snapshot.
pub struct PersistentTier {
    dir: PathBuf,
    index: HashMap<(u64, u64), PersistedRun>,
    segment: File,
    /// Set when an append failed partway: the segment tail may hold a
    /// torn record, and appending more would bury valid records behind
    /// garbage (the loader keeps only the prefix before the first
    /// invalid byte). A wounded tier refuses further appends — lookups
    /// still serve the in-memory index — until [`PersistentTier::snapshot`]
    /// rewrites the whole tier and heals it.
    wounded: bool,
}

impl PersistentTier {
    /// Opens (creating if needed) the tier rooted at `dir` and loads
    /// every valid record: the snapshot first, then the segment written
    /// since it. Corrupt files degrade to [`ColdStart`] entries in the
    /// returned [`WarmStart`]; only real I/O failures (permissions, a
    /// vanished directory) are `Err`.
    ///
    /// # Errors
    /// Propagates directory-creation and file-open failures.
    pub fn open(dir: &Path) -> io::Result<(PersistentTier, WarmStart)> {
        fs::create_dir_all(dir)?;
        let mut index = HashMap::new();
        let mut cold_starts = Vec::new();
        for file in [SNAPSHOT, SEGMENT] {
            let path = dir.join(file);
            if !path.exists() {
                continue;
            }
            let bytes = fs::read(&path)?;
            if let Err(reason) = load_records(&bytes, file, &mut index) {
                cold_starts.push(ColdStart { file: file.to_string(), reason });
            }
        }
        let segment_path = dir.join(SEGMENT);
        let fresh = !segment_path.exists();
        let mut segment = OpenOptions::new().create(true).append(true).open(&segment_path)?;
        if fresh {
            segment.write_all(&header())?;
            segment.flush()?;
        }
        let warm = WarmStart { entries: index.len(), cold_starts };
        Ok((PersistentTier { dir: dir.to_path_buf(), index, segment, wounded: false }, warm))
    }

    /// Entries currently serveable from the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Looks `fp` up in the in-memory index (which mirrors disk exactly).
    pub fn lookup(&self, fp: (u64, u64)) -> Option<&PersistedRun> {
        self.index.get(&fp)
    }

    /// Appends `run` under `fp` to the segment and the index. A
    /// fingerprint already present is skipped (`Ok(false)`): the tier is
    /// append-only, and one entry per configuration is the invariant the
    /// snapshot compaction restores anyway.
    ///
    /// The record is written in two halves around the
    /// `persist.append.mid-write` failpoint, so a torture schedule can
    /// abort the process with a genuinely torn record on disk — a
    /// crash between two `write_all` calls is the real-world shape an
    /// in-kernel buffer cannot paper over. `persist.append.before-write`
    /// and `persist.append.before-flush` bracket the other two
    /// crash-critical instants.
    ///
    /// # Errors
    /// Propagates write failures (the index is only updated after the
    /// record is flushed, so a failed append never desyncs index and
    /// disk). Any failure wounds the tier (see [`PersistentTier::wounded`]):
    /// the segment tail may be torn, and further appends are refused
    /// with an error until a successful [`PersistentTier::snapshot`]
    /// rewrites the tier. This is the fsync-gate lesson — after a failed
    /// write the on-disk state is unknown, and pretending otherwise is
    /// how torn tails bury good records.
    pub fn append(&mut self, fp: (u64, u64), run: &PersistedRun) -> io::Result<bool> {
        if self.index.contains_key(&fp) {
            return Ok(false);
        }
        if self.wounded {
            return Err(io::Error::other(
                "tier wounded by an earlier failed append; snapshot() heals it",
            ));
        }
        let record = encode_record(fp, run);
        if let Err(e) = self.write_record(&record) {
            self.wounded = true;
            return Err(e);
        }
        self.index.insert(fp, run.clone());
        Ok(true)
    }

    fn write_record(&mut self, record: &[u8]) -> io::Result<()> {
        revel_failpoint::hit_with("persist.append.before-write", || self.ctx())?;
        let split = record.len() / 2;
        self.segment.write_all(&record[..split])?;
        revel_failpoint::hit_with("persist.append.mid-write", || self.ctx())?;
        self.segment.write_all(&record[split..])?;
        revel_failpoint::hit_with("persist.append.before-flush", || self.ctx())?;
        self.segment.flush()
    }

    /// Failpoint context: arms filtered on this tier's directory fire
    /// only here, which is what keeps concurrent tests independent.
    fn ctx(&self) -> String {
        self.dir.display().to_string()
    }

    /// True when an earlier failed append left the segment tail in an
    /// unknown state and the tier is refusing appends.
    pub fn wounded(&self) -> bool {
        self.wounded
    }

    /// Compacts the whole index into a fresh snapshot: write to a
    /// temporary file, fsync, atomically rename over `snapshot.bin`, then
    /// truncate the segment. A crash at any point leaves either the old
    /// or the new snapshot in place (plus, at worst, a stale segment
    /// whose records are re-deduplicated on load).
    ///
    /// Failpoints bracket the three crash-critical instants —
    /// `persist.snapshot.pre-sync` (data written, not yet durable),
    /// `persist.snapshot.pre-rename` (durable under the temporary name),
    /// and `persist.snapshot.post-rename` (renamed, segment not yet
    /// truncated) — so torture schedules can crash at each and prove a
    /// reader still sees a whole snapshot, old or new.
    ///
    /// # Errors
    /// Propagates write/rename failures. A failure leaves the previous
    /// snapshot and the full segment untouched, so nothing is lost; the
    /// tier's wounded flag (if set) stays set until a snapshot succeeds.
    pub fn snapshot(&mut self) -> io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&header())?;
            // Deterministic record order (sorted by fingerprint), so
            // identical indices produce byte-identical snapshots.
            let mut keys: Vec<(u64, u64)> = self.index.keys().copied().collect();
            keys.sort_unstable();
            for fp in keys {
                let run = &self.index[&fp];
                f.write_all(&encode_record(fp, run))?;
            }
            revel_failpoint::hit_with("persist.snapshot.pre-sync", || self.ctx())?;
            f.sync_all()?;
        }
        revel_failpoint::hit_with("persist.snapshot.pre-rename", || self.ctx())?;
        fs::rename(&tmp, self.dir.join(SNAPSHOT))?;
        revel_failpoint::hit_with("persist.snapshot.post-rename", || self.ctx())?;
        // The snapshot now covers everything; restart the segment.
        let mut segment = File::create(self.dir.join(SEGMENT))?;
        segment.write_all(&header())?;
        segment.flush()?;
        self.segment = OpenOptions::new().append(true).open(self.dir.join(SEGMENT))?;
        // The rewrite subsumed any torn segment tail: the tier is whole.
        self.wounded = false;
        Ok(())
    }
}

fn header() -> Vec<u8> {
    let mut h = MAGIC.to_vec();
    h.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

fn encode_record(fp: (u64, u64), run: &PersistedRun) -> Vec<u8> {
    let err = match &run.verified {
        Ok(()) => "",
        Err(e) => e.as_str(),
    };
    let mut r = Vec::with_capacity(49 + err.len() + run.canonical_text.len());
    r.extend_from_slice(&fp.0.to_le_bytes());
    r.extend_from_slice(&fp.1.to_le_bytes());
    r.extend_from_slice(&run.cycles.to_le_bytes());
    r.extend_from_slice(&run.commands_issued.to_le_bytes());
    r.push(u8::from(run.verified.is_ok()));
    r.extend_from_slice(&(err.len() as u32).to_le_bytes());
    r.extend_from_slice(err.as_bytes());
    r.extend_from_slice(&(run.canonical_text.len() as u32).to_le_bytes());
    r.extend_from_slice(run.canonical_text.as_bytes());
    let crc = crc32(&r);
    r.extend_from_slice(&crc.to_le_bytes());
    r
}

/// A bounds-checked little-endian cursor over one loaded file.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(format!("truncated record at byte {}", self.pos)),
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()?;
        if len > MAX_FIELD_BYTES {
            return Err(format!("field length {len} exceeds the {MAX_FIELD_BYTES}-byte bound"));
        }
        String::from_utf8(self.take(len as usize)?.to_vec()).map_err(|_| "not UTF-8".to_string())
    }
}

/// Loads every valid record of one file into `index` (later records win,
/// which is how segment entries shadow snapshot entries on reload).
/// Returns `Err(reason)` at the first invalid byte; everything decoded
/// before it stays in `index`.
fn load_records(
    bytes: &[u8],
    file: &str,
    index: &mut HashMap<(u64, u64), PersistedRun>,
) -> Result<(), String> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(MAGIC.len()).map_err(|_| "missing file header".to_string())? != MAGIC {
        return Err(format!("{file}: bad magic (not a tier file)"));
    }
    let version = c.u32().map_err(|_| "missing format version".to_string())?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "{file}: format version {version} does not match this build's {FORMAT_VERSION}"
        ));
    }
    while c.pos < bytes.len() {
        let start = c.pos;
        let fp = (c.u64()?, c.u64()?);
        let cycles = c.u64()?;
        let commands_issued = c.u64()?;
        let verified_byte = c.u8()?;
        let err = c.string()?;
        let canonical_text = c.string()?;
        let stored_crc = c.u32()?;
        let actual = crc32(&bytes[start..c.pos - 4]);
        if stored_crc != actual {
            return Err(format!(
                "checksum mismatch in record at byte {start} \
                 (stored {stored_crc:#010x}, computed {actual:#010x})"
            ));
        }
        if verified_byte > 1 {
            return Err(format!("record at byte {start}: bad verified flag {verified_byte}"));
        }
        let verified = if verified_byte == 1 { Ok(()) } else { Err(err) };
        index.insert(fp, PersistedRun { cycles, commands_issued, verified, canonical_text });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("revel-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(i: u64) -> ((u64, u64), PersistedRun) {
        (
            fingerprint(&format!("cell-{i}")),
            PersistedRun {
                cycles: 1000 + i,
                commands_issued: 40 + i,
                verified: if i.is_multiple_of(2) {
                    Ok(())
                } else {
                    Err(format!("lane {i} diverged"))
                },
                canonical_text: format!("cycles={}\ncommands_issued={}\n", 1000 + i, 40 + i),
            },
        )
    }

    #[test]
    fn fingerprint_is_stable_and_collision_resistant_for_distinct_keys() {
        // Pinned values: the fingerprint is an on-disk format. If this
        // test breaks, FORMAT_VERSION must be bumped.
        assert_eq!(fingerprint(""), (0xcbf2_9ce4_8422_2325, 0x9e37_79b9_7f4a_7c15));
        assert_ne!(fingerprint("a"), fingerprint("b"));
        assert_eq!(fingerprint("gemm|revel"), fingerprint("gemm|revel"));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_lookup_roundtrip_survives_reopen() {
        let dir = tmp_dir("roundtrip");
        let (mut tier, warm) = PersistentTier::open(&dir).expect("open");
        assert_eq!(warm.entries, 0);
        assert!(warm.cold_starts.is_empty());
        let (fp, run) = sample(1);
        assert!(tier.append(fp, &run).expect("append"));
        assert!(!tier.append(fp, &run).expect("dup append"), "duplicates are skipped");
        assert_eq!(tier.lookup(fp), Some(&run));
        drop(tier);
        let (tier, warm) = PersistentTier::open(&dir).expect("reopen");
        assert_eq!(warm.entries, 1, "segment records survive a restart");
        assert!(warm.cold_starts.is_empty());
        assert_eq!(tier.lookup(fp), Some(&run));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_and_segment_restarts() {
        let dir = tmp_dir("snapshot");
        let (mut tier, _) = PersistentTier::open(&dir).expect("open");
        let entries: Vec<_> = (0..5).map(sample).collect();
        for (fp, run) in &entries {
            tier.append(*fp, run).expect("append");
        }
        tier.snapshot().expect("snapshot");
        // Post-snapshot the segment holds only its header.
        assert_eq!(fs::read(dir.join(SEGMENT)).expect("segment"), header());
        // New appends after the snapshot land in the fresh segment...
        let (fp6, run6) = sample(6);
        tier.append(fp6, &run6).expect("append post-snapshot");
        drop(tier);
        // ...and a reopen sees snapshot + segment merged.
        let (tier, warm) = PersistentTier::open(&dir).expect("reopen");
        assert_eq!(warm.entries, 6);
        assert!(warm.cold_starts.is_empty());
        for (fp, run) in &entries {
            assert_eq!(tier.lookup(*fp), Some(run));
        }
        assert_eq!(tier.lookup(fp6), Some(&run6));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_segment_keeps_the_valid_prefix_and_reports_a_cold_start() {
        let dir = tmp_dir("truncated");
        let (mut tier, _) = PersistentTier::open(&dir).expect("open");
        let (fp1, run1) = sample(1);
        let (fp2, run2) = sample(2);
        tier.append(fp1, &run1).expect("append");
        tier.append(fp2, &run2).expect("append");
        drop(tier);
        // Chop the last 7 bytes off the segment, as a crash mid-append
        // would.
        let path = dir.join(SEGMENT);
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
        let (tier, warm) = PersistentTier::open(&dir).expect("reopen");
        assert_eq!(warm.entries, 1, "the intact first record survives");
        assert_eq!(warm.cold_starts.len(), 1);
        assert_eq!(warm.cold_starts[0].file, SEGMENT);
        assert!(
            warm.cold_starts[0].reason.contains("truncated")
                || warm.cold_starts[0].reason.contains("checksum"),
            "structured reason, got: {}",
            warm.cold_starts[0].reason
        );
        assert_eq!(tier.lookup(fp1), Some(&run1));
        assert_eq!(tier.lookup(fp2), None, "the torn record must not be served");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_fails_the_checksum_and_reports_a_cold_start() {
        let dir = tmp_dir("bitflip");
        let (mut tier, _) = PersistentTier::open(&dir).expect("open");
        let (fp, run) = sample(3);
        tier.append(fp, &run).expect("append");
        drop(tier);
        // Flip one bit inside the record payload (past the 12-byte
        // header, before the trailing CRC).
        let path = dir.join(SEGMENT);
        let mut bytes = fs::read(&path).expect("read");
        let target = header().len() + 20;
        bytes[target] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        let (tier, warm) = PersistentTier::open(&dir).expect("reopen");
        assert_eq!(warm.entries, 0, "a corrupt record must not be served");
        assert_eq!(warm.cold_starts.len(), 1);
        assert!(
            warm.cold_starts[0].reason.contains("checksum mismatch"),
            "got: {}",
            warm.cold_starts[0].reason
        );
        assert!(tier.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatched_snapshot_is_skipped_whole() {
        let dir = tmp_dir("version");
        let (mut tier, _) = PersistentTier::open(&dir).expect("open");
        let (fp, run) = sample(4);
        tier.append(fp, &run).expect("append");
        tier.snapshot().expect("snapshot");
        drop(tier);
        // Rewrite the snapshot's version field to a future format.
        let path = dir.join(SNAPSHOT);
        let mut bytes = fs::read(&path).expect("read");
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).expect("rewrite");
        let (tier, warm) = PersistentTier::open(&dir).expect("reopen");
        assert_eq!(warm.entries, 0, "a version-mismatched snapshot must not be decoded");
        assert_eq!(warm.cold_starts.len(), 1);
        assert_eq!(warm.cold_starts[0].file, SNAPSHOT);
        assert!(
            warm.cold_starts[0].reason.contains("format version 99"),
            "got: {}",
            warm.cold_starts[0].reason
        );
        assert!(tier.lookup(fp).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_length_field_is_rejected_before_allocation() {
        let dir = tmp_dir("oversized");
        let (mut tier, _) = PersistentTier::open(&dir).expect("open");
        let (fp, run) = sample(5);
        tier.append(fp, &run).expect("append");
        drop(tier);
        // Overwrite the error-length field (offset 33 into the record)
        // with an absurd length; the loader must reject it without trying
        // to allocate.
        let path = dir.join(SEGMENT);
        let mut bytes = fs::read(&path).expect("read");
        let off = header().len() + 33;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &bytes).expect("rewrite");
        let (_, warm) = PersistentTier::open(&dir).expect("reopen");
        assert_eq!(warm.entries, 0);
        assert!(
            warm.cold_starts[0].reason.contains("exceeds"),
            "got: {}",
            warm.cold_starts[0].reason
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite property test: truncate a K-record segment at **every**
    /// byte offset and reopen. The recovered index must be exactly the
    /// records whose CRC frames fit below the cut — never a panic, never
    /// a garbage record, and a cold start exactly when the cut is not on
    /// a record boundary.
    #[test]
    fn every_truncation_offset_recovers_exactly_the_full_crc_frames() {
        let dir = tmp_dir("every-offset");
        let (mut tier, _) = PersistentTier::open(&dir).expect("open");
        // Varied record lengths (the error and text fields grow with i),
        // so cuts land in every field of every record shape.
        let entries: Vec<_> = (0..4).map(sample).collect();
        // Byte offset at which each record ends (monotone; starts with
        // the 12-byte header).
        let mut bounds = vec![header().len()];
        for (fp, run) in &entries {
            tier.append(*fp, run).expect("append");
            bounds.push(fs::metadata(dir.join(SEGMENT)).expect("segment metadata").len() as usize);
        }
        drop(tier);
        let full = fs::read(dir.join(SEGMENT)).expect("read segment");
        assert_eq!(*bounds.last().expect("bounds"), full.len());

        for cut in 0..=full.len() {
            fs::write(dir.join(SEGMENT), &full[..cut]).expect("truncate");
            let (reopened, warm) = PersistentTier::open(&dir).expect("reopen never errors");
            // Number of whole records at or below the cut (the header
            // itself counts as "record 0 fits").
            let whole =
                if cut >= bounds[0] { bounds.iter().filter(|&&b| b <= cut).count() - 1 } else { 0 };
            assert_eq!(warm.entries, whole, "cut at byte {cut}: exactly the full frames load");
            for (i, (fp, run)) in entries.iter().enumerate() {
                let expect = if i < whole { Some(run) } else { None };
                assert_eq!(reopened.lookup(*fp), expect, "cut at byte {cut}, record {i}");
            }
            let clean = bounds.contains(&cut);
            assert_eq!(
                warm.cold_starts.len(),
                usize::from(!clean),
                "cut at byte {cut}: a cold start exactly when the cut tears a frame \
                 (got {:?})",
                warm.cold_starts
            );
            // `open` appended nothing and the truncated file is intact
            // for the next iteration's rewrite.
            drop(reopened);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// An injected I/O error mid-append (the failpoint splits the record
    /// write in half) wounds the tier: the failed entry is not indexed,
    /// further appends are refused, and a reopen serves exactly the
    /// records from before the failure — the torn half-record degrades to
    /// a structured cold start.
    #[test]
    fn failed_append_wounds_the_tier_and_reopen_recovers_the_prefix() {
        let dir = tmp_dir("wounded");
        let (mut tier, _) = PersistentTier::open(&dir).expect("open");
        let (fp1, run1) = sample(1);
        tier.append(fp1, &run1).expect("clean append");
        let filter = dir.display().to_string();
        revel_failpoint::arm(
            "persist.append.mid-write",
            &filter,
            revel_failpoint::Action::InjectError,
            1,
            false,
        );
        let (fp2, run2) = sample(2);
        let err = tier.append(fp2, &run2).expect_err("mid-write failpoint fires");
        assert!(err.to_string().contains("injected"), "got: {err}");
        revel_failpoint::disarm("persist.append.mid-write", &filter);
        assert!(tier.wounded(), "a failed append wounds the tier");
        assert_eq!(tier.lookup(fp2), None, "the failed entry is not indexed");
        let (fp3, run3) = sample(3);
        let refused = tier.append(fp3, &run3).expect_err("wounded tier refuses appends");
        assert!(refused.to_string().contains("wounded"), "got: {refused}");
        drop(tier);
        let (reopened, warm) = PersistentTier::open(&dir).expect("reopen");
        assert_eq!(warm.entries, 1, "the pre-failure prefix survives");
        assert_eq!(warm.cold_starts.len(), 1, "the torn half-record is a cold start");
        assert_eq!(reopened.lookup(fp1), Some(&run1));
        let _ = fs::remove_dir_all(&dir);
    }

    /// A successful snapshot heals a wounded tier (the rewrite subsumes
    /// the torn tail), and a snapshot that fails before its atomic
    /// rename leaves every record serveable on reopen.
    #[test]
    fn snapshot_heals_a_wounded_tier_and_a_failed_snapshot_loses_nothing() {
        let dir = tmp_dir("snapheal");
        let (mut tier, _) = PersistentTier::open(&dir).expect("open");
        let (fp1, run1) = sample(1);
        tier.append(fp1, &run1).expect("append");
        let filter = dir.display().to_string();
        // Wound the tier...
        revel_failpoint::arm(
            "persist.append.mid-write",
            &filter,
            revel_failpoint::Action::InjectError,
            1,
            false,
        );
        let (fp2, run2) = sample(2);
        tier.append(fp2, &run2).expect_err("wounding append");
        revel_failpoint::disarm("persist.append.mid-write", &filter);
        // ...then fail a snapshot before the rename: still wounded, and
        // nothing on disk moved.
        revel_failpoint::arm(
            "persist.snapshot.pre-rename",
            &filter,
            revel_failpoint::Action::InjectError,
            1,
            false,
        );
        tier.snapshot().expect_err("pre-rename failpoint fires");
        revel_failpoint::disarm("persist.snapshot.pre-rename", &filter);
        assert!(tier.wounded(), "a failed snapshot does not heal");
        // A clean snapshot heals: appends work again and a reopen sees
        // every surviving record with no cold start.
        tier.snapshot().expect("clean snapshot");
        assert!(!tier.wounded());
        tier.append(fp2, &run2).expect("healed tier accepts appends");
        drop(tier);
        let (reopened, warm) = PersistentTier::open(&dir).expect("reopen");
        assert_eq!(warm.entries, 2);
        assert!(warm.cold_starts.is_empty(), "the rewrite subsumed the torn tail");
        assert_eq!(reopened.lookup(fp1), Some(&run1));
        assert_eq!(reopened.lookup(fp2), Some(&run2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_a_cold_start_not_a_panic() {
        let dir = tmp_dir("foreign");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(SEGMENT), b"this is not a tier file at all").expect("write");
        let (tier, warm) = PersistentTier::open(&dir).expect("open");
        assert!(tier.is_empty());
        assert_eq!(warm.cold_starts.len(), 1);
        assert!(warm.cold_starts[0].reason.contains("bad magic"));
        let _ = fs::remove_dir_all(&dir);
    }
}
