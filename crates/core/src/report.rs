//! Minimal plain-text table rendering for the experiment harness.

use std::fmt;

/// A formatted result table (one per paper figure/table).
#[derive(Debug, Clone)]
pub struct Table {
    /// Title, e.g. `"Figure 19: batch-1 speedup over DSP"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes (calibration caveats, paper reference values).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Geometric mean of a numeric column (ignores unparsable cells).
    ///
    /// Returns `None` when no cell in the column parses — an absent
    /// measurement must never masquerade as a `0.0x` speedup.
    pub fn geomean(&self, col: usize) -> Option<f64> {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|r| r[col].trim_end_matches('x').parse::<f64>().ok())
            .collect();
        if vals.is_empty() {
            return None;
        }
        Some((vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a ratio as `"12.3x"`.
pub fn ratio(n: f64) -> String {
    format!("{n:.2}x")
}

/// Formats a percentage.
pub fn pct(n: f64) -> String {
    format!("{:.1}%", n * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["kernel", "speedup"]);
        t.row(vec!["cholesky".into(), ratio(3.5)]);
        t.row(vec!["fft".into(), ratio(12.0)]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("=== T ==="));
        assert!(s.contains("| cholesky | 3.50x"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn geomean_of_ratios() {
        let mut t = Table::new("T", &["k", "s"]);
        t.row(vec!["a".into(), "2.00x".into()]);
        t.row(vec!["b".into(), "8.00x".into()]);
        assert!((t.geomean(1).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_empty_or_unparsable_column_is_none() {
        let empty = Table::new("T", &["k", "s"]);
        assert_eq!(empty.geomean(1), None);
        let mut words = Table::new("T", &["k", "s"]);
        words.row(vec!["a".into(), "n/a".into()]);
        assert_eq!(words.geomean(1), None);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
