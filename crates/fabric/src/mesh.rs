use crate::{FuMix, LaneConfig};
use revel_dfg::FuClass;

/// What occupies a mesh tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// A dedicated systolic PE hosting a single FU of the given class.
    Systolic(FuClass),
    /// A temporally-shared dataflow PE (triggered instructions); can
    /// execute any op class from its instruction buffer.
    Dataflow,
}

/// Grid coordinate of a mesh tile: `(x, y)` with `x` growing rightwards and
/// `y` growing downwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MeshCoord {
    /// Column.
    pub x: u8,
    /// Row.
    pub y: u8,
}

impl core::fmt::Display for MeshCoord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// One tile of the lane's spatial mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeSlot {
    /// Position in the grid.
    pub coord: MeshCoord,
    /// Tile contents.
    pub kind: PeKind,
}

/// A directed link of the circuit-switched mesh between 4-neighbour tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MeshLink {
    /// Source tile.
    pub from: MeshCoord,
    /// Destination tile.
    pub to: MeshCoord,
}

/// The spatial mesh of one lane: a `width × height` grid of PE tiles joined
/// by a 64-bit circuit-switched mesh (Table III).
///
/// Dataflow PEs are placed in the bottom-right corner, matching the paper's
/// note that they are "grouped on the right side of the spatial fabric to
/// enable simpler physical design". Systolic FU classes are interleaved so
/// multipliers and adders are never far apart (inner loops alternate them),
/// with the rare div/sqrt units near the dataflow corner where outer-loop
/// regions live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
    slots: Vec<PeSlot>,
}

impl Mesh {
    /// Builds the mesh for a lane configuration.
    ///
    /// # Panics
    /// Panics if the FU mix plus dataflow PEs don't exactly fill the grid.
    pub fn for_lane(cfg: &LaneConfig) -> Self {
        Self::build(cfg.mesh_width, cfg.mesh_height, cfg.fu_mix, cfg.num_dataflow_pes)
    }

    /// Builds a mesh with explicit parameters.
    ///
    /// # Panics
    /// Panics if `fu_mix.total() + num_dpes != width * height`.
    pub fn build(width: usize, height: usize, fu_mix: FuMix, num_dpes: usize) -> Self {
        assert_eq!(
            fu_mix.total() + num_dpes,
            width * height,
            "FU mix ({}) + dataflow PEs ({num_dpes}) must fill the {width}x{height} grid",
            fu_mix.total()
        );
        // Assign dataflow PEs to the last tiles (bottom-right, row-major),
        // div/sqrt just before them, then interleave adders/multipliers.
        let total = width * height;
        let mut kinds = Vec::with_capacity(total);
        let mut add_left = fu_mix.adders;
        let mut mul_left = fu_mix.multipliers;
        let systolic_tiles = total - num_dpes;
        let div_start = systolic_tiles - fu_mix.div_sqrt;
        for idx in 0..total {
            let kind = if idx >= systolic_tiles {
                PeKind::Dataflow
            } else if idx >= div_start {
                PeKind::Systolic(FuClass::DivSqrt)
            } else if (idx % 2 == 0 && add_left > 0) || mul_left == 0 {
                add_left -= 1;
                PeKind::Systolic(FuClass::Adder)
            } else {
                mul_left -= 1;
                PeKind::Systolic(FuClass::Multiplier)
            };
            kinds.push(kind);
        }
        let slots = kinds
            .into_iter()
            .enumerate()
            .map(|(idx, kind)| PeSlot {
                coord: MeshCoord { x: (idx % width) as u8, y: (idx / width) as u8 },
                kind,
            })
            .collect();
        Mesh { width, height, slots }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// All tiles in row-major order.
    pub fn slots(&self) -> &[PeSlot] {
        &self.slots
    }

    /// The tile at a coordinate.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the grid.
    pub fn slot(&self, c: MeshCoord) -> &PeSlot {
        assert!((c.x as usize) < self.width && (c.y as usize) < self.height);
        &self.slots[c.y as usize * self.width + c.x as usize]
    }

    /// Tiles hosting an FU compatible with `class` in systolic mode.
    pub fn systolic_slots(&self, class: FuClass) -> impl Iterator<Item = &PeSlot> {
        self.slots.iter().filter(move |s| s.kind == PeKind::Systolic(class))
    }

    /// Tiles hosting dataflow PEs.
    pub fn dataflow_slots(&self) -> impl Iterator<Item = &PeSlot> {
        self.slots.iter().filter(|s| s.kind == PeKind::Dataflow)
    }

    /// 4-neighbourhood of a coordinate.
    pub fn neighbors(&self, c: MeshCoord) -> Vec<MeshCoord> {
        let mut out = Vec::with_capacity(4);
        if c.x > 0 {
            out.push(MeshCoord { x: c.x - 1, y: c.y });
        }
        if (c.x as usize) + 1 < self.width {
            out.push(MeshCoord { x: c.x + 1, y: c.y });
        }
        if c.y > 0 {
            out.push(MeshCoord { x: c.x, y: c.y - 1 });
        }
        if (c.y as usize) + 1 < self.height {
            out.push(MeshCoord { x: c.x, y: c.y + 1 });
        }
        out
    }

    /// All directed links of the mesh.
    pub fn links(&self) -> Vec<MeshLink> {
        let mut links = Vec::new();
        for s in &self.slots {
            for n in self.neighbors(s.coord) {
                links.push(MeshLink { from: s.coord, to: n });
            }
        }
        links
    }

    /// Manhattan distance between two tiles (lower bound on hop count).
    pub fn manhattan(&self, a: MeshCoord, b: MeshCoord) -> u32 {
        (a.x.abs_diff(b.x) + a.y.abs_diff(b.y)) as u32
    }

    /// Row-major index of a tile (the bit position used by
    /// [`FabricMask::dead_pes`]).
    pub fn tile_index(&self, c: MeshCoord) -> usize {
        c.y as usize * self.width + c.x as usize
    }

    /// The tile at a row-major index (inverse of [`Mesh::tile_index`]).
    ///
    /// # Panics
    /// Panics if `idx` is outside the grid.
    pub fn tile_at(&self, idx: usize) -> MeshCoord {
        assert!(idx < self.width * self.height, "tile index {idx} outside the grid");
        MeshCoord { x: (idx % self.width) as u8, y: (idx / self.width) as u8 }
    }

    /// Bit position of the undirected link between two 4-neighbour tiles
    /// (the indexing used by [`FabricMask::dead_links`]): each tile owns
    /// bit `2·tile_index` for its rightward link and `2·tile_index + 1`
    /// for its downward link. `None` when the tiles are not 4-neighbours.
    pub fn link_bit(&self, a: MeshCoord, b: MeshCoord) -> Option<u32> {
        let (lo, hi) = if (a.y, a.x) <= (b.y, b.x) { (a, b) } else { (b, a) };
        if lo.y == hi.y && lo.x + 1 == hi.x {
            Some(2 * self.tile_index(lo) as u32)
        } else if lo.x == hi.x && lo.y + 1 == hi.y {
            Some(2 * self.tile_index(lo) as u32 + 1)
        } else {
            None
        }
    }
}

/// A mask of permanently-failed fabric resources, used by the degraded
/// scheduler to re-place and re-route a program around broken hardware.
///
/// Bit `i` of `dead_pes` marks the tile at row-major index `i`
/// ([`Mesh::tile_index`]) as dead: no instruction may be placed there. A
/// dead PE keeps a live mesh switch — routes may still pass *through* its
/// tile — because in the REVEL design the circuit-switched network is a
/// separate structure from the FU datapath, and a stuck FU does not sever
/// the crossbar around it.
///
/// Bit `b` of `dead_links` marks the *undirected* mesh link at bit
/// position `b` ([`Mesh::link_bit`]) as dead in both directions: no route
/// may traverse it.
///
/// The 64-bit fields cover meshes up to 64 tiles / 32 tiles-worth of link
/// bits, comfortably beyond the paper's 5×5 lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FabricMask {
    /// Bit `i` set ⇒ the tile at row-major index `i` is dead.
    pub dead_pes: u64,
    /// Bit `b` set ⇒ the undirected link at bit position `b` is dead.
    pub dead_links: u64,
}

impl FabricMask {
    /// The fully-healthy fabric (no dead resources).
    pub const HEALTHY: FabricMask = FabricMask { dead_pes: 0, dead_links: 0 };

    /// True when nothing is masked out (scheduling is unchanged).
    pub fn is_empty(&self) -> bool {
        self.dead_pes == 0 && self.dead_links == 0
    }

    /// True when the tile at row-major index `idx` is dead.
    pub fn pe_dead(&self, idx: usize) -> bool {
        idx < 64 && self.dead_pes & (1u64 << idx) != 0
    }

    /// True when the undirected link at bit position `bit` is dead.
    pub fn link_dead(&self, bit: u32) -> bool {
        bit < 64 && self.dead_links & (1u64 << bit) != 0
    }

    /// Marks the tile at row-major index `idx` dead.
    ///
    /// # Panics
    /// Panics if `idx` is 64 or more (outside the mask's coverage).
    pub fn with_dead_pe(mut self, idx: usize) -> Self {
        assert!(idx < 64, "tile index {idx} outside the 64-bit mask");
        self.dead_pes |= 1u64 << idx;
        self
    }

    /// Marks the undirected link at bit position `bit` dead.
    ///
    /// # Panics
    /// Panics if `bit` is 64 or more (outside the mask's coverage).
    pub fn with_dead_link(mut self, bit: u32) -> Self {
        assert!(bit < 64, "link bit {bit} outside the 64-bit mask");
        self.dead_links |= 1u64 << bit;
        self
    }

    /// Number of dead tiles.
    pub fn dead_pe_count(&self) -> u32 {
        self.dead_pes.count_ones()
    }

    /// Row-major indices of dead tiles, ascending.
    pub fn dead_pe_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..64).filter(|i| self.pe_dead(*i))
    }
}

impl core::fmt::Display for FabricMask {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pes={:#x} links={:#x}", self.dead_pes, self.dead_links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_mesh() -> Mesh {
        Mesh::for_lane(&LaneConfig::paper_default())
    }

    #[test]
    fn mesh_fills_grid() {
        let m = paper_mesh();
        assert_eq!(m.slots().len(), 25);
        assert_eq!(m.systolic_slots(FuClass::Adder).count(), 12);
        assert_eq!(m.systolic_slots(FuClass::Multiplier).count(), 9);
        assert_eq!(m.systolic_slots(FuClass::DivSqrt).count(), 3);
        assert_eq!(m.dataflow_slots().count(), 1);
    }

    #[test]
    fn dataflow_pe_in_bottom_right() {
        let m = paper_mesh();
        let d: Vec<_> = m.dataflow_slots().collect();
        assert_eq!(d[0].coord, MeshCoord { x: 4, y: 4 });
    }

    #[test]
    fn neighbors_at_corner_and_center() {
        let m = paper_mesh();
        assert_eq!(m.neighbors(MeshCoord { x: 0, y: 0 }).len(), 2);
        assert_eq!(m.neighbors(MeshCoord { x: 2, y: 2 }).len(), 4);
        assert_eq!(m.neighbors(MeshCoord { x: 2, y: 0 }).len(), 3);
    }

    #[test]
    fn link_count() {
        // 2 * (w-1) * h horizontal + 2 * w * (h-1) vertical directed links.
        let m = paper_mesh();
        assert_eq!(m.links().len(), 2 * 4 * 5 + 2 * 5 * 4);
    }

    #[test]
    fn manhattan_distance() {
        let m = paper_mesh();
        assert_eq!(m.manhattan(MeshCoord { x: 0, y: 0 }, MeshCoord { x: 4, y: 4 }), 8);
        assert_eq!(m.manhattan(MeshCoord { x: 2, y: 3 }, MeshCoord { x: 2, y: 3 }), 0);
    }

    #[test]
    #[should_panic(expected = "must fill")]
    fn wrong_mix_panics() {
        let _ = Mesh::build(2, 2, FuMix { adders: 1, multipliers: 1, div_sqrt: 1 }, 2);
    }

    #[test]
    fn slot_lookup_roundtrip() {
        let m = paper_mesh();
        for s in m.slots() {
            assert_eq!(m.slot(s.coord), s);
        }
    }

    #[test]
    fn tile_index_roundtrip() {
        let m = paper_mesh();
        for (i, s) in m.slots().iter().enumerate() {
            assert_eq!(m.tile_index(s.coord), i);
            assert_eq!(m.tile_at(i), s.coord);
        }
    }

    #[test]
    fn link_bits_are_unique_and_undirected() {
        let m = paper_mesh();
        let mut seen = std::collections::HashSet::new();
        for l in m.links() {
            let bit = m.link_bit(l.from, l.to).expect("4-neighbour link");
            assert_eq!(m.link_bit(l.to, l.from), Some(bit), "undirected indexing");
            assert!(bit < 64, "bit {bit} fits the mask");
            seen.insert(bit);
        }
        // 40 undirected links in a 5×5 mesh (each counted once).
        assert_eq!(seen.len(), 40);
        // Non-adjacent tiles have no link bit.
        assert_eq!(m.link_bit(MeshCoord { x: 0, y: 0 }, MeshCoord { x: 2, y: 0 }), None);
        assert_eq!(m.link_bit(MeshCoord { x: 0, y: 0 }, MeshCoord { x: 1, y: 1 }), None);
    }

    #[test]
    fn fabric_mask_basics() {
        let mask = FabricMask::HEALTHY;
        assert!(mask.is_empty());
        let mask = mask.with_dead_pe(3).with_dead_pe(17).with_dead_link(5);
        assert!(!mask.is_empty());
        assert!(mask.pe_dead(3) && mask.pe_dead(17) && !mask.pe_dead(4));
        assert!(mask.link_dead(5) && !mask.link_dead(6));
        assert_eq!(mask.dead_pe_count(), 2);
        assert_eq!(mask.dead_pe_indices().collect::<Vec<_>>(), vec![3, 17]);
        assert_eq!(mask.to_string(), "pes=0x20008 links=0x20");
    }
}
