use crate::{FuMix, LaneConfig};
use revel_dfg::FuClass;

/// What occupies a mesh tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// A dedicated systolic PE hosting a single FU of the given class.
    Systolic(FuClass),
    /// A temporally-shared dataflow PE (triggered instructions); can
    /// execute any op class from its instruction buffer.
    Dataflow,
}

/// Grid coordinate of a mesh tile: `(x, y)` with `x` growing rightwards and
/// `y` growing downwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MeshCoord {
    /// Column.
    pub x: u8,
    /// Row.
    pub y: u8,
}

impl core::fmt::Display for MeshCoord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// One tile of the lane's spatial mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeSlot {
    /// Position in the grid.
    pub coord: MeshCoord,
    /// Tile contents.
    pub kind: PeKind,
}

/// A directed link of the circuit-switched mesh between 4-neighbour tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MeshLink {
    /// Source tile.
    pub from: MeshCoord,
    /// Destination tile.
    pub to: MeshCoord,
}

/// The spatial mesh of one lane: a `width × height` grid of PE tiles joined
/// by a 64-bit circuit-switched mesh (Table III).
///
/// Dataflow PEs are placed in the bottom-right corner, matching the paper's
/// note that they are "grouped on the right side of the spatial fabric to
/// enable simpler physical design". Systolic FU classes are interleaved so
/// multipliers and adders are never far apart (inner loops alternate them),
/// with the rare div/sqrt units near the dataflow corner where outer-loop
/// regions live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
    slots: Vec<PeSlot>,
}

impl Mesh {
    /// Builds the mesh for a lane configuration.
    ///
    /// # Panics
    /// Panics if the FU mix plus dataflow PEs don't exactly fill the grid.
    pub fn for_lane(cfg: &LaneConfig) -> Self {
        Self::build(cfg.mesh_width, cfg.mesh_height, cfg.fu_mix, cfg.num_dataflow_pes)
    }

    /// Builds a mesh with explicit parameters.
    ///
    /// # Panics
    /// Panics if `fu_mix.total() + num_dpes != width * height`.
    pub fn build(width: usize, height: usize, fu_mix: FuMix, num_dpes: usize) -> Self {
        assert_eq!(
            fu_mix.total() + num_dpes,
            width * height,
            "FU mix ({}) + dataflow PEs ({num_dpes}) must fill the {width}x{height} grid",
            fu_mix.total()
        );
        // Assign dataflow PEs to the last tiles (bottom-right, row-major),
        // div/sqrt just before them, then interleave adders/multipliers.
        let total = width * height;
        let mut kinds = Vec::with_capacity(total);
        let mut add_left = fu_mix.adders;
        let mut mul_left = fu_mix.multipliers;
        let systolic_tiles = total - num_dpes;
        let div_start = systolic_tiles - fu_mix.div_sqrt;
        for idx in 0..total {
            let kind = if idx >= systolic_tiles {
                PeKind::Dataflow
            } else if idx >= div_start {
                PeKind::Systolic(FuClass::DivSqrt)
            } else if (idx % 2 == 0 && add_left > 0) || mul_left == 0 {
                add_left -= 1;
                PeKind::Systolic(FuClass::Adder)
            } else {
                mul_left -= 1;
                PeKind::Systolic(FuClass::Multiplier)
            };
            kinds.push(kind);
        }
        let slots = kinds
            .into_iter()
            .enumerate()
            .map(|(idx, kind)| PeSlot {
                coord: MeshCoord { x: (idx % width) as u8, y: (idx / width) as u8 },
                kind,
            })
            .collect();
        Mesh { width, height, slots }
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// All tiles in row-major order.
    pub fn slots(&self) -> &[PeSlot] {
        &self.slots
    }

    /// The tile at a coordinate.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the grid.
    pub fn slot(&self, c: MeshCoord) -> &PeSlot {
        assert!((c.x as usize) < self.width && (c.y as usize) < self.height);
        &self.slots[c.y as usize * self.width + c.x as usize]
    }

    /// Tiles hosting an FU compatible with `class` in systolic mode.
    pub fn systolic_slots(&self, class: FuClass) -> impl Iterator<Item = &PeSlot> {
        self.slots.iter().filter(move |s| s.kind == PeKind::Systolic(class))
    }

    /// Tiles hosting dataflow PEs.
    pub fn dataflow_slots(&self) -> impl Iterator<Item = &PeSlot> {
        self.slots.iter().filter(|s| s.kind == PeKind::Dataflow)
    }

    /// 4-neighbourhood of a coordinate.
    pub fn neighbors(&self, c: MeshCoord) -> Vec<MeshCoord> {
        let mut out = Vec::with_capacity(4);
        if c.x > 0 {
            out.push(MeshCoord { x: c.x - 1, y: c.y });
        }
        if (c.x as usize) + 1 < self.width {
            out.push(MeshCoord { x: c.x + 1, y: c.y });
        }
        if c.y > 0 {
            out.push(MeshCoord { x: c.x, y: c.y - 1 });
        }
        if (c.y as usize) + 1 < self.height {
            out.push(MeshCoord { x: c.x, y: c.y + 1 });
        }
        out
    }

    /// All directed links of the mesh.
    pub fn links(&self) -> Vec<MeshLink> {
        let mut links = Vec::new();
        for s in &self.slots {
            for n in self.neighbors(s.coord) {
                links.push(MeshLink { from: s.coord, to: n });
            }
        }
        links
    }

    /// Manhattan distance between two tiles (lower bound on hop count).
    pub fn manhattan(&self, a: MeshCoord, b: MeshCoord) -> u32 {
        (a.x.abs_diff(b.x) + a.y.abs_diff(b.y)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_mesh() -> Mesh {
        Mesh::for_lane(&LaneConfig::paper_default())
    }

    #[test]
    fn mesh_fills_grid() {
        let m = paper_mesh();
        assert_eq!(m.slots().len(), 25);
        assert_eq!(m.systolic_slots(FuClass::Adder).count(), 12);
        assert_eq!(m.systolic_slots(FuClass::Multiplier).count(), 9);
        assert_eq!(m.systolic_slots(FuClass::DivSqrt).count(), 3);
        assert_eq!(m.dataflow_slots().count(), 1);
    }

    #[test]
    fn dataflow_pe_in_bottom_right() {
        let m = paper_mesh();
        let d: Vec<_> = m.dataflow_slots().collect();
        assert_eq!(d[0].coord, MeshCoord { x: 4, y: 4 });
    }

    #[test]
    fn neighbors_at_corner_and_center() {
        let m = paper_mesh();
        assert_eq!(m.neighbors(MeshCoord { x: 0, y: 0 }).len(), 2);
        assert_eq!(m.neighbors(MeshCoord { x: 2, y: 2 }).len(), 4);
        assert_eq!(m.neighbors(MeshCoord { x: 2, y: 0 }).len(), 3);
    }

    #[test]
    fn link_count() {
        // 2 * (w-1) * h horizontal + 2 * w * (h-1) vertical directed links.
        let m = paper_mesh();
        assert_eq!(m.links().len(), 2 * 4 * 5 + 2 * 5 * 4);
    }

    #[test]
    fn manhattan_distance() {
        let m = paper_mesh();
        assert_eq!(m.manhattan(MeshCoord { x: 0, y: 0 }, MeshCoord { x: 4, y: 4 }), 8);
        assert_eq!(m.manhattan(MeshCoord { x: 2, y: 3 }, MeshCoord { x: 2, y: 3 }), 0);
    }

    #[test]
    #[should_panic(expected = "must fill")]
    fn wrong_mix_panics() {
        let _ = Mesh::build(2, 2, FuMix { adders: 1, multipliers: 1, div_sqrt: 1 }, 2);
    }

    #[test]
    fn slot_lookup_roundtrip() {
        let m = paper_mesh();
        for s in m.slots() {
            assert_eq!(m.slot(s.coord), s);
        }
    }
}
