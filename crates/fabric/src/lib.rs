//! # revel-fabric — hardware description of the REVEL accelerator
//!
//! Structural and physical parameters of the REVEL design from *"A Hybrid
//! Systolic-Dataflow Architecture for Inductive Matrix Algorithms"* (HPCA
//! 2020): lane composition (Table III), the hybrid systolic-dataflow mesh
//! topology the spatial scheduler maps onto, and the post-synthesis area and
//! energy constants (Table VI) used by the event-based power model.
//!
//! The default configuration ([`RevelConfig::paper_default`]) matches the
//! paper: 8 lanes at 1.25 GHz, each with a 5×5 circuit-switched mesh hosting
//! 24 systolic PEs + 1 dataflow PE, six input / six output vector ports
//! (2×512 b, 2×256 b, 1×128 b, 1×64 b), an 8 KB private scratchpad with one
//! 512-bit read and write port, 8-entry stream table and command queue, and
//! a shared 128 KB scratchpad.
//!
//! ```
//! use revel_fabric::RevelConfig;
//! let cfg = RevelConfig::paper_default();
//! assert_eq!(cfg.num_lanes, 8);
//! assert_eq!(cfg.lane.in_port_widths[..4], [8, 8, 4, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cost;
mod mesh;

pub use config::{FuMix, LaneConfig, RevelConfig};
pub use cost::{
    AreaBreakdown, CostModel, EnergyModel, EventCounts, RelativePeArea, DPE_AREA_UM2, SPE_AREA_UM2,
};
pub use mesh::{FabricMask, Mesh, MeshCoord, MeshLink, PeKind, PeSlot};
