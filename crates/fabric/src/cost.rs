//! Area and energy constants (28 nm, from the paper's Synopsys DC
//! synthesis, Table VI and §VIII-A) plus the event-based power model.
//!
//! We cannot re-synthesize RTL in this reproduction, so — like the paper,
//! which converts synthesis results into an event-based model — we seed an
//! event-energy model with the published component numbers and count events
//! in the simulator.

use revel_dfg::FuClass;

/// Area of one systolic PE in µm² (§VIII-A: "2822 µm²").
pub const SPE_AREA_UM2: f64 = 2822.0;
/// Area of one tagged-dataflow PE in µm² (§VIII-A: "16581 µm²", >5× sPE).
pub const DPE_AREA_UM2: f64 = 16581.0;

/// Relative PE area of the four spatial-architecture taxonomy quadrants
/// (Fig. 7): 64-bit PE, shared PEs with 32 instruction slots and 8
/// register-file entries, excluding FP units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativePeArea {
    /// Dedicated PE, static schedule ("systolic") — the baseline.
    pub systolic: f64,
    /// Shared PE, static schedule ("CGRA").
    pub cgra: f64,
    /// Dedicated PE, dynamic schedule ("ordered dataflow").
    pub ordered_dataflow: f64,
    /// Shared PE, dynamic schedule ("tagged dataflow").
    pub tagged_dataflow: f64,
}

impl RelativePeArea {
    /// The paper's Fig. 7 estimates.
    pub fn paper() -> Self {
        RelativePeArea { systolic: 1.0, cgra: 2.6, ordered_dataflow: 2.1, tagged_dataflow: 5.8 }
    }
}

/// Published area (mm²) and power (mW) breakdown of one lane and the full
/// accelerator (Table VI, 28 nm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Dedicated (circuit-switched) network, 24 switches.
    pub dedicated_net_mm2: f64,
    /// Dedicated network power.
    pub dedicated_net_mw: f64,
    /// Temporal network (1 dPE's tagged interconnect).
    pub temporal_net_mm2: f64,
    /// Temporal network power.
    pub temporal_net_mw: f64,
    /// Functional units.
    pub func_units_mm2: f64,
    /// Functional unit power.
    pub func_units_mw: f64,
    /// Control: ports, XFER, stream control.
    pub control_mm2: f64,
    /// Control power.
    pub control_mw: f64,
    /// 8 KB private scratchpad.
    pub spad_mm2: f64,
    /// Scratchpad power.
    pub spad_mw: f64,
    /// One vector lane total.
    pub lane_mm2: f64,
    /// One vector lane power.
    pub lane_mw: f64,
    /// RISC-V control core.
    pub core_mm2: f64,
    /// Control core power.
    pub core_mw: f64,
    /// Full REVEL (8 lanes + core + shared SPAD).
    pub revel_mm2: f64,
    /// Full REVEL power.
    pub revel_mw: f64,
}

impl AreaBreakdown {
    /// Table VI of the paper.
    pub fn paper() -> Self {
        AreaBreakdown {
            dedicated_net_mm2: 0.06,
            dedicated_net_mw: 71.40,
            temporal_net_mm2: 0.02,
            temporal_net_mw: 14.81,
            func_units_mm2: 0.07,
            func_units_mw: 74.04,
            control_mm2: 0.03,
            control_mw: 62.92,
            spad_mm2: 0.06,
            spad_mw: 4.64,
            lane_mm2: 0.22,
            lane_mw: 207.90,
            core_mm2: 0.04,
            core_mw: 19.91,
            revel_mm2: 1.93,
            revel_mw: 1663.3,
        }
    }

    /// Total fabric (networks + FUs) area for one lane.
    pub fn fabric_mm2(&self) -> f64 {
        self.dedicated_net_mm2 + self.temporal_net_mm2 + self.func_units_mm2
    }

    /// Total fabric power for one lane.
    pub fn fabric_mw(&self) -> f64 {
        self.dedicated_net_mw + self.temporal_net_mw + self.func_units_mw
    }
}

/// Counts of energy-bearing events accumulated by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventCounts {
    /// FU operations on adders.
    pub fu_add_ops: u64,
    /// FU operations on multipliers.
    pub fu_mul_ops: u64,
    /// FU operations on divide/sqrt units.
    pub fu_div_ops: u64,
    /// Instructions executed on dataflow PEs (includes tag matching cost).
    pub dpe_instrs: u64,
    /// Words traversing circuit-switched mesh hops.
    pub switch_hops: u64,
    /// Words pushed into or popped from ports.
    pub port_words: u64,
    /// Words read/written at private scratchpads.
    pub spad_words: u64,
    /// Words read/written at the shared scratchpad.
    pub shared_spad_words: u64,
    /// Words crossing the XFER / inter-lane buses.
    pub bus_words: u64,
    /// Stream commands constructed and issued by the control core.
    pub commands: u64,
}

impl EventCounts {
    /// Accumulates another event count into this one.
    pub fn add(&mut self, other: &EventCounts) {
        self.fu_add_ops += other.fu_add_ops;
        self.fu_mul_ops += other.fu_mul_ops;
        self.fu_div_ops += other.fu_div_ops;
        self.dpe_instrs += other.dpe_instrs;
        self.switch_hops += other.switch_hops;
        self.port_words += other.port_words;
        self.spad_words += other.spad_words;
        self.shared_spad_words += other.shared_spad_words;
        self.bus_words += other.bus_words;
        self.commands += other.commands;
    }

    /// Records one FU operation of the given class.
    pub fn count_fu_op(&mut self, class: FuClass, n: u64) {
        match class {
            FuClass::Adder => self.fu_add_ops += n,
            FuClass::Multiplier => self.fu_mul_ops += n,
            FuClass::DivSqrt => self.fu_div_ops += n,
        }
    }

    /// Total floating-point operations (for FLOP-rate reporting).
    pub fn total_fu_ops(&self) -> u64 {
        self.fu_add_ops + self.fu_mul_ops + self.fu_div_ops + self.dpe_instrs
    }
}

/// Per-event energies (pJ) and static power, calibrated so that a fully
/// active lane lands at the Table VI lane power (≈208 mW at 1.25 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Adder op energy.
    pub fu_add_pj: f64,
    /// Multiplier op energy.
    pub fu_mul_pj: f64,
    /// Divide/sqrt op energy (per issued op, amortizing iterations).
    pub fu_div_pj: f64,
    /// Dataflow-PE instruction energy (FU + tag match + scheduler).
    pub dpe_instr_pj: f64,
    /// Energy per word per mesh hop.
    pub switch_hop_pj: f64,
    /// Energy per word through a port FIFO (push or pop).
    pub port_word_pj: f64,
    /// Energy per word at a private scratchpad.
    pub spad_word_pj: f64,
    /// Energy per word at the shared scratchpad.
    pub shared_spad_word_pj: f64,
    /// Energy per word on a data bus.
    pub bus_word_pj: f64,
    /// Energy per stream command (control core construct + ship).
    pub command_pj: f64,
    /// Static/clock power per lane (mW).
    pub lane_static_mw: f64,
    /// Static/clock power of the control core (mW).
    pub core_static_mw: f64,
}

impl EnergyModel {
    /// 28 nm calibration. At full activity (≈24 FU ops + network + port +
    /// SPAD traffic per cycle at 1.25 GHz) one lane dissipates ≈208 mW,
    /// matching Table VI.
    pub fn paper_28nm() -> Self {
        EnergyModel {
            fu_add_pj: 1.4,
            fu_mul_pj: 3.1,
            fu_div_pj: 7.5,
            dpe_instr_pj: 6.0,
            switch_hop_pj: 1.0,
            port_word_pj: 0.45,
            spad_word_pj: 1.1,
            shared_spad_word_pj: 2.6,
            bus_word_pj: 0.9,
            command_pj: 9.0,
            lane_static_mw: 38.0,
            core_static_mw: 8.0,
        }
    }

    /// Dynamic energy of an event batch in pJ.
    pub fn dynamic_pj(&self, ev: &EventCounts) -> f64 {
        ev.fu_add_ops as f64 * self.fu_add_pj
            + ev.fu_mul_ops as f64 * self.fu_mul_pj
            + ev.fu_div_ops as f64 * self.fu_div_pj
            + ev.dpe_instrs as f64 * self.dpe_instr_pj
            + ev.switch_hops as f64 * self.switch_hop_pj
            + ev.port_words as f64 * self.port_word_pj
            + ev.spad_words as f64 * self.spad_word_pj
            + ev.shared_spad_words as f64 * self.shared_spad_word_pj
            + ev.bus_words as f64 * self.bus_word_pj
            + ev.commands as f64 * self.command_pj
    }

    /// Average power in mW over an execution of `cycles` cycles at
    /// `clock_ghz`, with `active_lanes` lanes powered on.
    ///
    /// # Panics
    /// Panics if `cycles` is zero.
    pub fn power_mw(
        &self,
        ev: &EventCounts,
        cycles: u64,
        clock_ghz: f64,
        active_lanes: usize,
    ) -> f64 {
        assert!(cycles > 0, "power over zero cycles is undefined");
        let time_ns = cycles as f64 / clock_ghz;
        let dyn_mw = self.dynamic_pj(ev) / time_ns; // pJ/ns = mW
        dyn_mw + self.lane_static_mw * active_lanes as f64 + self.core_static_mw
    }
}

/// Aggregate cost model: area composition helpers used by the Fig. 24/25
/// and Table VII experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// The component breakdown used for totals.
    pub breakdown: AreaBreakdown,
}

impl CostModel {
    /// Paper-calibrated cost model.
    pub fn paper() -> Self {
        CostModel { breakdown: AreaBreakdown::paper() }
    }

    /// Area of a REVEL instance with a custom number of dataflow PEs per
    /// lane (Fig. 24 sensitivity): swapping a systolic PE for a dataflow PE
    /// costs the area difference of the two tile types.
    pub fn revel_mm2_with_dpes(&self, num_lanes: usize, dpes_per_lane: usize) -> f64 {
        let base_lane = self.breakdown.lane_mm2;
        let delta_per_dpe = (DPE_AREA_UM2 - SPE_AREA_UM2) / 1.0e6;
        let lane = base_lane + delta_per_dpe * (dpes_per_lane as f64 - 1.0);
        let shared =
            self.breakdown.revel_mm2 - self.breakdown.lane_mm2 * 8.0 - self.breakdown.core_mm2;
        lane * num_lanes as f64 + self.breakdown.core_mm2 + shared
    }

    /// Total REVEL area with the default configuration.
    pub fn revel_mm2(&self) -> f64 {
        self.breakdown.revel_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_consistency() {
        let b = AreaBreakdown::paper();
        // Published components sum to 0.15 vs the rounded 0.13 total.
        assert!((b.fabric_mm2() - 0.13).abs() < 0.025);
        assert!((b.fabric_mw() - 160.25).abs() < 0.01);
        // 8 lanes + core + shared spad ≈ full chip.
        assert!(b.lane_mm2 * 8.0 + b.core_mm2 <= b.revel_mm2);
    }

    #[test]
    fn dpe_is_much_larger_than_spe() {
        let ratio = DPE_AREA_UM2 / SPE_AREA_UM2;
        assert!(ratio > 5.0, "dPE/sPE area ratio {ratio}");
    }

    #[test]
    fn taxonomy_ordering() {
        let t = RelativePeArea::paper();
        assert!(t.systolic < t.ordered_dataflow);
        assert!(t.ordered_dataflow < t.cgra);
        assert!(t.cgra < t.tagged_dataflow);
    }

    #[test]
    fn full_activity_power_near_table_vi() {
        // One lane fully busy for 1000 cycles: ~20 FU ops, ~20 hops, 16
        // port words, 16 spad words per cycle.
        let ev = EventCounts {
            fu_add_ops: 11_000,
            fu_mul_ops: 8_000,
            fu_div_ops: 1_000,
            dpe_instrs: 1_000,
            switch_hops: 22_000,
            port_words: 16_000,
            spad_words: 16_000,
            shared_spad_words: 0,
            bus_words: 4_000,
            commands: 30,
        };
        let p = EnergyModel::paper_28nm().power_mw(&ev, 1000, 1.25, 1);
        assert!(
            p > 140.0 && p < 280.0,
            "fully-active lane power {p:.1} mW should be near Table VI's 208 mW"
        );
    }

    #[test]
    fn event_accumulation() {
        let mut a = EventCounts { fu_add_ops: 1, commands: 2, ..Default::default() };
        let b = EventCounts { fu_add_ops: 3, spad_words: 4, ..Default::default() };
        a.add(&b);
        assert_eq!(a.fu_add_ops, 4);
        assert_eq!(a.spad_words, 4);
        assert_eq!(a.commands, 2);
        let mut c = EventCounts::default();
        c.count_fu_op(FuClass::Multiplier, 5);
        assert_eq!(c.fu_mul_ops, 5);
        assert_eq!(c.total_fu_ops(), 5);
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn power_zero_cycles_panics() {
        let _ = EnergyModel::paper_28nm().power_mw(&EventCounts::default(), 0, 1.25, 1);
    }

    #[test]
    fn dpe_sensitivity_area_monotone() {
        let m = CostModel::paper();
        let a1 = m.revel_mm2_with_dpes(8, 1);
        let a4 = m.revel_mm2_with_dpes(8, 4);
        assert!(a4 > a1);
        assert!((a1 - m.revel_mm2()).abs() < 1e-9);
    }
}
