use revel_dfg::FuClass;

/// Functional-unit mix of one lane's fabric.
///
/// The paper provisions 14 adders, 9 multipliers and 3 div/sqrt units
/// (Table III) across a 5×5 mesh whose lower-right tile is the dataflow PE.
/// With 24 dedicated tiles we place 12 adders, 9 multipliers and 3 div/sqrt
/// units on systolic PEs; the remaining adder capacity lives in the dataflow
/// PE, which can execute any op class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuMix {
    /// Number of adder/ALU systolic PEs.
    pub adders: usize,
    /// Number of multiplier systolic PEs.
    pub multipliers: usize,
    /// Number of divide/square-root systolic PEs.
    pub div_sqrt: usize,
}

impl FuMix {
    /// Total systolic PE count.
    pub fn total(&self) -> usize {
        self.adders + self.multipliers + self.div_sqrt
    }

    /// Systolic PEs available for a given op class.
    pub fn count(&self, class: FuClass) -> usize {
        match class {
            FuClass::Adder => self.adders,
            FuClass::Multiplier => self.multipliers,
            FuClass::DivSqrt => self.div_sqrt,
        }
    }
}

/// Configuration of a single REVEL lane (Table III, "Revel Lane ×8").
#[derive(Debug, Clone, PartialEq)]
pub struct LaneConfig {
    /// Mesh width (PE tiles).
    pub mesh_width: usize,
    /// Mesh height (PE tiles).
    pub mesh_height: usize,
    /// Systolic FU mix.
    pub fu_mix: FuMix,
    /// Number of dataflow (temporal) PEs. The paper chooses 1 (Fig. 24).
    pub num_dataflow_pes: usize,
    /// Instruction slots per dataflow PE.
    pub dpe_instr_slots: usize,
    /// Maximum vector widths of the input ports, in 64-bit words. Programs
    /// configure each port to a logical width up to this hardware width.
    /// The default mix is Table III's vector ports (512 b / 256 b / 128 b)
    /// plus scalar software ports, matching the port identifiers the
    /// paper's kernel encodings use (Fig. 15/17 reference up to 9 ports);
    /// aggregate bandwidth matches Table III's 27 words per direction.
    pub in_port_widths: Vec<usize>,
    /// Maximum vector widths of the output ports, in 64-bit words.
    pub out_port_widths: Vec<usize>,
    /// Port FIFO depth, in vectors.
    pub port_fifo_depth: usize,
    /// Concurrent streams per lane (stream table entries).
    pub stream_table_entries: usize,
    /// Command queue entries.
    pub cmd_queue_entries: usize,
    /// Private scratchpad size in 64-bit words (8 KB).
    pub spad_words: usize,
    /// Private scratchpad bandwidth, words/cycle in each direction
    /// (512-bit 1R/1W port).
    pub spad_bw_words: usize,
    /// XFER data-bus bandwidth, words/cycle.
    pub xfer_bw_words: usize,
    /// Inter-lane data-bus bandwidth, words/cycle.
    pub inter_lane_bw_words: usize,
}

impl LaneConfig {
    /// The paper's lane (Table III).
    pub fn paper_default() -> Self {
        LaneConfig {
            mesh_width: 5,
            mesh_height: 5,
            fu_mix: FuMix { adders: 12, multipliers: 9, div_sqrt: 3 },
            num_dataflow_pes: 1,
            dpe_instr_slots: 32,
            in_port_widths: vec![8, 8, 4, 4, 2, 2, 1, 1, 1, 1, 1, 1],
            out_port_widths: vec![8, 8, 4, 4, 2, 2, 1, 1, 1, 1, 1, 1],
            port_fifo_depth: 4,
            stream_table_entries: 8,
            cmd_queue_entries: 8,
            spad_words: 8 * 1024 / 8,
            spad_bw_words: 8,
            xfer_bw_words: 8,
            inter_lane_bw_words: 8,
        }
    }

    /// The pure-systolic baseline lane (§III-B, "most resembles Softbrain"):
    /// every tile is a dedicated PE, no temporal execution.
    pub fn pure_systolic() -> Self {
        LaneConfig {
            fu_mix: FuMix { adders: 13, multipliers: 9, div_sqrt: 3 },
            num_dataflow_pes: 0,
            ..Self::paper_default()
        }
    }

    /// The pure tagged-dataflow baseline lane (§III-B, "most resembles
    /// Triggered Instructions"): every tile is a temporally-shared PE.
    pub fn pure_dataflow() -> Self {
        LaneConfig {
            fu_mix: FuMix { adders: 0, multipliers: 0, div_sqrt: 0 },
            num_dataflow_pes: 25,
            ..Self::paper_default()
        }
    }

    /// A lane with `n` dataflow PEs (Fig. 24 sensitivity study); dataflow
    /// tiles displace adder tiles.
    ///
    /// # Panics
    /// Panics if `n` is 0 or leaves no adders.
    pub fn with_dataflow_pes(n: usize) -> Self {
        let base = Self::paper_default();
        assert!((1..12).contains(&n), "dataflow PEs must be 1..12, got {n}");
        LaneConfig { fu_mix: FuMix { adders: 13 - n, ..base.fu_mix }, num_dataflow_pes: n, ..base }
    }

    /// Number of input ports.
    pub fn num_in_ports(&self) -> usize {
        self.in_port_widths.len()
    }

    /// Number of output ports.
    pub fn num_out_ports(&self) -> usize {
        self.out_port_widths.len()
    }

    /// Width (words) of input port `p`.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn in_port_width(&self, p: u8) -> usize {
        self.in_port_widths[p as usize]
    }

    /// Width (words) of output port `p`.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn out_port_width(&self, p: u8) -> usize {
        self.out_port_widths[p as usize]
    }

    /// Mesh tiles in this lane.
    pub fn mesh_tiles(&self) -> usize {
        self.mesh_width * self.mesh_height
    }
}

/// Configuration of the whole accelerator (Table III).
#[derive(Debug, Clone, PartialEq)]
pub struct RevelConfig {
    /// Number of vector lanes.
    pub num_lanes: usize,
    /// Per-lane configuration.
    pub lane: LaneConfig,
    /// Shared scratchpad size in words (128 KB).
    pub shared_spad_words: usize,
    /// Shared scratchpad bandwidth, words/cycle each direction.
    pub shared_spad_bw_words: usize,
    /// Control-core cycles to construct + issue one stream command. The
    /// RISC-V core has dedicated stream-command instructions (Table III),
    /// so a command costs one instruction plus operand setup — two cycles
    /// on the single-issue pipeline.
    pub cmd_issue_cycles: u64,
    /// Cycles to drain + reconfigure the fabric on a `Configure` command.
    pub reconfig_cycles: u64,
    /// Clock frequency in GHz (design meets timing at 1.25 GHz).
    pub clock_ghz: f64,
}

impl RevelConfig {
    /// The paper's full 8-lane accelerator (Table III).
    pub fn paper_default() -> Self {
        RevelConfig {
            num_lanes: 8,
            lane: LaneConfig::paper_default(),
            shared_spad_words: 128 * 1024 / 8,
            shared_spad_bw_words: 8,
            cmd_issue_cycles: 2,
            reconfig_cycles: 64,
            clock_ghz: 1.25,
        }
    }

    /// A single-lane configuration (used by batch-1 kernels that do not
    /// parallelize across lanes, e.g. SVD / Solver / FFT — Table V).
    pub fn single_lane() -> Self {
        RevelConfig { num_lanes: 1, ..Self::paper_default() }
    }

    /// Nanoseconds for `cycles` at the configured clock.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_ghz
    }

    /// The cycle at which a reconfiguration started at `now` completes.
    ///
    /// This is the fabric's contribution to the simulator's event horizon:
    /// between `now` and the returned deadline a draining lane's observable
    /// state cannot change, so a quiescent machine may skip straight to it.
    pub fn reconfig_deadline(&self, now: u64) -> u64 {
        now + self.reconfig_cycles
    }

    /// Peak floating-point throughput in FLOP/cycle (one op per FU).
    pub fn peak_flops_per_cycle(&self) -> f64 {
        (self.lane.fu_mix.total() + self.lane.num_dataflow_pes) as f64 * self.num_lanes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_iii() {
        let cfg = RevelConfig::paper_default();
        assert_eq!(cfg.num_lanes, 8);
        assert_eq!(cfg.lane.fu_mix.total(), 24);
        assert_eq!(cfg.lane.mesh_tiles(), 25);
        assert_eq!(cfg.lane.fu_mix.total() + cfg.lane.num_dataflow_pes, 25);
        assert_eq!(cfg.lane.spad_words, 1024); // 8 KB of 64-bit words
        assert_eq!(cfg.shared_spad_words, 16384); // 128 KB
        assert_eq!(cfg.lane.stream_table_entries, 8);
        assert_eq!(cfg.lane.cmd_queue_entries, 8);
        assert_eq!(cfg.lane.port_fifo_depth, 4);
        assert!((cfg.clock_ghz - 1.25).abs() < 1e-12);
    }

    #[test]
    fn port_widths() {
        let lane = LaneConfig::paper_default();
        assert_eq!(lane.in_port_width(0), 8);
        assert_eq!(lane.in_port_width(11), 1);
        assert_eq!(lane.num_in_ports(), 12);
        // Aggregate port bandwidth ~= Table III's 2*512 + 2*256 + 128 + 64
        // bits (27 words); ours is 32 words across 12 software ports
        // (the kernel encodings of Fig. 15/17 use up to 9-11 port ids).
        let words: usize = lane.in_port_widths.iter().sum();
        assert!((27..=34).contains(&words), "aggregate {words} words");
    }

    #[test]
    fn fu_mix_lookup() {
        let mix = LaneConfig::paper_default().fu_mix;
        assert_eq!(mix.count(FuClass::Adder), 12);
        assert_eq!(mix.count(FuClass::Multiplier), 9);
        assert_eq!(mix.count(FuClass::DivSqrt), 3);
    }

    #[test]
    fn timing_helpers() {
        let cfg = RevelConfig::paper_default();
        assert!((cfg.cycles_to_ns(1250) - 1000.0).abs() < 1e-9);
        assert_eq!(cfg.peak_flops_per_cycle(), 200.0);
    }

    #[test]
    fn single_lane_config() {
        assert_eq!(RevelConfig::single_lane().num_lanes, 1);
    }

    #[test]
    fn reconfig_deadline_offsets_by_reconfig_cycles() {
        let cfg = RevelConfig::paper_default();
        assert_eq!(cfg.reconfig_deadline(100), 100 + cfg.reconfig_cycles);
    }
}
