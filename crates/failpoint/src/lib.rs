//! Process-wide failpoint registry for crash-consistency torture.
//!
//! A *failpoint* is a named site in crash-critical code — a segment
//! append about to hit the disk, a snapshot about to rename over its
//! predecessor, a reply about to be written to a socket. Production
//! code calls [`hit`] at the site; when nothing is armed that call is a
//! single relaxed atomic load and a never-taken branch, so the
//! instrumented binary is the shipped binary. A torture harness arms
//! sites with an [`Action`] — return an injected [`std::io::Error`],
//! sleep, or hard-abort the process at that exact instruction — and the
//! same binary now fails exactly where the schedule says it must.
//!
//! Arms are scoped three ways:
//!
//! * **by site name** — `persist.append.mid-write`;
//! * **by context filter** — sites report a context string (a tier's
//!   directory, a server's port) via [`hit_with`]; an arm with a
//!   non-empty filter only fires when the filter is a substring of that
//!   context. This is what lets concurrent tests in one process arm the
//!   same site without tripping each other: each filters on its own
//!   unique temp dir or port.
//! * **by hit count** — `@N` fires on exactly the Nth hit, `@N+` on
//!   every hit from the Nth on. The trigger is how a schedule says
//!   "crash on the *third* append", and the `+` form is how a flapping
//!   shard keeps crashing after every respawn.
//!
//! Cross-process arming uses the [`ENV_VAR`] environment variable: a
//! supervisor sets `REVEL_FAILPOINTS=persist.append.mid-write=abort@2`
//! on a spawned shard and the shard's [`init_from_env`] arms it at
//! startup. The spec grammar is
//! `site[#filter]=action[@N[+]] [; more]` with actions `err`, `abort`,
//! and `delay:MS`.
//!
//! [`FailPlan::from_seed`] derives a deterministic crash schedule from a
//! seed — same seed, same site, same action, same trigger — which is
//! what makes torture-harness reports reproducible.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Environment variable read by [`init_from_env`]; a supervisor sets it
/// on a spawned shard to arm failpoints in that process.
pub const ENV_VAR: &str = "REVEL_FAILPOINTS";

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return an injected `io::Error` (kind `Other`) from [`hit`].
    InjectError,
    /// Sleep for the given number of milliseconds, then succeed.
    Delay(u64),
    /// Hard-abort the process at the site — no destructors, no flush;
    /// the closest safe stand-in for power loss at that instruction.
    Abort,
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::InjectError => write!(f, "err"),
            Action::Delay(ms) => write!(f, "delay:{ms}"),
            Action::Abort => write!(f, "abort"),
        }
    }
}

/// One armed failpoint.
struct Arm {
    site: String,
    /// Context substring filter; empty matches every context.
    filter: String,
    action: Action,
    /// 1-based hit index at which the action fires.
    trigger: u64,
    /// `true`: fire on every hit ≥ `trigger`; `false`: only on the
    /// `trigger`-th hit exactly.
    every_hit: bool,
    hits: u64,
}

/// Fast-path gate: `false` means the registry is empty and [`hit`] is a
/// load-and-branch no-op.
static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Vec<Arm>> = Mutex::new(Vec::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<Arm>> {
    // A panic while holding the lock (can't happen today — no user code
    // runs under it) must not poison every later hit into a panic storm.
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Report that execution reached the failpoint `site`.
///
/// Returns `Ok(())` when unarmed (the common case — one relaxed atomic
/// load), the injected error for an armed `err` action, `Ok(())` after
/// sleeping for `delay`, and never for `abort`.
#[inline]
pub fn hit(site: &str) -> io::Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    slow_hit(site, "")
}

/// [`hit`] with a lazily-built context string (a tier's directory, a
/// server's port) that arms can filter on. The closure only runs when
/// at least one failpoint is armed, so the fast path stays allocation-free.
#[inline]
pub fn hit_with(site: &str, ctx: impl FnOnce() -> String) -> io::Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    let ctx = ctx();
    slow_hit(site, &ctx)
}

#[cold]
fn slow_hit(site: &str, ctx: &str) -> io::Result<()> {
    let mut fire = None;
    {
        let mut reg = registry();
        for arm in reg.iter_mut() {
            if arm.site != site || (!arm.filter.is_empty() && !ctx.contains(&arm.filter)) {
                continue;
            }
            arm.hits += 1;
            let triggered =
                if arm.every_hit { arm.hits >= arm.trigger } else { arm.hits == arm.trigger };
            if triggered && fire.is_none() {
                fire = Some(arm.action);
            }
        }
    }
    match fire {
        None => Ok(()),
        Some(Action::InjectError) => {
            Err(io::Error::other(format!("failpoint '{site}': injected I/O error")))
        }
        Some(Action::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(Action::Abort) => {
            eprintln!("failpoint '{site}': hard abort");
            std::process::abort();
        }
    }
}

/// Arm `site` with `action`, firing at the 1-based hit `trigger`
/// (`every_hit` keeps it firing on every later hit too). A non-empty
/// `filter` restricts the arm to contexts containing it as a substring.
pub fn arm(site: &str, filter: &str, action: Action, trigger: u64, every_hit: bool) {
    let mut reg = registry();
    reg.push(Arm {
        site: site.to_string(),
        filter: filter.to_string(),
        action,
        trigger: trigger.max(1),
        every_hit,
        hits: 0,
    });
    ARMED.store(true, Ordering::Relaxed);
}

/// Remove every arm for `site` whose filter equals `filter` exactly.
/// Tests disarm their own arms this way without disturbing arms other
/// concurrent tests planted on the same site.
pub fn disarm(site: &str, filter: &str) {
    let mut reg = registry();
    reg.retain(|a| !(a.site == site && a.filter == filter));
    if reg.is_empty() {
        ARMED.store(false, Ordering::Relaxed);
    }
}

/// Remove every arm in the process. Shard processes and harnesses own
/// their whole registry; concurrent tests should prefer [`disarm`].
pub fn disarm_all() {
    let mut reg = registry();
    reg.clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Total hits recorded across arms for `site` (diagnostics).
pub fn hit_count(site: &str) -> u64 {
    registry().iter().filter(|a| a.site == site).map(|a| a.hits).sum()
}

/// `true` when at least one failpoint is armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Parse and arm a `;`-separated spec string:
/// `site[#filter]=action[@N[+]]` with actions `err`, `abort`,
/// `delay:MS`. Returns the number of failpoints armed.
pub fn arm_spec(spec: &str) -> Result<usize, String> {
    let mut armed = 0usize;
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (lhs, rhs) =
            part.split_once('=').ok_or_else(|| format!("'{part}': missing '=action'"))?;
        let (site, filter) = match lhs.split_once('#') {
            Some((s, f)) => (s.trim(), f.trim()),
            None => (lhs.trim(), ""),
        };
        if site.is_empty() {
            return Err(format!("'{part}': empty site name"));
        }
        let (action_str, trigger_str) = match rhs.split_once('@') {
            Some((a, t)) => (a.trim(), Some(t.trim())),
            None => (rhs.trim(), None),
        };
        let action = match action_str {
            "err" => Action::InjectError,
            "abort" => Action::Abort,
            other => match other.strip_prefix("delay:") {
                Some(ms) => {
                    Action::Delay(ms.parse().map_err(|_| format!("'{part}': bad delay '{ms}'"))?)
                }
                None => return Err(format!("'{part}': unknown action '{other}'")),
            },
        };
        let (trigger, every_hit) = match trigger_str {
            None => (1, true),
            Some(t) => {
                let (num, every) = match t.strip_suffix('+') {
                    Some(n) => (n, true),
                    None => (t, false),
                };
                let n: u64 = num.parse().map_err(|_| format!("'{part}': bad trigger '{t}'"))?;
                if n == 0 {
                    return Err(format!("'{part}': trigger is 1-based"));
                }
                (n, every)
            }
        };
        arm(site, filter, action, trigger, every_hit);
        armed += 1;
    }
    Ok(armed)
}

/// Arm failpoints from the [`ENV_VAR`] environment variable, if set.
/// Returns the number armed (0 when the variable is absent or empty).
pub fn init_from_env() -> Result<usize, String> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => arm_spec(&spec),
        _ => Ok(0),
    }
}

/// A deterministic, seed-derived crash schedule: which site to arm,
/// with what action, at which hit. Same seed ⇒ same plan, which is what
/// makes a torture run's per-seed report reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailPlan {
    /// Failpoint site to arm.
    pub site: String,
    /// Action the site performs when triggered.
    pub action: Action,
    /// 1-based hit index at which the action fires.
    pub trigger: u64,
    /// `true`: the action fires on every hit from `trigger` on (a
    /// *flapping* plan — the victim keeps failing after every respawn).
    pub every_hit: bool,
}

impl FailPlan {
    /// Derive a plan from `seed`. Roughly one seed in four is a
    /// *flapping* plan (repeat-abort on `flap_site`, the shape that must
    /// drive a supervisor's restart circuit to permanent eviction); one
    /// in four injects a transient `io::Error` at an `error_site` (the
    /// victim must survive it); the rest hard-abort once at a
    /// `crash_site` on hit 1–3 (the victim must respawn and recover).
    pub fn from_seed(
        seed: u64,
        crash_sites: &[&str],
        error_sites: &[&str],
        flap_site: &str,
    ) -> FailPlan {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        match splitmix64(&mut state) % 4 {
            0 => FailPlan {
                site: flap_site.to_string(),
                action: Action::Abort,
                trigger: 1,
                every_hit: true,
            },
            1 => FailPlan {
                site: error_sites[(splitmix64(&mut state) % error_sites.len() as u64) as usize]
                    .to_string(),
                action: Action::InjectError,
                trigger: 1 + splitmix64(&mut state) % 2,
                every_hit: false,
            },
            _ => FailPlan {
                site: crash_sites[(splitmix64(&mut state) % crash_sites.len() as u64) as usize]
                    .to_string(),
                action: Action::Abort,
                trigger: 1 + splitmix64(&mut state) % 3,
                every_hit: false,
            },
        }
    }

    /// Render the plan as an [`arm_spec`] string (round-trips exactly).
    pub fn spec(&self) -> String {
        format!(
            "{}={}@{}{}",
            self.site,
            self.action,
            self.trigger,
            if self.every_hit { "+" } else { "" }
        )
    }
}

/// SplitMix64 — the crate sits at the root of the dependency graph, so
/// it carries its own tiny generator instead of pulling in `revel-isa`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every test in this module arms under its own unique filter so the
    /// suite can run multi-threaded without cross-talk (the same
    /// discipline the rest of the workspace uses).
    fn unique_filter(tag: &str) -> String {
        format!("fp-test-{tag}-{}", std::process::id())
    }

    #[test]
    fn unarmed_hit_is_ok_and_armed_flag_tracks_registry() {
        assert!(hit("test.nothing.armed").is_ok());
        let f = unique_filter("flag");
        arm("test.flag.site", &f, Action::InjectError, 1, false);
        assert!(armed());
        disarm("test.flag.site", &f);
        assert!(hit("test.flag.site").is_ok());
    }

    #[test]
    fn trigger_counts_hits_and_fires_exactly_once_without_plus() {
        let f = unique_filter("once");
        arm("test.once.site", &f, Action::InjectError, 3, false);
        let ctx = || f.clone();
        assert!(hit_with("test.once.site", ctx).is_ok(), "hit 1 passes");
        assert!(hit_with("test.once.site", ctx).is_ok(), "hit 2 passes");
        assert!(hit_with("test.once.site", ctx).is_err(), "hit 3 fires");
        assert!(hit_with("test.once.site", ctx).is_ok(), "hit 4 passes again");
        disarm("test.once.site", &f);
    }

    #[test]
    fn every_hit_mode_keeps_firing_from_the_trigger_on() {
        let f = unique_filter("every");
        arm("test.every.site", &f, Action::InjectError, 2, true);
        let ctx = || f.clone();
        assert!(hit_with("test.every.site", ctx).is_ok());
        assert!(hit_with("test.every.site", ctx).is_err());
        assert!(hit_with("test.every.site", ctx).is_err());
        disarm("test.every.site", &f);
    }

    #[test]
    fn context_filter_scopes_an_arm_to_matching_contexts() {
        let f = unique_filter("scope");
        arm("test.scope.site", &f, Action::InjectError, 1, true);
        assert!(hit_with("test.scope.site", || "unrelated-ctx".to_string()).is_ok());
        assert!(hit_with("test.scope.site", || format!("/tmp/{f}/segment")).is_err());
        assert!(hit("test.scope.site").is_ok(), "empty ctx never matches a filtered arm");
        disarm("test.scope.site", &f);
    }

    #[test]
    fn delay_action_sleeps_then_succeeds() {
        let f = unique_filter("delay");
        arm("test.delay.site", &f, Action::Delay(20), 1, false);
        let t0 = std::time::Instant::now();
        assert!(hit_with("test.delay.site", || f.clone()).is_ok());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        disarm("test.delay.site", &f);
    }

    #[test]
    fn spec_grammar_parses_actions_filters_and_triggers() {
        let f = unique_filter("spec");
        let n = arm_spec(&format!(
            "test.spec.a#{f}=err@2; test.spec.b#{f}=delay:5; test.spec.c#{f}=abort@4+"
        ))
        .expect("valid spec");
        assert_eq!(n, 3);
        let ctx = || f.clone();
        assert!(hit_with("test.spec.a", ctx).is_ok());
        assert!(hit_with("test.spec.a", ctx).is_err(), "err fires at hit 2");
        assert!(hit_with("test.spec.b", ctx).is_ok(), "delay with default @1+ fires and passes");
        // test.spec.c is abort@4 — do NOT hit it four times here.
        for site in ["test.spec.a", "test.spec.b", "test.spec.c"] {
            disarm(site, &f);
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_a_reason() {
        for bad in
            ["noequals", "site=frobnicate", "site=err@0", "site=err@x", "site=delay:y", "=err"]
        {
            assert!(arm_spec(bad).is_err(), "spec '{bad}' must be rejected");
        }
    }

    #[test]
    fn fail_plans_are_deterministic_and_round_trip_through_specs() {
        let crash = ["c.one", "c.two", "c.three"];
        let eio = ["e.one", "e.two"];
        let mut saw_flap = false;
        let mut saw_err = false;
        let mut saw_crash = false;
        for seed in 0..64u64 {
            let a = FailPlan::from_seed(seed, &crash, &eio, "flap.site");
            let b = FailPlan::from_seed(seed, &crash, &eio, "flap.site");
            assert_eq!(a, b, "same seed, same plan");
            assert!(a.trigger >= 1);
            match a.action {
                Action::Abort if a.every_hit => {
                    assert_eq!(a.site, "flap.site");
                    saw_flap = true;
                }
                Action::Abort => {
                    assert!(crash.contains(&a.site.as_str()));
                    saw_crash = true;
                }
                Action::InjectError => {
                    assert!(eio.contains(&a.site.as_str()));
                    saw_err = true;
                }
                Action::Delay(_) => panic!("from_seed never emits delay"),
            }
            // spec() round-trips through the grammar.
            let spec = a.spec();
            let (lhs, _) = spec.split_once('=').expect("spec has an action");
            assert_eq!(lhs, a.site);
        }
        assert!(saw_flap && saw_err && saw_crash, "64 seeds cover all three plan shapes");
    }
}
