//! Chaos-mode loopback tests: a server injecting worker-side faults at a
//! fixed rate, self-healing clients retrying through them, and the
//! acceptance criteria — every eventually-successful response is
//! byte-identical to the batch path, no worker dies permanently, and the
//! circuit breaker opens under sustained overload and recovers after it.

use revel_core::Bench;
use revel_serve::client::{CircuitBreaker, Client, ClientError, RetryClient, RetryPolicy};
use revel_serve::protocol::{encode_response, Request, Response};
use revel_serve::server::{response_for_run, FinalStats, Server, ServerConfig};
use std::time::Duration;

fn start_chaos(
    workers: usize,
    queue_capacity: usize,
    chaos_rate: f64,
    chaos_seed: u64,
) -> (String, std::thread::JoinHandle<FinalStats>) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        chaos_rate,
        chaos_seed,
        shard_id: None,
        ..Default::default()
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn shutdown(addr: &str) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    // Shutdown is answered inline (control plane): chaos never touches it.
    assert_eq!(c.request(&Request::Shutdown).expect("shutdown"), Response::ShuttingDown);
}

fn simulate_req(bench: &Bench, arch: &str) -> Request {
    Request::Simulate {
        bench: bench.name().to_string(),
        params: bench.params(),
        arch: arch.to_string(),
        deadline_ms: None,
        max_cycles: None,
        reference_stepper: false,
        fault_seed: None,
        fault_count: None,
        fault_window: None,
    }
}

/// Acceptance criterion: with a fixed chaos seed and a 10% injection rate,
/// three retrying clients against two workers converge — every request
/// eventually succeeds, and each success is byte-identical to what
/// `Bench::run` produces. Faults were really injected (server counter) and
/// neither worker died permanently (the pool still serves after the storm).
#[test]
fn chaos_at_ten_percent_converges_to_byte_identical_results() {
    use revel_core::compiler::BuildCfg;
    let (addr, handle) = start_chaos(2, 16, 0.1, 7);

    let cells: Vec<(Bench, &str, BuildCfg)> = vec![
        (Bench::Solver { n: 12 }, "revel", BuildCfg::revel(1)),
        (Bench::Fft { n: 64 }, "revel", BuildCfg::revel(1)),
        (Bench::Qr { n: 12 }, "revel", BuildCfg::revel(1)),
        (Bench::Svd { n: 12 }, "revel", BuildCfg::revel(1)),
    ];
    let expected: Vec<Response> = cells
        .iter()
        .map(|(b, _, cfg)| response_for_run(&b.run(cfg).expect("batch path runs")))
        .collect();

    std::thread::scope(|s| {
        for client_no in 0..3u64 {
            let (addr, cells, expected) = (&addr, &cells, &expected);
            s.spawn(move || {
                // Plenty of attempts: at a 10% fault rate the odds of nine
                // consecutive injections on one request are negligible, so
                // every request converges.
                let policy =
                    RetryPolicy { max_attempts: 9, base_ms: 2, cap_ms: 40, seed: client_no };
                let breaker = CircuitBreaker::new(10, Duration::from_millis(100));
                let mut rc = RetryClient::new(addr, policy, breaker);
                for pass in 0..3 {
                    for k in 0..cells.len() {
                        let i = (k + pass) % cells.len();
                        let (bench, arch, _) = &cells[i];
                        let got = rc.request(&simulate_req(bench, arch)).expect("converges");
                        assert_eq!(
                            encode_response(9, &got),
                            encode_response(9, &expected[i]),
                            "client {client_no}: {} [{arch}] diverged after retries",
                            bench.name()
                        );
                    }
                }
            });
        }
    });

    // No worker died permanently: more sequential jobs than workers all
    // complete after the chaos traffic (a dead slot would hang one).
    let policy = RetryPolicy { max_attempts: 9, base_ms: 2, cap_ms: 40, seed: 99 };
    let mut rc =
        RetryClient::new(&addr, policy, CircuitBreaker::new(10, Duration::from_millis(100)));
    for _ in 0..4 {
        assert_eq!(
            rc.request(&Request::Sleep { ms: 1 }).expect("pool alive"),
            Response::Slept { ms: 1 }
        );
    }

    shutdown(&addr);
    let stats = handle.join().expect("server thread");
    assert!(stats.injected > 0, "chaos must actually have injected faults: {stats}");
    assert!(
        stats.completed > stats.injected,
        "most traffic still completed around the injections: {stats}"
    );
}

/// Acceptance criterion: the circuit breaker opens under sustained
/// overload (fail-fast without touching the wire) and recovers through a
/// half-open probe once the backlog clears.
#[test]
fn breaker_opens_under_overload_and_recovers() {
    // No chaos here: overload is produced deterministically by occupying
    // the single worker and the single queue slot.
    let (addr, handle) = start_chaos(1, 1, 0.0, 0);

    let mut busy = Client::connect(&addr).expect("connect");
    let t_busy = std::thread::spawn(move || busy.request(&Request::Sleep { ms: 900 }));
    std::thread::sleep(Duration::from_millis(150)); // worker popped it

    let mut queued = Client::connect(&addr).expect("connect");
    let t_queued = std::thread::spawn(move || queued.request(&Request::Sleep { ms: 50 }));
    std::thread::sleep(Duration::from_millis(150)); // queue slot taken

    // max_attempts 1: each overloaded answer is a request-level failure.
    let policy = RetryPolicy { max_attempts: 1, base_ms: 1, cap_ms: 5, seed: 0 };
    let mut rc =
        RetryClient::new(&addr, policy, CircuitBreaker::new(3, Duration::from_millis(250)));
    for i in 0..3 {
        match rc.request(&Request::Sleep { ms: 1 }).expect("served an answer") {
            Response::Overloaded { retry_after_ms, .. } => {
                assert!(retry_after_ms.is_some(), "overload carries a hint (attempt {i})");
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
    }
    assert!(rc.breaker().is_open(), "three consecutive failures must open the circuit");
    assert_eq!(rc.breaker().opened_total(), 1);

    // While open: fail-fast, no wire traffic.
    match rc.request(&Request::Sleep { ms: 1 }) {
        Err(ClientError::CircuitOpen) => {}
        other => panic!("expected CircuitOpen, got {other:?}"),
    }

    // Backlog clears; after the cooldown the half-open probe succeeds and
    // the breaker closes again.
    assert_eq!(t_busy.join().unwrap().expect("busy"), Response::Slept { ms: 900 });
    assert_eq!(t_queued.join().unwrap().expect("queued"), Response::Slept { ms: 50 });
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        rc.request(&Request::Sleep { ms: 1 }).expect("probe"),
        Response::Slept { ms: 1 },
        "half-open probe must reach the drained server"
    );
    assert!(!rc.breaker().is_open(), "a successful probe closes the circuit");

    shutdown(&addr);
    let stats = handle.join().expect("server thread");
    assert!(stats.overloaded >= 3, "{stats}");
}

/// A fault-seeded simulate request is answered with a structured `faulted`
/// snapshot (never a cached clean result), and the same seed yields the
/// same snapshot — over the wire, not just in-process.
#[test]
fn fault_seeded_requests_report_deterministic_snapshots() {
    let (addr, handle) = start_chaos(2, 8, 0.0, 0);
    let mut c = Client::connect(&addr).expect("connect");
    let bench = Bench::Qr { n: 12 };
    let fault_req = |seed: u64| Request::Simulate {
        bench: bench.name().to_string(),
        params: bench.params(),
        arch: "revel".to_string(),
        deadline_ms: None,
        max_cycles: None,
        reference_stepper: false,
        fault_seed: Some(seed),
        fault_count: Some(8),
        fault_window: Some(1200),
    };

    // Not every seed's events hit a live target (a drawn port may be idle
    // at that cycle); scan a deterministic seed range for one that applies
    // — the scan itself is reproducible, so the test is too.
    let (seed, first) = (0..32)
        .find_map(|seed| match c.request(&fault_req(seed)).expect("faulted simulate") {
            resp @ Response::Faulted { applied, .. } if applied > 0 => Some((seed, resp)),
            Response::Faulted { .. } => None,
            other => panic!("expected faulted, got {other:?}"),
        })
        .expect("some seed in 0..32 must land a fault");
    let second = c.request(&fault_req(seed)).expect("repeat faulted simulate");
    assert_eq!(
        encode_response(1, &first),
        encode_response(1, &second),
        "same seed, same snapshot, byte for byte"
    );

    // The clean path is untouched: the same cell without a fault seed
    // still verifies (the faulted runs never reached the cache).
    let clean = c.request(&simulate_req(&bench, "revel")).expect("clean simulate");
    assert!(matches!(clean, Response::Result { verified: true, .. }), "{clean:?}");

    shutdown(&addr);
    handle.join().expect("server thread");
}
