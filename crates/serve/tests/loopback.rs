//! End-to-end loopback tests: a real server on an ephemeral port, real TCP
//! clients, and the acceptance criteria of the serving subsystem —
//! byte-identity with the batch path, structured overload, deadline
//! timeouts with batch-identical deadlock snapshots, graceful drain, and
//! hostile-input resilience.

use revel_core::Bench;
use revel_serve::client::Client;
use revel_serve::probe;
use revel_serve::protocol::{encode_response, Request, Response, MAX_FRAME_BYTES};
use revel_serve::server::{response_for_run, FinalStats, Server, ServerConfig};
use std::io::{Read, Write};
use std::time::Duration;

/// Binds an ephemeral-port server and serves it on a background thread.
/// Tests shut it down over the wire (a `shutdown` request) and join the
/// handle for the final counters. The in-process signal flag is global, so
/// these tests never touch it — each server has its own flag.
fn start(workers: usize, queue_capacity: usize) -> (String, std::thread::JoinHandle<FinalStats>) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        ..Default::default()
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn shutdown(addr: &str) -> FinalStats {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    assert_eq!(c.request(&Request::Shutdown).expect("shutdown"), Response::ShuttingDown);
    FinalStats::default() // caller joins the handle for the real counters
}

fn simulate_req(bench: &Bench, arch: &str) -> Request {
    Request::Simulate {
        bench: bench.name().to_string(),
        params: bench.params(),
        arch: arch.to_string(),
        deadline_ms: None,
        max_cycles: None,
        reference_stepper: false,
        fault_seed: None,
        fault_count: None,
        fault_window: None,
    }
}

/// Acceptance criterion: responses for grid cells, served concurrently to
/// three clients through a two-worker pool, are byte-identical to what
/// `Bench::run` produces on the batch path.
#[test]
fn three_concurrent_clients_match_bench_run_byte_for_byte() {
    use revel_core::compiler::BuildCfg;
    let (addr, handle) = start(2, 16);

    // A 1-lane slice of the grid (debug-build friendly), three archs deep.
    let cells: Vec<(Bench, &str, BuildCfg)> = vec![
        (Bench::Solver { n: 12 }, "revel", BuildCfg::revel(1)),
        (Bench::Solver { n: 12 }, "systolic", BuildCfg::systolic_baseline(1)),
        (Bench::Solver { n: 12 }, "dataflow", BuildCfg::dataflow_baseline(1)),
        (Bench::Fft { n: 64 }, "revel", BuildCfg::revel(1)),
        (Bench::Qr { n: 12 }, "revel", BuildCfg::revel(1)),
        (Bench::Svd { n: 12 }, "revel", BuildCfg::revel(1)),
    ];
    // The batch-path ground truth (same process ⇒ same engine cache the
    // server answers from; values are pinned by the differential gate).
    let expected: Vec<Response> = cells
        .iter()
        .map(|(b, _, cfg)| response_for_run(&b.run(cfg).expect("batch path runs")))
        .collect();

    std::thread::scope(|s| {
        for client_no in 0..3 {
            let (addr, cells, expected) = (&addr, &cells, &expected);
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                // Each client walks the cells at a different phase so the
                // two workers see genuinely interleaved traffic.
                for k in 0..cells.len() {
                    let i = (k + client_no * 2) % cells.len();
                    let (bench, arch, _) = &cells[i];
                    let got = c.request(&simulate_req(bench, arch)).expect("simulate");
                    assert_eq!(
                        encode_response(9, &got),
                        encode_response(9, &expected[i]),
                        "client {client_no}: {} [{arch}] diverged from Bench::run",
                        bench.name()
                    );
                }
            });
        }
    });

    shutdown(&addr);
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.overloaded, 0, "no request may be rejected in this test: {stats}");
    assert_eq!(stats.errors, 0, "{stats}");
    assert!(stats.completed >= 18, "3 clients × 6 cells all served: {stats}");
}

/// Acceptance criterion: when the queue is full the server answers with a
/// structured `overloaded` response immediately — it never hangs the
/// client and never silently drops the request.
#[test]
fn full_queue_yields_structured_overload() {
    let (addr, handle) = start(1, 1);

    // Occupy the single worker.
    let mut busy = Client::connect(&addr).expect("connect");
    let t_busy = std::thread::spawn(move || busy.request(&Request::Sleep { ms: 600 }));
    std::thread::sleep(Duration::from_millis(150)); // worker has popped it

    // Fill the queue (capacity 1).
    let mut queued = Client::connect(&addr).expect("connect");
    let t_queued = std::thread::spawn(move || queued.request(&Request::Sleep { ms: 50 }));
    std::thread::sleep(Duration::from_millis(150)); // job is parked in the queue

    // Third request: must be rejected *now*, not after the sleeps.
    let mut reject = Client::connect(&addr).expect("connect");
    let t0 = std::time::Instant::now();
    let resp = reject.request(&Request::Sleep { ms: 1 }).expect("overload response");
    let waited = t0.elapsed();
    match &resp {
        Response::Overloaded { capacity: 1, retry_after_ms: Some(hint) } => {
            assert!(*hint >= 5, "queue-depth-derived hint, got {hint}");
        }
        other => panic!("expected overloaded with a retry hint, got {other:?}"),
    }
    assert!(waited < Duration::from_millis(300), "rejection must be immediate, took {waited:?}");

    // Control plane still answers while saturated — and reports the
    // saturation it is answering through.
    let health = reject.request(&Request::Health).expect("health under load");
    match health {
        Response::Health { workers, queue_capacity, queue_depth, active_connections, shard_id } => {
            assert_eq!(workers, 1);
            assert_eq!(queue_capacity, 1);
            assert_eq!(queue_depth, 1, "the parked job is visible as backlog");
            assert!(active_connections >= 3, "all three clients are held open");
            assert_eq!(shard_id, None, "a standalone server has no shard id");
        }
        other => panic!("expected health, got {other:?}"),
    }

    // The admitted requests were not harmed.
    assert_eq!(t_busy.join().unwrap().expect("busy"), Response::Slept { ms: 600 });
    assert_eq!(t_queued.join().unwrap().expect("queued"), Response::Slept { ms: 50 });

    shutdown(&addr);
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.overloaded, 1, "{stats}");
}

/// Acceptance criterion: shutdown drains in-flight work — a request already
/// admitted is answered before the server exits.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (addr, handle) = start(1, 4);

    let mut worker_client = Client::connect(&addr).expect("connect");
    let inflight = std::thread::spawn(move || worker_client.request(&Request::Sleep { ms: 400 }));
    std::thread::sleep(Duration::from_millis(100)); // the worker is mid-sleep

    shutdown(&addr);

    // The in-flight request completes with its real answer, not an error.
    assert_eq!(inflight.join().unwrap().expect("drained"), Response::Slept { ms: 400 });
    let stats = handle.join().expect("server exits after draining");
    assert!(stats.completed >= 2, "sleep + shutdown both completed: {stats}");
    assert_eq!(stats.errors, 0, "{stats}");
}

/// Satellite 3 regression: a deliberately deadlocked program, driven
/// through the *server* path with a cycle budget, reports the same
/// `DeadlockSnapshot` text as the batch path, byte for byte; and a
/// wall-clock deadline surfaces as `timed_out` with `deadline_expired`.
#[test]
fn deadlock_probe_snapshot_matches_batch_path() {
    let (addr, handle) = start(2, 8);
    let budget = 50_000u64;

    // Batch path: the probe run exactly as a harness would do it.
    let batch = probe::run(Some(budget), None).expect("probe runs");
    assert!(batch.timed_out && !batch.deadline_expired);
    let batch_snapshot = batch.deadlock.as_ref().expect("snapshot").to_string();

    // Server path: same probe, same budget, over the wire.
    let mut c = Client::connect(&addr).expect("connect");
    let resp = c
        .request(&Request::Simulate {
            bench: probe::BENCH_NAME.to_string(),
            params: String::new(),
            arch: String::new(),
            deadline_ms: None,
            max_cycles: Some(budget),
            reference_stepper: false,
            fault_seed: None,
            fault_count: None,
            fault_window: None,
        })
        .expect("probe over the wire");
    match resp {
        Response::TimedOut { cycles, deadline_expired, deadlock } => {
            assert_eq!(cycles, batch.cycles, "budget timeouts are cycle-deterministic");
            assert!(!deadline_expired, "the budget, not a deadline, fired");
            assert_eq!(
                deadlock.expect("snapshot over the wire"),
                batch_snapshot,
                "server and batch paths must print the identical snapshot"
            );
        }
        other => panic!("expected timed_out, got {other:?}"),
    }

    // Wall-clock deadline through the server path: deadline_ms=0 expires
    // during the run and must be reported as deadline_expired.
    let resp = c
        .request(&Request::Simulate {
            bench: probe::BENCH_NAME.to_string(),
            params: String::new(),
            arch: String::new(),
            deadline_ms: Some(0),
            max_cycles: None,
            reference_stepper: false,
            fault_seed: None,
            fault_count: None,
            fault_window: None,
        })
        .expect("deadline probe");
    match resp {
        Response::TimedOut { deadline_expired, deadlock, .. } => {
            assert!(deadline_expired, "the deadline must be the reported cause");
            assert!(deadlock.is_some(), "deadline timeouts still carry the snapshot");
        }
        other => panic!("expected timed_out, got {other:?}"),
    }

    shutdown(&addr);
    let stats = handle.join().expect("server thread");
    assert_eq!(stats.timed_out, 2, "both probe runs counted: {stats}");
}

/// A per-request deadline on a *real* (non-deadlocked) cell: generous
/// deadlines do not perturb the result; an expired deadline times out and
/// must not poison the cache for later requests.
#[test]
fn request_deadlines_compose_with_real_cells() {
    let (addr, handle) = start(2, 8);
    let mut c = Client::connect(&addr).expect("connect");
    let bench = Bench::Cholesky { n: 12 };

    // Expired deadline first: the cache must not memoize the timeout.
    let resp = c
        .request(&Request::Simulate {
            bench: bench.name().into(),
            params: bench.params(),
            arch: "revel".into(),
            deadline_ms: Some(0),
            max_cycles: None,
            reference_stepper: false,
            fault_seed: None,
            fault_count: None,
            fault_window: None,
        })
        .expect("expired-deadline simulate");
    match resp {
        Response::TimedOut { deadline_expired, .. } => assert!(deadline_expired),
        other => panic!("expected timed_out, got {other:?}"),
    }

    // Generous deadline: the answer equals the undeadlined batch result.
    let resp = c
        .request(&Request::Simulate {
            bench: bench.name().into(),
            params: bench.params(),
            arch: "revel".into(),
            deadline_ms: Some(600_000),
            max_cycles: None,
            reference_stepper: false,
            fault_seed: None,
            fault_count: None,
            fault_window: None,
        })
        .expect("generous-deadline simulate");
    let expected = response_for_run(
        &bench.run(&revel_core::compiler::BuildCfg::revel(bench.lanes())).expect("batch"),
    );
    assert_eq!(resp, expected, "a slack deadline must be invisible");

    shutdown(&addr);
    handle.join().expect("server thread");
}

/// Hostile input: malformed JSON gets a structured `bad_request` and the
/// connection stays usable; an oversized frame gets `oversized_frame` and
/// a close — and in both cases the server (and its workers) survive.
#[test]
fn malformed_and_oversized_frames_never_kill_the_server() {
    let (addr, handle) = start(1, 4);

    // Malformed JSON on a raw socket.
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    raw.write_all(b"this is not json\n").expect("write");
    let mut buf = [0u8; 4096];
    let n = raw.read(&mut buf).expect("read error response");
    let line = std::str::from_utf8(&buf[..n]).expect("utf8");
    assert!(line.contains("\"bad_request\""), "structured error expected, got {line}");

    // The same connection still serves well-formed requests afterwards.
    raw.write_all(b"{\"id\":7,\"op\":\"health\"}\n").expect("write");
    let n = raw.read(&mut buf).expect("read health");
    let line = std::str::from_utf8(&buf[..n]).expect("utf8");
    assert!(line.contains("\"health\"") && line.contains("\"id\":7"), "{line}");

    // Oversized frame: rejected mid-accumulation, connection closed. The
    // server responds then closes while our tail bytes may still be in
    // flight, so the client can observe either the structured rejection or
    // a connection reset — both prove the bound fired; neither may kill
    // the server (checked below).
    let mut big = std::net::TcpStream::connect(&addr).expect("connect");
    let huge = vec![b'z'; MAX_FRAME_BYTES + 4096];
    let _ = big.write_all(&huge);
    let _ = big.write_all(b"\n");
    let mut collected = Vec::new();
    if big.read_to_end(&mut collected).is_ok() && !collected.is_empty() {
        let line = String::from_utf8_lossy(&collected);
        assert!(line.contains("\"oversized_frame\""), "structured rejection expected, got {line}");
    }

    // The server survived both: a fresh connection works end-to-end.
    let mut c = Client::connect(&addr).expect("connect after hostility");
    assert_eq!(c.request(&Request::Sleep { ms: 1 }).expect("sleep"), Response::Slept { ms: 1 });

    shutdown(&addr);
    let stats = handle.join().expect("server thread");
    assert!(stats.errors >= 2, "both rejections counted: {stats}");
}

/// Slow-loris armor: a connection that never completes a frame is closed
/// at `conn_timeout` and counted — while a connection whose request is
/// legitimately in flight (a slow *simulation* is the server's debt, not
/// the client's) survives far past the idle deadline.
#[test]
fn slow_loris_connections_expire_while_inflight_work_is_exempt() {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 8,
        conn_timeout: Duration::from_millis(200),
        ..Default::default()
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    // In-flight work, three times the idle deadline long.
    let mut slow_work = Client::connect(&addr).expect("connect");
    let inflight = std::thread::spawn(move || slow_work.request(&Request::Sleep { ms: 600 }));

    // The loris: half a frame, then silence. The server must close the
    // connection instead of holding it open forever.
    let mut loris = std::net::TcpStream::connect(&addr).expect("connect");
    loris.write_all(b"{\"id\":1,\"op\":").expect("half frame");
    loris.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let mut buf = Vec::new();
    match loris.read_to_end(&mut buf) {
        Ok(_) => {} // clean FIN
        Err(e) => assert!(
            e.kind() != std::io::ErrorKind::WouldBlock && e.kind() != std::io::ErrorKind::TimedOut,
            "expired connection must be closed, not left hanging: {e}"
        ),
    }

    // The exempt client's answer arrived despite outliving the deadline.
    assert_eq!(inflight.join().unwrap().expect("in-flight work"), Response::Slept { ms: 600 });

    shutdown(&addr);
    let stats = handle.join().expect("server thread");
    assert!(stats.conn_timeouts >= 1, "the loris was counted: {stats}");
    assert_eq!(stats.errors, 0, "a timeout is not a protocol error: {stats}");
}

/// Overload armor: a peer that floods requests and never drains a reply
/// byte is disconnected once the unread reply bytes pass `wbuf_limit`,
/// and the drop is counted — the server never buffers without bound.
#[test]
fn a_peer_that_stops_draining_is_dropped_at_the_write_buffer_cap() {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 8,
        wbuf_limit: 4096,
        ..Default::default()
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));

    // Pump control-plane requests (answered inline, so replies pile up
    // immediately) without ever reading; once the kernel buffers fill,
    // the server's per-connection write buffer crosses the cap and the
    // connection is dropped — our writes start failing.
    let mut greedy = std::net::TcpStream::connect(&addr).expect("connect");
    greedy.set_write_timeout(Some(Duration::from_secs(5))).expect("write timeout");
    let req = b"{\"id\":1,\"op\":\"stats\"}\n";
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut dropped = false;
    while std::time::Instant::now() < deadline {
        if greedy.write_all(req).is_err() {
            // Reset, broken pipe, or a write that sat blocked for 5s —
            // each means the server stopped reading us: it dropped the
            // connection at the cap.
            dropped = true;
            break;
        }
    }
    assert!(dropped, "the server must disconnect a peer that never drains");
    drop(greedy);

    // The server survived: a fresh, well-behaved client works end-to-end.
    let mut c = Client::connect(&addr).expect("connect after the flood");
    assert_eq!(c.request(&Request::Sleep { ms: 1 }).expect("sleep"), Response::Slept { ms: 1 });

    shutdown(&addr);
    let stats = handle.join().expect("server thread");
    assert!(stats.write_overflows >= 1, "the overflow was counted: {stats}");
}

/// Batched simulation over the wire: a certified grid cell's
/// `simulate_batch` takes the trace-replay path (visible in the engine's
/// `batched_replays` counter), answers with a per-lane-verified summary
/// whose cycle count matches the single-run path, and rejects an empty
/// seed list as `bad_request` — while a locally computed
/// `Bench::run_batched` agrees with everything the server said.
#[test]
fn simulate_batch_replays_certified_cells_over_the_wire() {
    let (addr, handle) = start(2, 8);
    let mut c = Client::connect(&addr).expect("connect");
    let bench = Bench::Fft { n: 64 };
    let seeds = vec![21u64, 22, 23];

    let before = match c.request(&Request::Stats).expect("stats") {
        Response::Stats { engine, .. } => engine,
        other => panic!("expected stats, got {other:?}"),
    };

    let resp = c
        .request(&Request::SimulateBatch {
            bench: bench.name().into(),
            params: bench.params(),
            arch: "revel".into(),
            seeds: seeds.clone(),
        })
        .expect("simulate_batch");
    // Ground truth from the same process-wide engine the server answers
    // from: every summary field must agree.
    let cfg = revel_core::compiler::BuildCfg::revel(bench.lanes());
    let local = bench.run_batched(&cfg, &seeds).expect("local batch");
    match resp {
        Response::BatchResult { cycles, commands_issued, batch, verified, replayed } => {
            assert_eq!(batch, seeds.len() as u64);
            assert!(verified, "every lane verifies");
            assert!(replayed, "a certified cell must take the replay path");
            assert_eq!(replayed, local.replayed);
            assert_eq!(cycles, local.runs[0].cycles, "wire summary matches the local batch");
            assert_eq!(commands_issued, local.runs[0].report.commands_issued);
        }
        other => panic!("expected batch_result, got {other:?}"),
    }

    let after = match c.request(&Request::Stats).expect("stats") {
        Response::Stats { engine, .. } => engine,
        other => panic!("expected stats, got {other:?}"),
    };
    // The local ground-truth batch replayed too, so the counter moved by
    // at least both batches' lanes (other tests share the process).
    assert!(
        after.batched_replays >= before.batched_replays + 2 * seeds.len() as u64,
        "replay-path proof: {} -> {}",
        before.batched_replays,
        after.batched_replays
    );

    // An empty batch is a caller bug, answered loudly and structurally.
    let resp = c
        .request(&Request::SimulateBatch {
            bench: bench.name().into(),
            params: bench.params(),
            arch: "revel".into(),
            seeds: vec![],
        })
        .expect("empty batch");
    assert!(
        matches!(resp, Response::Error { ref kind, .. } if kind == "bad_request"),
        "empty seeds must be bad_request, got {resp:?}"
    );

    shutdown(&addr);
    handle.join().expect("server thread");
}

/// The `stats` endpoint reports all three counter families, and the cache
/// counters move the right way across a repeated simulation.
#[test]
fn stats_endpoint_reports_cache_and_server_counters() {
    let (addr, handle) = start(2, 8);
    let mut c = Client::connect(&addr).expect("connect");

    let before = match c.request(&Request::Stats).expect("stats") {
        Response::Stats { engine, schedule, .. } => (engine, schedule),
        other => panic!("expected stats, got {other:?}"),
    };

    // Same cell twice: at least one engine-cache hit is guaranteed for the
    // second request (other tests share the process-wide cache, so only
    // lower bounds are asserted).
    let bench = Bench::Fft { n: 64 };
    for _ in 0..2 {
        let resp = c.request(&simulate_req(&bench, "revel")).expect("simulate");
        assert!(matches!(resp, Response::Result { verified: true, .. }), "{resp:?}");
    }

    let after = match c.request(&Request::Stats).expect("stats") {
        Response::Stats { engine, schedule, server } => {
            assert!(server.received >= 4, "stats+sim+sim+stats admitted: {server:?}");
            (engine, schedule)
        }
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(after.0.hits > before.0.hits, "repeat simulate must hit: {before:?} -> {after:?}");
    assert!(after.0.capacity >= 1);
    assert_eq!(
        after.1.misses, after.1.entries,
        "schedule-cache misses are exact (one per compiled entry)"
    );

    shutdown(&addr);
    handle.join().expect("server thread");
}
