//! Fleet-tier integration tests: a real router in front of real
//! `revel_serve` shard processes — consistent-hash forwarding, failover
//! across a SIGKILL, warm restart from the persistent disk tier, and the
//! `--cache-capacity` / `--assert-evictions` gate over the two shipped
//! binaries.

use revel_serve::client::Client;
use revel_serve::fleet::placement::Ring;
use revel_serve::fleet::router::route_fingerprint;
use revel_serve::fleet::{Fleet, FleetConfig, Supervisor, DEFAULT_MAX_RESTARTS};
use revel_serve::protocol::{encode_response, Request, Response};
use revel_serve::server::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fleet_cfg(shards: usize, base_port: u16, snapshot_dir: Option<PathBuf>) -> FleetConfig {
    FleetConfig {
        shards,
        host: "127.0.0.1".to_string(),
        base_port,
        workers: 1,
        queue_capacity: 8,
        snapshot_dir,
        cache_capacity: None,
        chaos_rate: 0.0,
        chaos_seed: 0,
        max_restarts: DEFAULT_MAX_RESTARTS,
        failpoints: None,
        binary: PathBuf::from(env!("CARGO_BIN_EXE_revel_serve")),
    }
}

fn simulate_req(bench: &str, params: &str, arch: &str) -> Request {
    Request::Simulate {
        bench: bench.to_string(),
        params: params.to_string(),
        arch: arch.to_string(),
        deadline_ms: None,
        max_cycles: None,
        reference_stepper: false,
        fault_seed: None,
        fault_count: None,
        fault_window: None,
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The full stack: a router server forwarding to two shard processes.
/// A keyed request is answered through the fleet, the roster is visible
/// over the wire, and SIGKILLing the owning shard mid-session loses
/// nothing — the retried request is byte-identical.
#[test]
fn router_forwards_keyed_requests_and_survives_a_shard_kill() {
    let cfg = fleet_cfg(2, 7520, None);
    let fleet = Arc::new(Fleet::new(&cfg.host, &cfg.shard_ports()));
    let sup = Supervisor::start(Arc::clone(&fleet), cfg).expect("spawn shards");
    assert!(fleet.wait_alive(2, Duration::from_secs(30)), "both shards come up");

    let mut server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 8,
        ..Default::default()
    })
    .expect("bind router");
    server.set_fleet(Arc::clone(&fleet));
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("router serves"));

    let mut c = Client::connect(&addr).expect("connect router");
    let req = simulate_req("solver", "n=12", "revel");
    let first = c.request(&req).expect("forwarded simulate");
    assert!(matches!(first, Response::Result { verified: true, .. }), "{first:?}");

    // The roster is visible through the router, and the forwarded request
    // landed on the ring owner the placement layer predicts.
    let owner = Ring::build(&[0, 1])
        .route(route_fingerprint(&req).expect("simulate is keyed"))
        .expect("non-empty ring");
    match c.request(&Request::FleetStats).expect("fleet_stats") {
        Response::FleetStats { shards } => {
            assert_eq!(shards.len(), 2);
            assert!(shards.iter().all(|s| s.alive), "{shards:?}");
            assert!(shards[owner].routed >= 1, "owner carried the request: {shards:?}");
        }
        other => panic!("expected fleet_stats, got {other:?}"),
    }

    // SIGKILL the owner: the survivor re-simulates the cell and the answer
    // does not change by a byte.
    assert!(sup.kill_shard(owner, false), "owner had a live process");
    let second = c.request(&req).expect("failover simulate");
    assert_eq!(
        encode_response(1, &first),
        encode_response(1, &second),
        "failover must not change the answer"
    );

    // Aggregated stats still answer while a shard is down.
    match c.request(&Request::Stats).expect("stats") {
        Response::Stats { engine, .. } => {
            assert!(engine.misses >= 1, "someone simulated the cell: {engine:?}")
        }
        other => panic!("expected stats, got {other:?}"),
    }

    assert_eq!(c.request(&Request::Shutdown).expect("shutdown"), Response::ShuttingDown);
    handle.join().expect("router thread");
    sup.shutdown();
}

/// A killed shard warm-starts from its disk tier: the respawned process
/// reports the recovered entries and answers the repeat request from disk
/// (disk_hits moves, misses does not) — byte-identical to the pre-kill
/// answer.
#[test]
fn respawned_shard_warm_starts_from_its_disk_tier() {
    let dir = std::env::temp_dir().join(format!("revel-fleet-test-{}", std::process::id()));
    let cfg = fleet_cfg(1, 7530, Some(dir.clone()));
    let fleet = Arc::new(Fleet::new(&cfg.host, &cfg.shard_ports()));
    let sup = Supervisor::start(Arc::clone(&fleet), cfg).expect("spawn shard");
    assert!(fleet.wait_alive(1, Duration::from_secs(30)), "shard comes up");

    let req = simulate_req("qr", "n=12", "revel");
    let first = fleet.forward(&req);
    assert!(matches!(first, Response::Result { .. }), "{first:?}");

    assert!(sup.kill_shard(0, false), "shard had a live process");
    assert!(
        wait_until(Duration::from_secs(30), || fleet.is_alive(0)),
        "shard respawns and probes healthy"
    );

    let shard_addr = format!("127.0.0.1:{}", fleet.shard_port(0).expect("shard 0 exists"));
    let mut direct = Client::connect(&shard_addr).expect("connect shard");
    let before = match direct.request(&Request::Stats).expect("stats") {
        Response::Stats { engine, .. } => engine,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(before.warm_start_entries >= 1, "disk tier recovered the run: {before:?}");

    let again = direct.request(&req).expect("repeat simulate");
    assert_eq!(
        encode_response(1, &first),
        encode_response(1, &again),
        "disk-served answer must match the live one"
    );
    let after = match direct.request(&Request::Stats).expect("stats") {
        Response::Stats { engine, .. } => engine,
        other => panic!("expected stats, got {other:?}"),
    };
    assert_eq!(after.disk_hits, before.disk_hits + 1, "served from disk: {after:?}");
    assert_eq!(after.misses, before.misses, "no re-simulation: {after:?}");

    sup.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The restart circuit: a shard whose respawns keep failing is struck
/// out after `max_restarts` attempts, permanently evicted from the
/// ring, and the fleet degrades to a structured retryable error instead
/// of respawning forever. The `supervisor.respawn` failpoint (scoped to
/// this fleet's base port) makes every respawn attempt fail.
#[test]
fn flapping_shard_trips_the_restart_circuit_and_is_evicted() {
    let mut cfg = fleet_cfg(1, 7560, None);
    cfg.max_restarts = 2;
    let fleet = Arc::new(Fleet::new(&cfg.host, &cfg.shard_ports()));
    let sup = Supervisor::start(Arc::clone(&fleet), cfg).expect("spawn shard");
    assert!(fleet.wait_alive(1, Duration::from_secs(30)), "shard comes up");

    revel_failpoint::arm(
        "supervisor.respawn",
        "7560",
        revel_failpoint::Action::InjectError,
        1,
        true,
    );
    assert!(sup.kill_shard(0, false), "shard had a live process");
    assert!(
        wait_until(Duration::from_secs(30), || fleet.is_evicted(0)),
        "circuit opens after max_restarts failed respawns"
    );
    revel_failpoint::disarm("supervisor.respawn", "7560");

    let roster = fleet.roster();
    assert!(roster[0].evicted, "{roster:?}");
    assert!(!roster[0].alive, "{roster:?}");
    assert_eq!(roster[0].restarts, 2, "exactly max_restarts attempts: {roster:?}");
    match fleet.forward(&simulate_req("solver", "n=12", "revel")) {
        Response::Error { kind, retry_after_ms, .. } => {
            assert_eq!(kind, "fleet_unavailable");
            assert!(retry_after_ms.is_some(), "the error must be retryable");
        }
        other => panic!("expected fleet_unavailable, got {other:?}"),
    }
    sup.shutdown();
}

/// Satellite gate: `revel_serve --cache-capacity` bounds the in-memory
/// cache and `revel_client --assert-evictions` pins the evictions from
/// the outside — the shipped binaries, end to end. An absurd floor makes
/// the same gate fail.
#[test]
fn client_asserts_evictions_against_a_capacity_bounded_server() {
    let port = "7541";
    let mut server = std::process::Command::new(env!("CARGO_BIN_EXE_revel_serve"))
        .args(["--host", "127.0.0.1", "--port", port, "--workers", "1", "--queue", "8"])
        .args(["--cache-capacity", "2"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .stdin(std::process::Stdio::null())
        .spawn()
        .expect("spawn revel_serve");
    let addr = format!("127.0.0.1:{port}");
    assert!(
        wait_until(Duration::from_secs(30), || Client::connect(&addr).is_ok()),
        "server comes up"
    );

    // Two passes over the smoke replay push 8 distinct simulate cells
    // through a 2-entry cache: evictions are guaranteed.
    let client = |evictions_floor: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_revel_client"))
            .args(["--host", "127.0.0.1", "--port", port, "--connections", "1"])
            .args(["--replay", "ci/smoke.jsonl", "--passes", "2"])
            .args(["--assert-evictions", evictions_floor])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("run revel_client")
    };
    assert!(client("1").success(), "a tiny cache under replay load must evict");
    assert!(!client("1000000").success(), "an absurd eviction floor must fail the gate");

    let mut c = Client::connect(&addr).expect("connect for shutdown");
    assert_eq!(c.request(&Request::Shutdown).expect("shutdown"), Response::ShuttingDown);
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exits cleanly after shutdown");
}
