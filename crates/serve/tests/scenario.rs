//! Scenario-runner integration tests over a loopback server: catalog
//! validity, seed-pinned determinism of the request stream, SLO gating,
//! and the standalone server's structured answer to `kill_shard`.

use revel_serve::client::Client;
use revel_serve::protocol::{Request, Response};
use revel_serve::scenario::{run, RunOptions};
use revel_serve::server::{FinalStats, Server, ServerConfig};
use revel_traffic::scenario::Scenario;

fn start(workers: usize, queue_capacity: usize) -> (String, std::thread::JoinHandle<FinalStats>) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        chaos_rate: 0.0,
        chaos_seed: 0,
        shard_id: None,
        ..Default::default()
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn shutdown(addr: &str) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    assert_eq!(c.request(&Request::Shutdown).expect("shutdown"), Response::ShuttingDown);
}

/// A small, fast scenario: warm cells, a quiet drain, and a reconnect
/// burst — the thundering-herd shape compressed for test wall-clock.
fn quick_scenario() -> Scenario {
    Scenario::parse(
        r#"{
          "version": 1,
          "name": "quick",
          "seed": 7,
          "connections": 3,
          "inflight": 1,
          "retries": 0,
          "mix": [
            {"weight": 2, "bench": "solver", "params": "n=12", "arch": "revel"},
            {"weight": 1, "bench": "fft", "params": "n=64", "arch": "revel"}
          ],
          "phases": [
            {"name": "warm", "duration_ms": 400, "pattern": {"kind": "constant", "rps": 30}},
            {"name": "drain", "duration_ms": 100, "pattern": {"kind": "silence"}},
            {"name": "stampede", "duration_ms": 400, "reconnect": true,
             "pattern": {"kind": "burst", "count": 12, "every_ms": 200, "spread_ms": 10}}
          ],
          "slos": [
            {"name": "served", "phase": "all", "min_success_rate": 0.99},
            {"name": "warm_cache", "phase": "stampede", "min_hit_rate": 0.5}
          ]
        }"#,
    )
    .expect("quick scenario parses")
}

#[test]
fn every_catalog_scenario_parses_and_plans() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/ci/scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("catalog dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).expect("read scenario");
        let scenario = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let plan =
            scenario.plan(None).unwrap_or_else(|e| panic!("{} does not plan: {e}", path.display()));
        assert_eq!(plan.phases.len(), scenario.phases.len());
        assert!(
            plan.phases.iter().any(|p| !p.arrivals.is_empty()),
            "{} offers no load at all",
            path.display()
        );
        // Catalog scenarios must pin at least one SLO — they are gates.
        assert!(!scenario.slos.is_empty(), "{} pins no SLOs", path.display());
    }
    assert!(seen >= 4, "expected the four catalog scenarios, found {seen}");
}

#[test]
fn runner_executes_phases_and_meets_slos_on_loopback() {
    let (addr, handle) = start(2, 32);
    let scenario = quick_scenario();
    let opts = RunOptions { addr: addr.clone(), seed_override: None, dump_requests: false };
    let report = run(&scenario, &opts).expect("run");
    assert_eq!(report.seed, 7);
    assert_eq!(report.phases.len(), 3);
    let (ref warm_name, ref warm) = report.phases[0];
    assert_eq!(warm_name, "warm");
    assert_eq!(warm.offered, 12, "400ms at 30 rps");
    let (ref drain_name, ref drain) = report.phases[1];
    assert_eq!(drain_name, "drain");
    assert_eq!(drain.offered, 0, "silence offers nothing");
    let (_, ref stampede) = report.phases[2];
    assert_eq!(stampede.offered, 24, "2 bursts of 12");
    assert_eq!(report.total.offered, 36);
    assert_eq!(report.total.ok, 36, "loopback run must fully succeed");
    assert!(
        report.phases.iter().all(|(_, s)| s.window.is_some()),
        "every phase needs a stats window"
    );
    assert!(report.violations.is_empty(), "SLO violations: {:?}", report.violations);
    // The per-phase JSON line is stable and machine-parseable.
    let line = warm.json_line("quick", "warm");
    assert!(line.starts_with("{\"type\":\"scenario_phase\",\"scenario\":\"quick\""), "{line}");
    shutdown(&addr);
    handle.join().expect("server thread");
}

#[test]
fn same_seed_produces_byte_identical_request_streams() {
    let (addr, handle) = start(2, 32);
    let scenario = quick_scenario();
    let opts = RunOptions { addr: addr.clone(), seed_override: Some(7), dump_requests: true };
    let a = run(&scenario, &opts).expect("first run");
    let b = run(&scenario, &opts).expect("second run");
    assert!(!a.dump.is_empty());
    assert_eq!(a.dump, b.dump, "same seed must replay a byte-identical request stream");
    // A different seed reorders the mix draws and arrival jitter.
    let opts9 = RunOptions { seed_override: Some(9), ..opts };
    let c = run(&scenario, &opts9).expect("third run");
    assert_ne!(a.dump, c.dump, "a different seed must change the stream");
    shutdown(&addr);
    handle.join().expect("server thread");
}

#[test]
fn violated_slos_are_reported_not_panicked() {
    let (addr, handle) = start(2, 32);
    let mut scenario = quick_scenario();
    // An impossible latency ceiling: the gate must trip.
    scenario.slos[0].max_p99_ms = Some(0.0);
    scenario.slos[0].min_success_rate = None;
    let opts = RunOptions { addr: addr.clone(), seed_override: None, dump_requests: false };
    let report = run(&scenario, &opts).expect("run");
    assert!(
        report.violations.iter().any(|v| v.slo == "served"),
        "expected the impossible p99 gate to trip, got {:?}",
        report.violations
    );
    shutdown(&addr);
    handle.join().expect("server thread");
}

#[test]
fn kill_shard_on_a_standalone_server_is_a_structured_error() {
    let (addr, handle) = start(1, 8);
    let mut c = Client::connect(&addr).expect("connect");
    let resp = c
        .request(&Request::KillShard {
            shard: Some(0),
            bench: None,
            params: None,
            arch: None,
            wipe_snapshot: false,
        })
        .expect("kill_shard answered");
    match resp {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, "no_fleet");
            assert!(message.contains("fleet"), "unhelpful message: {message}");
        }
        other => panic!("expected a structured no_fleet error, got {other:?}"),
    }
    shutdown(&addr);
    handle.join().expect("server thread");
}

#[test]
fn scenario_runner_survives_a_vanishing_server() {
    // Bind, grab the address, then drop the listener: every dial fails.
    // The runner must come back with a report full of errors, not hang or
    // panic.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    let scenario = Scenario::parse(
        r#"{
          "version": 1,
          "name": "ghost",
          "connections": 2,
          "mix": [{"bench": "solver", "params": "n=12", "arch": "revel"}],
          "phases": [
            {"name": "only", "duration_ms": 200, "pattern": {"kind": "constant", "rps": 20}}
          ],
          "slos": [{"name": "served", "min_success_rate": 0.9}]
        }"#,
    )
    .expect("parses");
    let opts = RunOptions { addr, seed_override: None, dump_requests: false };
    let report = run(&scenario, &opts).expect("run completes");
    assert_eq!(report.total.offered, 4, "200ms at 20 rps");
    assert_eq!(report.total.ok, 0);
    assert_eq!(report.total.errors, 4, "unreachable server: every request errors");
    assert!(
        report.violations.iter().any(|v| v.slo == "served"),
        "the success-rate gate must trip: {:?}",
        report.violations
    );
}
