//! Wire-protocol invariants: every request/response variant survives an
//! encode → decode round trip byte-exactly, and hostile frames (malformed
//! JSON, schema violations, oversized lines) are rejected as errors — never
//! panics.

use revel_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_all_frames,
    EngineStatsWire, Frame, FrameReader, Request, Response, ScheduleStatsWire, ServerStatsWire,
    ShardStatsWire, MAX_FRAME_BYTES,
};

fn every_request() -> Vec<Request> {
    vec![
        Request::Health,
        Request::Stats,
        Request::Shutdown,
        Request::FleetStats,
        Request::Sleep { ms: 250 },
        Request::Simulate {
            bench: "qr".into(),
            params: "n=12".into(),
            arch: "revel".into(),
            deadline_ms: None,
            max_cycles: None,
            reference_stepper: false,
            fault_seed: None,
            fault_count: None,
            fault_window: None,
        },
        Request::Simulate {
            bench: "deadlock-probe".into(),
            params: String::new(),
            arch: String::new(),
            deadline_ms: Some(1500),
            max_cycles: Some(100_000),
            reference_stepper: true,
            fault_seed: None,
            fault_count: None,
            fault_window: None,
        },
        Request::Simulate {
            bench: "cholesky".into(),
            params: "n=12".into(),
            arch: "revel".into(),
            deadline_ms: None,
            max_cycles: None,
            reference_stepper: false,
            fault_seed: Some(0xDEAD_BEEF),
            fault_count: Some(4),
            fault_window: Some(4096),
        },
        Request::SimulateBatch {
            bench: "fft".into(),
            params: "n=64".into(),
            arch: "revel".into(),
            seeds: vec![1, 2, 3, 0xFFFF_FFFF_FFFF],
        },
        Request::SimulateBatch {
            bench: "solver".into(),
            params: "n=16".into(),
            arch: "dataflow".into(),
            seeds: vec![42],
        },
        Request::Lint {
            bench: "fir".into(),
            params: "m=37 n=1024".into(),
            arch: "systolic".into(),
        },
        Request::Compare { bench: "gemm".into(), params: "12x16x64".into() },
        Request::KillShard {
            shard: Some(2),
            bench: None,
            params: None,
            arch: None,
            wipe_snapshot: true,
        },
        Request::KillShard {
            shard: None,
            bench: Some("solver".into()),
            params: Some("n=12".into()),
            arch: Some("revel".into()),
            wipe_snapshot: false,
        },
    ]
}

fn every_response() -> Vec<Response> {
    vec![
        Response::Health {
            workers: 8,
            queue_capacity: 64,
            queue_depth: 3,
            active_connections: 2,
            shard_id: None,
        },
        Response::Health {
            workers: 1,
            queue_capacity: 8,
            queue_depth: 0,
            active_connections: 1,
            shard_id: Some(2),
        },
        Response::FleetStats {
            shards: vec![
                ShardStatsWire {
                    shard: 0,
                    port: 7412,
                    alive: true,
                    routed: 120,
                    failed: 0,
                    restarts: 0,
                    evicted: false,
                },
                ShardStatsWire {
                    shard: 1,
                    port: 7413,
                    alive: false,
                    routed: 33,
                    failed: 2,
                    restarts: 3,
                    evicted: true,
                },
            ],
        },
        Response::FleetStats { shards: vec![] },
        Response::Stats {
            engine: EngineStatsWire {
                hits: 10,
                misses: 3,
                evictions: 1,
                capacity: 1024,
                run_entries: 2,
                lint_entries: 1,
                sim_cycles: 123_456_789,
                skipped_cycles: 100_000_000,
                fault_bypasses: 6,
                oblivious_entries: 2,
                deadline_fallbacks: 1,
                trace_hits: 4,
                batched_replays: 32,
                disk_hits: 7,
                warm_start_entries: 5,
                disk_cold_starts: 1,
            },
            schedule: ScheduleStatsWire { hits: 40, misses: 5, entries: 5 },
            server: ServerStatsWire {
                received: 50,
                completed: 48,
                overloaded: 1,
                timed_out: 2,
                errors: 1,
                conn_timeouts: 3,
                write_overflows: 1,
            },
        },
        Response::ShuttingDown,
        Response::Slept { ms: 250 },
        Response::Result { cycles: 7185, commands_issued: 120, verified: true, error: None },
        Response::Result {
            cycles: 7185,
            commands_issued: 120,
            verified: false,
            error: Some("lane 3 diverged".into()),
        },
        Response::BatchResult {
            cycles: 7185,
            commands_issued: 120,
            batch: 64,
            verified: true,
            replayed: true,
        },
        Response::BatchResult {
            cycles: 9000,
            commands_issued: 80,
            batch: 8,
            verified: false,
            replayed: false,
        },
        Response::TimedOut { cycles: 100_000, deadline_expired: false, deadlock: None },
        Response::TimedOut {
            cycles: 50_000,
            deadline_expired: true,
            deadlock: Some("=== DEADLOCK at cycle 50000 ===\nlane 0: waiting".into()),
        },
        Response::Comparison { revel_cycles: 7185, systolic_cycles: 21019, dataflow_cycles: 14000 },
        Response::Lint { clean: true, diagnostics: vec![] },
        Response::Lint {
            clean: false,
            diagnostics: vec!["W001: unused port".into(), "E002: deadlock".into()],
        },
        Response::ShardKilled { shard: 1, wiped: true },
        Response::ShardKilled { shard: 0, wiped: false },
        Response::Overloaded { capacity: 64, retry_after_ms: None },
        Response::Overloaded { capacity: 1, retry_after_ms: Some(30) },
        Response::Error {
            kind: "bad_request".into(),
            message: "missing field 'op'".into(),
            retry_after_ms: None,
        },
        Response::Error {
            kind: "injected_fault".into(),
            message: "chaos: injected worker panic".into(),
            retry_after_ms: Some(15),
        },
        Response::Faulted {
            cycles: 88_001,
            applied: 3,
            missed: 1,
            pending: 0,
            first_divergence: Some(1042),
        },
        Response::Faulted { cycles: 12, applied: 0, missed: 4, pending: 0, first_divergence: None },
    ]
}

/// The no-hint encodings must be byte-identical to the pre-fault wire
/// format: old clients keep decoding new servers (and canned replay files
/// keep replaying) unchanged.
#[test]
fn hint_free_frames_match_the_legacy_wire_format() {
    let over = Response::Overloaded { capacity: 64, retry_after_ms: None };
    assert_eq!(encode_response(1, &over), "{\"id\":1,\"type\":\"overloaded\",\"capacity\":64}\n");
    let err = Response::Error {
        kind: "bad_request".into(),
        message: "nope".into(),
        retry_after_ms: None,
    };
    assert_eq!(
        encode_response(2, &err),
        "{\"id\":2,\"type\":\"error\",\"kind\":\"bad_request\",\"message\":\"nope\"}\n"
    );
    let req = Request::Simulate {
        bench: "qr".into(),
        params: "n=12".into(),
        arch: "revel".into(),
        deadline_ms: None,
        max_cycles: None,
        reference_stepper: false,
        fault_seed: None,
        fault_count: None,
        fault_window: None,
    };
    assert_eq!(
        encode_request(3, &req),
        "{\"id\":3,\"op\":\"simulate\",\"bench\":\"qr\",\"params\":\"n=12\",\"arch\":\"revel\"}\n"
    );
}

/// A stats frame from a pre-batching server (no `deadline_fallbacks`,
/// `trace_hits`, or `batched_replays` fields) must still decode — the new
/// counters default to zero rather than failing the frame.
#[test]
fn legacy_stats_frames_decode_with_zeroed_new_counters() {
    let legacy = concat!(
        "{\"id\":9,\"type\":\"stats\",",
        "\"engine\":{\"hits\":10,\"misses\":3,\"evictions\":1,\"capacity\":1024,",
        "\"run_entries\":2,\"lint_entries\":1,\"sim_cycles\":5,\"skipped_cycles\":0,",
        "\"fault_bypasses\":6,\"oblivious_entries\":2},",
        "\"schedule_cache_stats\":{\"hits\":40,\"misses\":5,\"entries\":5},",
        "\"server\":{\"received\":50,\"completed\":48,\"overloaded\":1,",
        "\"timed_out\":2,\"errors\":1}}"
    );
    let (id, resp) = decode_response(legacy).expect("legacy stats frame must decode");
    assert_eq!(id, 9);
    match resp {
        Response::Stats { engine, .. } => {
            assert_eq!(engine.hits, 10);
            assert_eq!(engine.deadline_fallbacks, 0);
            assert_eq!(engine.trace_hits, 0);
            assert_eq!(engine.batched_replays, 0);
            assert_eq!(engine.disk_hits, 0);
            assert_eq!(engine.warm_start_entries, 0);
            assert_eq!(engine.disk_cold_starts, 0);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
}

/// A health frame from a pre-fleet server (no `queue_depth`,
/// `active_connections`, or `shard_id`) must still decode, with the new
/// fields defaulted — and a standalone server's own health frame omits
/// `shard_id` entirely (the byte-stability convention for optional
/// fields).
#[test]
fn legacy_health_frames_decode_and_shard_id_is_omitted_when_absent() {
    let legacy = "{\"id\":4,\"type\":\"health\",\"workers\":8,\"queue_capacity\":64}";
    let (id, resp) = decode_response(legacy).expect("legacy health frame must decode");
    assert_eq!(id, 4);
    assert_eq!(
        resp,
        Response::Health {
            workers: 8,
            queue_capacity: 64,
            queue_depth: 0,
            active_connections: 0,
            shard_id: None,
        }
    );
    let frame = encode_response(4, &resp);
    assert!(!frame.contains("shard_id"), "absent shard_id stays off the wire: {frame}");
    let sharded = Response::Health {
        workers: 8,
        queue_capacity: 64,
        queue_depth: 0,
        active_connections: 0,
        shard_id: Some(0),
    };
    assert!(
        encode_response(4, &sharded).contains("\"shard_id\":0"),
        "a shard reports its id on the wire"
    );
}

#[test]
fn every_request_round_trips() {
    for (i, req) in every_request().into_iter().enumerate() {
        let id = (i as u64) * 7 + 1;
        let frame = encode_request(id, &req);
        assert!(frame.ends_with('\n') && frame.len() <= MAX_FRAME_BYTES);
        let (rid, back) = decode_request(&frame).unwrap_or_else(|e| panic!("{req:?}: {e}"));
        assert_eq!(rid, id);
        assert_eq!(back, req);
        // Re-encoding is byte-stable (deterministic field order).
        assert_eq!(encode_request(id, &back), frame);
    }
}

#[test]
fn every_response_round_trips() {
    for (i, resp) in every_response().into_iter().enumerate() {
        let id = (i as u64) * 3 + 2;
        let frame = encode_response(id, &resp);
        assert!(frame.ends_with('\n') && frame.len() <= MAX_FRAME_BYTES);
        let (rid, back) = decode_response(&frame).unwrap_or_else(|e| panic!("{resp:?}: {e}"));
        assert_eq!(rid, id);
        assert_eq!(back, resp);
        assert_eq!(encode_response(id, &back), frame);
    }
}

#[test]
fn malformed_frames_are_rejected_not_panics() {
    for bad in [
        "",
        "not json",
        "[1,2,3]",
        "{\"id\":1}",
        "{\"op\":\"health\"}",
        "{\"id\":\"x\",\"op\":\"health\"}",
        "{\"id\":1,\"op\":\"conquer\"}",
        "{\"id\":1,\"op\":\"sleep\"}",
        "{\"id\":1,\"op\":\"simulate\",\"bench\":\"qr\"}",
        "{\"id\":1,\"op\":\"simulate\",\"bench\":\"qr\",\"params\":\"n=12\",\"arch\":\"revel\",\"deadline_ms\":-5}",
        "{\"id\":-1,\"op\":\"health\"}",
        "{\"id\":1,\"op\":\"simulate_batch\",\"bench\":\"fft\",\"params\":\"n=64\",\"arch\":\"revel\"}",
        "{\"id\":1,\"op\":\"simulate_batch\",\"bench\":\"fft\",\"params\":\"n=64\",\"arch\":\"revel\",\"seeds\":[1,\"two\"]}",
        "{\"id\":1,\"op\":\"simulate_batch\",\"bench\":\"fft\",\"params\":\"n=64\",\"arch\":\"revel\",\"seeds\":7}",
    ] {
        assert!(decode_request(bad).is_err(), "must reject {bad:?}");
    }
    for bad in
        ["{}", "{\"id\":1}", "{\"id\":1,\"type\":\"victory\"}", "{\"id\":1,\"type\":\"result\"}"]
    {
        assert!(decode_response(bad).is_err(), "must reject {bad:?}");
    }
}

#[test]
fn oversized_frames_are_flagged_during_accumulation() {
    let huge = format!("{}\n", "x".repeat(MAX_FRAME_BYTES + 100));
    let mut fr = FrameReader::new(huge.as_bytes());
    match fr.next_frame().expect("reads") {
        Some(Frame::Oversized(n)) => assert!(n > MAX_FRAME_BYTES),
        other => panic!("expected Oversized, got {other:?}"),
    }
    // A frame exactly at the bound still passes.
    let fit = format!("{}\n", "y".repeat(MAX_FRAME_BYTES - 1));
    let mut fr = FrameReader::new(fit.as_bytes());
    assert!(
        matches!(fr.next_frame().expect("reads"), Some(Frame::Line(l)) if l.len() == MAX_FRAME_BYTES - 1)
    );
}

#[test]
fn frame_reader_splits_lines_and_handles_crlf() {
    let input = "alpha\r\nbeta\n\ngamma"; // no trailing newline on gamma
    let mut fr = FrameReader::new(input.as_bytes());
    assert_eq!(fr.next_frame().unwrap(), Some(Frame::Line("alpha".into())));
    assert_eq!(fr.next_frame().unwrap(), Some(Frame::Line("beta".into())));
    assert_eq!(fr.next_frame().unwrap(), Some(Frame::Line(String::new())));
    // An unterminated trailing partial is discarded at EOF (a frame is a line).
    assert_eq!(fr.next_frame().unwrap(), None);
}

#[test]
fn read_all_frames_skips_blanks() {
    let file = "a\n\n  \nb\n";
    let frames = read_all_frames(std::io::BufReader::new(file.as_bytes())).unwrap();
    assert_eq!(frames, vec!["a".to_string(), "b".to_string()]);
}
