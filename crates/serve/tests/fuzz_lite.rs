//! Protocol fuzz-lite: ten thousand seeded mutations of valid frames must
//! never panic the decoders — every rejection is a structured error. This
//! is the cheap, deterministic cousin of a real fuzzer: byte flips,
//! insertions, deletions, and truncations applied to known-good frames
//! explore the parser's edges without an external harness.

use revel_core::isa::Rng;
use revel_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
};

fn valid_frames() -> Vec<String> {
    let reqs = [
        Request::Health,
        Request::Stats,
        Request::Shutdown,
        Request::Sleep { ms: 250 },
        Request::Simulate {
            bench: "qr".into(),
            params: "n=12".into(),
            arch: "revel".into(),
            deadline_ms: Some(1500),
            max_cycles: Some(100_000),
            reference_stepper: true,
            fault_seed: Some(7),
            fault_count: Some(4),
            fault_window: Some(4096),
        },
        Request::Lint {
            bench: "fir".into(),
            params: "m=37 n=1024".into(),
            arch: "systolic".into(),
        },
        Request::Compare { bench: "gemm".into(), params: "12x16x64".into() },
        Request::KillShard {
            shard: None,
            bench: Some("solver".into()),
            params: Some("n=12".into()),
            arch: Some("revel".into()),
            wipe_snapshot: true,
        },
    ];
    let resps = [
        Response::ShuttingDown,
        Response::Slept { ms: 250 },
        Response::Result { cycles: 7185, commands_issued: 120, verified: true, error: None },
        Response::TimedOut {
            cycles: 50_000,
            deadline_expired: true,
            deadlock: Some("=== DEADLOCK at cycle 50000 ===\nlane 0: waiting".into()),
        },
        Response::Faulted {
            cycles: 88_001,
            applied: 3,
            missed: 1,
            pending: 0,
            first_divergence: Some(1042),
        },
        Response::Overloaded { capacity: 1, retry_after_ms: Some(30) },
        Response::Error {
            kind: "injected_fault".into(),
            message: "chaos: injected worker panic".into(),
            retry_after_ms: Some(15),
        },
    ];
    let mut frames: Vec<String> = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        frames.push(encode_request(i as u64 + 1, r));
    }
    for (i, r) in resps.iter().enumerate() {
        frames.push(encode_response(i as u64 + 1, r));
    }
    frames
}

/// One seeded mutation: flip a byte, insert a byte, delete a byte, or
/// truncate the tail. Lossy-decoded back to `&str` (the wire layer hands
/// the decoders whole lines, so UTF-8 repair mirrors what a hostile peer
/// can actually deliver through `FrameReader`).
fn mutate(frame: &str, rng: &mut Rng) -> String {
    let mut bytes = frame.as_bytes().to_vec();
    let edits = 1 + rng.gen_index(3);
    for _ in 0..edits {
        if bytes.is_empty() {
            break;
        }
        match rng.gen_index(4) {
            0 => {
                let i = rng.gen_index(bytes.len());
                bytes[i] ^= (1 + rng.gen_index(255)) as u8;
            }
            1 => {
                let i = rng.gen_index(bytes.len() + 1);
                bytes.insert(i, rng.gen_index(256) as u8);
            }
            2 => {
                let i = rng.gen_index(bytes.len());
                bytes.remove(i);
            }
            _ => {
                let keep = rng.gen_index(bytes.len());
                bytes.truncate(keep);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn ten_thousand_seeded_mutations_never_panic_the_decoders() {
    let frames = valid_frames();
    let mut rng = Rng::seed_from_u64(0x5EED_F00D);
    let mut rejected = 0u64;
    let mut survived = 0u64;
    for _ in 0..10_000 {
        let base = &frames[rng.gen_index(frames.len())];
        let mutant = mutate(base, &mut rng);
        // The contract under test is "no panic, structured outcome": a
        // mutant may still parse (e.g. a digit flip inside a count) — that
        // is a valid frame and must round-trip like any other.
        match decode_request(&mutant) {
            Ok((id, req)) => {
                survived += 1;
                let re = encode_request(id, &req);
                let (id2, req2) = decode_request(&re).expect("re-encoded frame must decode");
                assert_eq!((id2, req2), (id, req), "re-encode must be stable");
            }
            Err(e) => {
                rejected += 1;
                assert!(!e.message.is_empty(), "rejections carry a diagnostic");
            }
        }
        match decode_response(&mutant) {
            Ok((id, resp)) => {
                let re = encode_response(id, &resp);
                let (id2, resp2) = decode_response(&re).expect("re-encoded frame must decode");
                assert_eq!((id2, resp2), (id, resp), "re-encode must be stable");
            }
            Err(e) => assert!(!e.message.is_empty(), "rejections carry a diagnostic"),
        }
    }
    // Sanity on the corpus itself: mutations overwhelmingly produce
    // rejections, but the loop genuinely exercised both paths.
    assert!(rejected > 5_000, "mutation corpus too tame: {rejected} rejections");
    assert!(rejected + survived == 10_000);
}

#[test]
fn the_seed_corpus_itself_round_trips() {
    for frame in valid_frames() {
        let req = decode_request(&frame);
        let resp = decode_response(&frame);
        assert!(
            req.is_ok() || resp.is_ok(),
            "every seed frame must decode as a request or a response: {frame:?}"
        );
    }
}
