//! Signal escalation, end to end: a first SIGTERM starts a graceful
//! drain; a second one during the drain force-exits the process with the
//! distinct [`FORCED_EXIT_CODE`] — the operator can always get out, and
//! the supervisor can tell a forced kill from a clean drain.

#![cfg(unix)]

use revel_serve::client::Client;
use revel_serve::protocol::Request;
use revel_serve::signal::FORCED_EXIT_CODE;
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Spawns the real `revel_serve` binary on an ephemeral port and returns
/// (child, addr) once the listening line appears on stderr.
fn spawn_server(extra: &[&str]) -> (std::process::Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_revel_serve"));
    cmd.args(["--port", "0", "--workers", "1", "--queue", "4"])
        .args(extra)
        .stderr(Stdio::piped())
        .stdout(Stdio::null());
    let mut child = cmd.spawn().expect("spawn revel_serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines.next().expect("stderr open").expect("stderr line");
        if let Some(rest) = line.strip_prefix("revel-serve: listening on ") {
            break rest.split_whitespace().next().expect("addr token").to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn send_signal(pid: u32, sig: &str) {
    let status =
        Command::new("kill").args(["-s", sig, &pid.to_string()]).status().expect("run kill");
    assert!(status.success(), "kill -s {sig} {pid} failed");
}

#[test]
fn second_sigterm_during_drain_forces_exit_code_3() {
    let (mut child, addr) = spawn_server(&[]);
    let pid = child.id();

    // Occupy the single worker so the post-SIGTERM drain has real work to
    // wait on — the server cannot exit cleanly while this is in flight.
    let mut c = Client::connect(&addr).expect("connect");
    let holder = std::thread::spawn(move || {
        // The sleep outlives the test's signals; the forced exit severs
        // the connection mid-request, which surfaces as a client error.
        let _ = c.request(&Request::Sleep { ms: 20_000 });
    });
    std::thread::sleep(Duration::from_millis(300)); // worker mid-sleep

    // First signal: graceful drain begins; the process must still be
    // alive, waiting on the in-flight sleep.
    send_signal(pid, "TERM");
    std::thread::sleep(Duration::from_millis(300));
    assert!(child.try_wait().expect("try_wait").is_none(), "drain must still be in progress");

    // Second signal: immediate forced exit with the distinct code.
    let t0 = Instant::now();
    send_signal(pid, "TERM");
    let status = loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            break st;
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "forced exit must be fast");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        status.code(),
        Some(FORCED_EXIT_CODE),
        "a forced exit reports code {FORCED_EXIT_CODE}, got {status:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "second signal must not wait for the 20s sleep (took {:?})",
        t0.elapsed()
    );
    holder.join().expect("holder thread");
}

#[test]
fn single_sigterm_still_drains_cleanly() {
    let (mut child, addr) = spawn_server(&[]);
    let pid = child.id();

    // A short in-flight request: the drain waits for it, then exits 0.
    let mut c = Client::connect(&addr).expect("connect");
    let holder = std::thread::spawn(move || c.request(&Request::Sleep { ms: 400 }));
    std::thread::sleep(Duration::from_millis(150));

    send_signal(pid, "TERM");
    let t0 = Instant::now();
    let status = loop {
        if let Some(st) = child.try_wait().expect("try_wait") {
            break st;
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "drain must finish");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "a clean drain exits 0, got {status:?}");
    // The in-flight request was answered before exit.
    let resp = holder.join().expect("holder").expect("drained response");
    assert_eq!(resp, revel_serve::protocol::Response::Slept { ms: 400 });
}
