//! A bounded multi-producer/multi-consumer job queue.
//!
//! Admission control for the server: producers (connection threads) use
//! [`Bounded::try_push`], which *never blocks* — a full queue returns the
//! job to the caller so it can answer `overloaded` immediately. Consumers
//! (workers) block on [`Bounded::pop`] until a job arrives or the queue is
//! closed and drained, which is exactly the graceful-shutdown contract:
//! close, then every already-admitted job still gets served.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] declined a job (the job is handed back).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue is closed (server draining).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: non-blocking admission, blocking consumption.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` (≥ 1) queued items.
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued (not yet popped) items.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item` without blocking.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`Bounded::close`]; both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained (a consumer never abandons admitted work).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: future pushes fail, consumers drain then exit.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn full_queue_returns_the_item() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_stops_consumers() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)), "no admission after close");
        // Already-admitted items still come out, then None.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed+empty stays None");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q: Bounded<u8> = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        const PER_PRODUCER: usize = 200;
        let q = Bounded::new(8);
        let consumed = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (q, consumed, sum) = (&q, &consumed, &sum);
            for p in 0..3 {
                s.spawn(move || {
                    let base = p * PER_PRODUCER;
                    for i in 0..PER_PRODUCER {
                        // Producers spin on Full — this test exercises
                        // conservation, not admission control.
                        let mut item = base + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    while let Some(item) = q.pop() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(item, Ordering::Relaxed);
                    }
                });
            }
            // Close only after every item is through, releasing consumers.
            while consumed.load(Ordering::Relaxed) < 3 * PER_PRODUCER {
                std::thread::yield_now();
            }
            q.close();
        });
        let n = 3 * PER_PRODUCER;
        assert_eq!(consumed.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2, "every item exactly once");
    }
}
