//! Blocking client for the JSON-lines protocol, plus the latency helpers
//! the load generator reports with.

use crate::protocol::{
    decode_response, encode_request, Frame, FrameReader, ProtoError, Request, Response,
};
use revel_core::isa::Rng;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A connected client (one TCP stream, requests answered in order).
pub struct Client {
    writer: TcpStream,
    frames: FrameReader<TcpStream>,
    next_id: u64,
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server closed the connection.
    Closed,
    /// An undecodable or mismatched response frame.
    Protocol(String),
    /// The circuit breaker is open: the request was rejected locally
    /// without touching the wire.
    CircuitOpen,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Closed => f.write_str("server closed the connection"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::CircuitOpen => f.write_str("circuit breaker open"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Protocol(e.message)
    }
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7411`).
    ///
    /// # Errors
    /// Propagates connect errors.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { writer, frames: FrameReader::new(stream), next_id: 1 })
    }

    /// Sets the socket read timeout (a hang backstop — both directions of
    /// the connection share the underlying socket). `None` blocks forever.
    ///
    /// # Errors
    /// Propagates `set_read_timeout` I/O errors.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(dur)?;
        Ok(())
    }

    /// Sends one request and blocks for its response. The response `id`
    /// must echo the request's.
    ///
    /// # Errors
    /// Transport failures, a closed connection, or a protocol violation.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(encode_request(id, req).as_bytes())?;
        match self.frames.next_frame()? {
            None => Err(ClientError::Closed),
            Some(Frame::Oversized(n)) => {
                Err(ClientError::Protocol(format!("oversized response frame ({n}+ bytes)")))
            }
            Some(Frame::Line(line)) => {
                let (rid, resp) = decode_response(&line)?;
                if rid != id {
                    return Err(ClientError::Protocol(format!(
                        "response id {rid} does not echo request id {id}"
                    )));
                }
                Ok(resp)
            }
        }
    }

    /// Pipelining half 1: send one request without waiting for its reply,
    /// returning the frame id. The server answers a connection's requests
    /// strictly in order, so interleave [`recv`](Client::recv) calls FIFO.
    ///
    /// # Errors
    /// Transport failures.
    pub fn send(&mut self, req: &Request) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(encode_request(id, req).as_bytes())?;
        Ok(id)
    }

    /// Pipelining half 2: block for the next response frame, `(id,
    /// response)`. A read timeout set via
    /// [`set_read_timeout`](Client::set_read_timeout) surfaces as
    /// [`ClientError::Io`] with `WouldBlock`/`TimedOut`; a partial frame
    /// survives in the buffer, so calling again resumes cleanly.
    ///
    /// # Errors
    /// Transport failures, a closed connection, or a protocol violation.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        match self.frames.next_frame()? {
            None => Err(ClientError::Closed),
            Some(Frame::Oversized(n)) => {
                Err(ClientError::Protocol(format!("oversized response frame ({n}+ bytes)")))
            }
            Some(Frame::Line(line)) => Ok(decode_response(&line)?),
        }
    }

    /// Sends a raw pre-encoded frame (replay mode) and decodes the reply.
    ///
    /// # Errors
    /// Transport failures, a closed connection, or a protocol violation.
    pub fn request_raw(&mut self, frame: &str) -> Result<(u64, Response), ClientError> {
        self.writer.write_all(frame.as_bytes())?;
        if !frame.ends_with('\n') {
            self.writer.write_all(b"\n")?;
        }
        match self.frames.next_frame()? {
            None => Err(ClientError::Closed),
            Some(Frame::Oversized(n)) => {
                Err(ClientError::Protocol(format!("oversized response frame ({n}+ bytes)")))
            }
            Some(Frame::Line(line)) => Ok(decode_response(&line)?),
        }
    }
}

/// Capped exponential backoff with deterministic jitter.
///
/// Retry `attempt` (1-based) sleeps `base_ms << (attempt-1)` capped at
/// `cap_ms`, then jittered into `[raw/2, raw]` by a seeded [`Rng`] — fixed
/// seed ⇒ reproducible delay sequence, no thundering herd. A server
/// `retry_after_ms` hint acts as a floor: the client never comes back
/// sooner than the server asked.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request, first try included (1 = never retry).
    pub max_attempts: u32,
    /// Backoff base for the first retry, in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub cap_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 5, base_ms: 10, cap_ms: 1000, seed: 0 }
    }
}

/// Computes the delay (ms) before retry `attempt` (1-based).
fn backoff_ms(policy: &RetryPolicy, attempt: u32, hint_ms: Option<u64>, rng: &mut Rng) -> u64 {
    let shift = u32::min(attempt.saturating_sub(1), 16);
    let raw = policy.base_ms.saturating_mul(1 << shift).min(policy.cap_ms);
    let jittered = raw / 2 + rng.next_u64() % (raw / 2 + 1);
    jittered.max(hint_ms.unwrap_or(0))
}

/// Consecutive-failure circuit breaker: `threshold` request-level failures
/// in a row open the circuit; while open, requests fail fast with
/// [`ClientError::CircuitOpen`]. After `cooldown` the breaker goes
/// half-open and admits a single probe — success closes it, failure
/// re-opens it for another cooldown.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    consecutive: u32,
    opened_at: Option<Instant>,
    half_open: bool,
    opened_total: u64,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// probes again after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive: 0,
            opened_at: None,
            half_open: false,
            opened_total: 0,
        }
    }

    /// May a request proceed right now? Open + cooled-down flips to
    /// half-open and admits the probe.
    pub fn admit(&mut self) -> bool {
        match self.opened_at {
            None => true,
            Some(t) if t.elapsed() >= self.cooldown => {
                self.half_open = true;
                true
            }
            Some(_) => false,
        }
    }

    /// Records a request-level success (closes the circuit).
    pub fn record_success(&mut self) {
        self.consecutive = 0;
        self.opened_at = None;
        self.half_open = false;
    }

    /// Records a request-level failure (a request that stayed failed after
    /// all its retries — individual failed attempts don't count).
    pub fn record_failure(&mut self) {
        self.consecutive += 1;
        if self.half_open || self.consecutive >= self.threshold {
            if self.opened_at.is_none() || self.half_open {
                self.opened_total += 1;
            }
            self.opened_at = Some(Instant::now());
            self.half_open = false;
        }
    }

    /// True while the circuit is open (cooldown may or may not have
    /// elapsed; `admit` is what decides whether a probe goes out).
    pub fn is_open(&self) -> bool {
        self.opened_at.is_some()
    }

    /// How many times the circuit has transitioned closed→open.
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }
}

/// A self-healing client: reconnects on transport failure, retries
/// retryable responses under a [`RetryPolicy`], and fails fast behind a
/// [`CircuitBreaker`].
pub struct RetryClient {
    addr: String,
    client: Option<Client>,
    policy: RetryPolicy,
    rng: Rng,
    breaker: CircuitBreaker,
    retries: u64,
    connects: u64,
}

impl RetryClient {
    /// A retrying client for `addr`. No connection is made until the
    /// first request.
    pub fn new(addr: &str, policy: RetryPolicy, breaker: CircuitBreaker) -> RetryClient {
        RetryClient {
            addr: addr.to_string(),
            client: None,
            rng: Rng::seed_from_u64(policy.seed),
            policy,
            breaker,
            retries: 0,
            connects: 0,
        }
    }

    /// Retry attempts performed beyond first tries, across all requests.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// TCP connections established (1 = never had to reconnect).
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// The breaker's current state, for reporting.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    fn ensure_connected(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            self.client = Some(Client::connect(&self.addr)?);
            self.connects += 1;
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// Sends `req`, retrying transport failures and retryable responses
    /// (`Overloaded`, `injected_fault`, `shutting_down`) with backoff.
    /// Returns the last response if retries are exhausted while it is
    /// still retryable — the caller sees exactly what the server said.
    ///
    /// # Errors
    /// [`ClientError::CircuitOpen`] when failing fast; otherwise the last
    /// transport/protocol error after retries are exhausted.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        if !self.breaker.admit() {
            return Err(ClientError::CircuitOpen);
        }
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let result = match self.ensure_connected() {
                Ok(c) => c.request(req),
                Err(e) => Err(e),
            };
            match result {
                Ok(resp) => {
                    if !resp.is_retryable() {
                        self.breaker.record_success();
                        return Ok(resp);
                    }
                    if attempt >= max_attempts {
                        self.breaker.record_failure();
                        return Ok(resp);
                    }
                    self.retries += 1;
                    let delay =
                        backoff_ms(&self.policy, attempt, resp.retry_after_ms(), &mut self.rng);
                    std::thread::sleep(Duration::from_millis(delay));
                }
                Err(e) => {
                    // The connection is suspect after any error; drop it so
                    // the next attempt reconnects from scratch.
                    self.client = None;
                    let transient = matches!(e, ClientError::Io(_) | ClientError::Closed);
                    if !transient || attempt >= max_attempts {
                        self.breaker.record_failure();
                        return Err(e);
                    }
                    self.retries += 1;
                    let delay = backoff_ms(&self.policy, attempt, None, &mut self.rng);
                    std::thread::sleep(Duration::from_millis(delay));
                }
            }
        }
    }
}

/// Latency percentile over an **unsorted** sample set (sorts a copy):
/// nearest-rank, `p` in [0, 100].
///
/// # Panics
/// On a non-finite or out-of-range `p`. The old behavior silently clamped
/// (NaN ceiled to rank 0 and reported the *minimum* as "p99"); a caller
/// holding a bad percentile has a bug that must not masquerade as a
/// latency number.
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    assert!(
        p.is_finite() && (0.0..=100.0).contains(&p),
        "percentile p must be finite and in [0, 100], got {p}"
    );
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Formats a duration as fractional milliseconds.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}ms", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 90.0), Duration::from_millis(90));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&ms, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&[], 99.0), Duration::ZERO);
        // Unsorted input is handled.
        let mixed = [3, 1, 2].map(Duration::from_millis);
        assert_eq!(percentile(&mixed, 50.0), Duration::from_millis(2));
    }

    #[test]
    fn percentile_boundaries_are_exact() {
        let ms: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        // Finite edges of the valid range are legal, not near-misses.
        assert_eq!(percentile(&ms, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&ms, 100.0), Duration::from_millis(10));
        // A single sample answers every percentile.
        assert_eq!(percentile(&[Duration::from_millis(7)], 99.9), Duration::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn percentile_rejects_nan() {
        // The old clamp ceiled NaN to rank 0 and silently reported the
        // minimum; a NaN percentile is a caller bug and must be loud.
        let ms: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        let _ = percentile(&ms, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn percentile_rejects_infinity() {
        let ms: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        let _ = percentile(&ms, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "in [0, 100]")]
    fn percentile_rejects_out_of_range() {
        let ms: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        let _ = percentile(&ms, 100.5);
    }

    #[test]
    #[should_panic(expected = "in [0, 100]")]
    fn percentile_rejects_negative() {
        let ms: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        let _ = percentile(&ms, -1.0);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_honors_the_hint() {
        let policy = RetryPolicy { max_attempts: 8, base_ms: 10, cap_ms: 100, seed: 42 };
        let mut a = Rng::seed_from_u64(policy.seed);
        let mut b = Rng::seed_from_u64(policy.seed);
        for attempt in 1..=8 {
            let da = backoff_ms(&policy, attempt, None, &mut a);
            let db = backoff_ms(&policy, attempt, None, &mut b);
            assert_eq!(da, db, "same seed, same delays");
            let raw = (10u64 << (attempt - 1)).min(100);
            assert!(
                da >= raw / 2 && da <= raw,
                "attempt {attempt}: {da} outside [{}, {raw}]",
                raw / 2
            );
        }
        // A server hint floors the delay even when the exponential term is
        // still tiny.
        let d = backoff_ms(&policy, 1, Some(77), &mut a);
        assert!(d >= 77, "hint 77 is a floor, got {d}");
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_through_half_open() {
        let mut br = CircuitBreaker::new(3, Duration::from_millis(20));
        // Two failures: still closed.
        assert!(br.admit());
        br.record_failure();
        assert!(br.admit());
        br.record_failure();
        assert!(!br.is_open());
        // Third consecutive failure trips it.
        br.record_failure();
        assert!(br.is_open());
        assert_eq!(br.opened_total(), 1);
        assert!(!br.admit(), "open circuit fails fast during cooldown");
        // After the cooldown one probe is admitted (half-open)...
        std::thread::sleep(Duration::from_millis(25));
        assert!(br.admit(), "cooled-down breaker admits a probe");
        // ...and a failed probe re-opens immediately (no threshold count).
        br.record_failure();
        assert!(br.is_open());
        assert_eq!(br.opened_total(), 2);
        assert!(!br.admit());
        // A successful probe after the next cooldown closes it for good.
        std::thread::sleep(Duration::from_millis(25));
        assert!(br.admit());
        br.record_success();
        assert!(!br.is_open());
        assert!(br.admit());
    }

    #[test]
    fn breaker_success_resets_the_consecutive_count() {
        let mut br = CircuitBreaker::new(3, Duration::from_millis(5));
        br.record_failure();
        br.record_failure();
        br.record_success();
        br.record_failure();
        br.record_failure();
        assert!(!br.is_open(), "a success in between must reset the streak");
    }

    #[test]
    fn circuit_open_error_is_returned_without_a_connection() {
        // Breaker pre-tripped; the address is never dialed (port 1 would
        // fail with Io, not CircuitOpen).
        let mut br = CircuitBreaker::new(1, Duration::from_secs(60));
        br.record_failure();
        let mut rc = RetryClient::new("127.0.0.1:1", RetryPolicy::default(), br);
        match rc.request(&Request::Health) {
            Err(ClientError::CircuitOpen) => {}
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        assert_eq!(rc.connects(), 0, "fail-fast must not dial");
    }
}
