//! Blocking client for the JSON-lines protocol, plus the latency helpers
//! the load generator reports with.

use crate::protocol::{
    decode_response, encode_request, Frame, FrameReader, ProtoError, Request, Response,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// A connected client (one TCP stream, requests answered in order).
pub struct Client {
    writer: TcpStream,
    frames: FrameReader<TcpStream>,
    next_id: u64,
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server closed the connection.
    Closed,
    /// An undecodable or mismatched response frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Closed => f.write_str("server closed the connection"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Protocol(e.message)
    }
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7411`).
    ///
    /// # Errors
    /// Propagates connect errors.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { writer, frames: FrameReader::new(stream), next_id: 1 })
    }

    /// Sends one request and blocks for its response. The response `id`
    /// must echo the request's.
    ///
    /// # Errors
    /// Transport failures, a closed connection, or a protocol violation.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(encode_request(id, req).as_bytes())?;
        match self.frames.next_frame()? {
            None => Err(ClientError::Closed),
            Some(Frame::Oversized(n)) => {
                Err(ClientError::Protocol(format!("oversized response frame ({n}+ bytes)")))
            }
            Some(Frame::Line(line)) => {
                let (rid, resp) = decode_response(&line)?;
                if rid != id {
                    return Err(ClientError::Protocol(format!(
                        "response id {rid} does not echo request id {id}"
                    )));
                }
                Ok(resp)
            }
        }
    }

    /// Sends a raw pre-encoded frame (replay mode) and decodes the reply.
    ///
    /// # Errors
    /// Transport failures, a closed connection, or a protocol violation.
    pub fn request_raw(&mut self, frame: &str) -> Result<(u64, Response), ClientError> {
        self.writer.write_all(frame.as_bytes())?;
        if !frame.ends_with('\n') {
            self.writer.write_all(b"\n")?;
        }
        match self.frames.next_frame()? {
            None => Err(ClientError::Closed),
            Some(Frame::Oversized(n)) => {
                Err(ClientError::Protocol(format!("oversized response frame ({n}+ bytes)")))
            }
            Some(Frame::Line(line)) => Ok(decode_response(&line)?),
        }
    }
}

/// Latency percentile over an **unsorted** sample set (sorts a copy):
/// nearest-rank, `p` in [0, 100].
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Formats a duration as fractional milliseconds.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}ms", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 90.0), Duration::from_millis(90));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&ms, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&[], 99.0), Duration::ZERO);
        // Unsorted input is handled.
        let mixed = [3, 1, 2].map(Duration::from_millis);
        assert_eq!(percentile(&mixed, 50.0), Duration::from_millis(2));
    }
}
