//! The scale-out shard fleet (DESIGN.md §15).
//!
//! One frontend process owns the public port and routes work-plane
//! requests to N single-shard `revel_serve` worker processes by
//! **consistent hashing on the engine's cache-key fingerprint**: the
//! same evaluation-grid cell always lands on the same shard, so each
//! shard's bounded memory cache and persistent disk tier stay hot for
//! its slice of the grid instead of every shard cold-starting every
//! cell.
//!
//! The module family:
//!
//! * [`placement`] — the hash ring: virtual nodes, deterministic
//!   placement, and the rebalance property (removing a shard moves only
//!   that shard's keys);
//! * [`router`] — [`Fleet`]: per-shard connection pools,
//!   forward-with-failover along ring successors, fleet-wide stats
//!   aggregation, and the `fleet_stats` roster;
//! * [`supervisor`] — shard processes: spawn, health-probe, respawn on
//!   death (the ring rebalances while the shard is down and again when
//!   it returns), and graceful fleet shutdown.
//!
//! Failure model: a forward that fails over marks the shard down and
//! retries the request on the next ring successor; when no shard can
//! serve, the client gets a retryable `fleet_unavailable` error and the
//! supervisor's respawn brings capacity back. A respawned shard
//! warm-starts from its persistent tier
//! ([`revel_core::engine::persist`]), so the keys that rebalance back
//! to it are answered from disk before its first simulation completes.

pub mod placement;
pub mod router;
pub mod supervisor;

pub use placement::Ring;
pub use router::Fleet;
pub use supervisor::{FleetConfig, ShardFailpoints, Supervisor, DEFAULT_MAX_RESTARTS};
