//! The fleet router: forwards work-plane requests to the shard that owns
//! their cache key, failing over along ring successors.

use super::placement::Ring;
use crate::client::Client;
use crate::protocol::{EngineStatsWire, Request, Response, ScheduleStatsWire, ShardStatsWire};
use revel_bench::grid;
use revel_core::engine;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

/// Read-timeout backstop on forwarded requests: generous enough for a
/// cold simulation of the largest grid cell, tight enough that a hung
/// shard eventually fails over instead of wedging a router worker.
const FORWARD_TIMEOUT: Duration = Duration::from_secs(120);

/// Read timeout for control-plane fan-out (stats, shutdown): these are
/// answered inline by shards, so seconds means the shard is gone.
const CONTROL_TIMEOUT: Duration = Duration::from_secs(5);

/// Retry hint attached to `fleet_unavailable`: roughly the supervisor's
/// detect-and-respawn latency.
const UNAVAILABLE_RETRY_MS: u64 = 50;

/// One shard as the router sees it: address, liveness, routing counters,
/// and a pool of idle connections.
struct ShardHandle {
    id: usize,
    port: u16,
    addr: String,
    /// Routable: the process answered a health probe and has not failed
    /// a forward since. Flipped by the router (on transport failure) and
    /// the supervisor (on death/respawn); every flip rebuilds the ring.
    alive: AtomicBool,
    /// Requests forwarded to this shard and answered.
    routed: AtomicU64,
    /// Forward attempts against this shard that failed (connect or
    /// transport), each causing a failover to the next successor.
    failed: AtomicU64,
    /// Times the supervisor respawned this shard's process (surfaced in
    /// the `fleet_stats` roster).
    restarts: AtomicU64,
    /// Permanently evicted by the supervisor's restart circuit: never
    /// marked up again, the ring routes around it for good.
    evicted: AtomicBool,
    /// Idle connections, reused across forwards (a dead shard's pool is
    /// discarded when it is marked down).
    pool: Mutex<Vec<Client>>,
}

/// The shard fleet: the routing table the frontend server forwards
/// through. Liveness flips rebuild the consistent-hash ring over the
/// alive set; all methods are callable from any worker thread.
pub struct Fleet {
    shards: Vec<ShardHandle>,
    ring: RwLock<Ring>,
    /// Round-robin cursor for unkeyed requests (`sleep`).
    rr: AtomicUsize,
}

impl Fleet {
    /// Builds the routing table for shards `0..count` listening on
    /// `host:ports[i]`. Every shard starts **down** — the supervisor's
    /// health probe marks it up once the process answers.
    pub fn new(host: &str, ports: &[u16]) -> Fleet {
        let shards = ports
            .iter()
            .enumerate()
            .map(|(id, &port)| ShardHandle {
                id,
                port,
                addr: format!("{host}:{port}"),
                alive: AtomicBool::new(false),
                routed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                restarts: AtomicU64::new(0),
                evicted: AtomicBool::new(false),
                pool: Mutex::new(Vec::new()),
            })
            .collect();
        Fleet { shards, ring: RwLock::new(Ring::default()), rr: AtomicUsize::new(0) }
    }

    /// Number of shards in the roster (alive or not).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True for a fleet with no shards at all.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The port shard `id` listens on.
    pub fn shard_port(&self, id: usize) -> Option<u16> {
        self.shards.get(id).map(|s| s.port)
    }

    /// True while shard `id` is routable.
    pub fn is_alive(&self, id: usize) -> bool {
        self.shards.get(id).is_some_and(|s| s.alive.load(Ordering::SeqCst))
    }

    /// Currently routable shards.
    pub fn alive_count(&self) -> usize {
        self.shards.iter().filter(|s| s.alive.load(Ordering::SeqCst)).count()
    }

    /// Blocks until at least `n` shards are routable or `timeout`
    /// elapses; returns whether the quorum was reached.
    pub fn wait_alive(&self, n: usize, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.alive_count() >= n {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Marks a shard routable (supervisor, after a successful health
    /// probe) and rebalances the ring to include it. Refused for an
    /// evicted shard: the restart circuit's verdict is final.
    pub fn mark_up(&self, id: usize) {
        let Some(shard) = self.shards.get(id) else { return };
        if shard.evicted.load(Ordering::SeqCst) {
            return;
        }
        if !shard.alive.swap(true, Ordering::SeqCst) {
            self.rebuild_ring();
        }
    }

    /// Permanently evicts a flapping shard (the supervisor's restart
    /// circuit): marked down, flagged so [`Fleet::mark_up`] refuses it,
    /// and the ring rebalances its keys to the survivors for good.
    pub fn evict(&self, id: usize) {
        let Some(shard) = self.shards.get(id) else { return };
        shard.evicted.store(true, Ordering::SeqCst);
        self.mark_down(id);
    }

    /// True once shard `id` has been permanently evicted.
    pub fn is_evicted(&self, id: usize) -> bool {
        self.shards.get(id).is_some_and(|s| s.evicted.load(Ordering::SeqCst))
    }

    /// Records one supervisor respawn of shard `id` (roster column).
    pub fn record_restart(&self, id: usize) {
        if let Some(shard) = self.shards.get(id) {
            shard.restarts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lifetime respawns of shard `id` as recorded by the supervisor.
    pub fn restarts(&self, id: usize) -> u64 {
        self.shards.get(id).map_or(0, |s| s.restarts.load(Ordering::Relaxed))
    }

    /// Marks a shard unroutable (transport failure or process death),
    /// discards its pooled connections, and rebalances the ring so its
    /// keys fail over to their successors.
    pub fn mark_down(&self, id: usize) {
        let Some(shard) = self.shards.get(id) else { return };
        if shard.alive.swap(false, Ordering::SeqCst) {
            shard.pool.lock().expect("shard pool lock").clear();
            self.rebuild_ring();
        }
    }

    fn rebuild_ring(&self) {
        let alive: Vec<usize> =
            self.shards.iter().filter(|s| s.alive.load(Ordering::SeqCst)).map(|s| s.id).collect();
        *self.ring.write().expect("ring lock") = Ring::build(&alive);
    }

    /// Forwards one work-plane request to the shard owning its cache-key
    /// fingerprint, failing over along ring successors. When no shard
    /// answers, the caller gets a retryable `fleet_unavailable` error —
    /// the supervisor's respawn is the recovery path.
    pub fn forward(&self, req: &Request) -> Response {
        for id in self.candidates(req) {
            if let Some(resp) = self.try_forward(&self.shards[id], req, FORWARD_TIMEOUT) {
                return resp;
            }
        }
        Response::Error {
            kind: "fleet_unavailable".to_string(),
            message: "no shard could serve the request".to_string(),
            retry_after_ms: Some(UNAVAILABLE_RETRY_MS),
        }
    }

    /// The failover chain for a request: ring successors for keyed ops,
    /// round-robin over the alive set for unkeyed ones.
    fn candidates(&self, req: &Request) -> Vec<usize> {
        if let Some(fp) = route_fingerprint(req) {
            return self.ring.read().expect("ring lock").successors(fp);
        }
        let alive: Vec<usize> =
            self.shards.iter().filter(|s| s.alive.load(Ordering::SeqCst)).map(|s| s.id).collect();
        if alive.is_empty() {
            return alive;
        }
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % alive.len();
        let mut order = alive[start..].to_vec();
        order.extend_from_slice(&alive[..start]);
        order
    }

    /// One forward attempt against one shard; `None` means the shard
    /// failed at the transport level (and was marked down — protocol-level
    /// errors from a live shard are real answers and returned as-is).
    ///
    /// A failure on a *pooled* connection gets one retry on a fresh
    /// connection before the shard is condemned: the shard's
    /// slow-loris armor closes idle keep-alive connections after its
    /// `--conn-timeout`, and a pool entry that sat out the timeout must
    /// read as a stale socket, not a dead shard. (Work-plane requests
    /// are pure simulations, so the retry is idempotent.)
    fn try_forward(
        &self,
        shard: &ShardHandle,
        req: &Request,
        timeout: Duration,
    ) -> Option<Response> {
        // Pop under a short-lived guard: holding the pool lock across the
        // request would wedge everyone else who needs the pool (including
        // the push-back below).
        let pooled = shard.pool.lock().expect("shard pool lock").pop();
        if let Some(mut client) = pooled {
            if let Ok(resp) = client.request(req) {
                shard.routed.fetch_add(1, Ordering::Relaxed);
                shard.pool.lock().expect("shard pool lock").push(client);
                return Some(resp);
            }
            // Stale pooled socket; fall through to a fresh connection.
        }
        let mut client = match Client::connect(&shard.addr) {
            Ok(c) => {
                let _ = c.set_read_timeout(Some(timeout));
                c
            }
            Err(_) => {
                shard.failed.fetch_add(1, Ordering::Relaxed);
                self.mark_down(shard.id);
                return None;
            }
        };
        match client.request(req) {
            Ok(resp) => {
                shard.routed.fetch_add(1, Ordering::Relaxed);
                shard.pool.lock().expect("shard pool lock").push(client);
                Some(resp)
            }
            Err(_) => {
                shard.failed.fetch_add(1, Ordering::Relaxed);
                self.mark_down(shard.id);
                None
            }
        }
    }

    /// The `fleet_stats` roster: one row per shard, dead or alive.
    pub fn roster(&self) -> Vec<ShardStatsWire> {
        self.shards
            .iter()
            .map(|s| ShardStatsWire {
                shard: s.id as u64,
                port: u64::from(s.port),
                alive: s.alive.load(Ordering::SeqCst),
                routed: s.routed.load(Ordering::Relaxed),
                failed: s.failed.load(Ordering::Relaxed),
                restarts: s.restarts.load(Ordering::Relaxed),
                evicted: s.evicted.load(Ordering::SeqCst),
            })
            .collect()
    }

    /// Sums engine and schedule counters across every alive shard, so a
    /// client's stats window works against a fleet exactly as it does
    /// against one server. `None` when no shard answered. (A respawned
    /// shard restarts its counters; fleet-wide sums are therefore
    /// monotonic only while the roster is stable — clients clamp their
    /// window deltas.)
    pub fn aggregate_stats(&self) -> Option<(EngineStatsWire, ScheduleStatsWire)> {
        let mut engine_sum: Option<EngineStatsWire> = None;
        let mut sched_sum = ScheduleStatsWire { hits: 0, misses: 0, entries: 0 };
        for shard in self.shards.iter().filter(|s| s.alive.load(Ordering::SeqCst)) {
            let Some(Response::Stats { engine, schedule, .. }) =
                self.try_forward(shard, &Request::Stats, CONTROL_TIMEOUT)
            else {
                continue;
            };
            engine_sum = Some(match engine_sum {
                None => engine,
                Some(acc) => add_engine(acc, engine),
            });
            sched_sum.hits += schedule.hits;
            sched_sum.misses += schedule.misses;
            sched_sum.entries += schedule.entries;
        }
        engine_sum.map(|e| (e, sched_sum))
    }

    /// The alive ring owner of a cell: the first successor of its routing
    /// fingerprint, i.e. the shard a fresh forward of that cell would hit.
    /// `None` when no shard is alive. Scenario kill events use this to
    /// SIGKILL the shard that is actually serving a cell.
    pub fn owner_of_cell(&self, bench: &str, params: &str, arch: &str) -> Option<usize> {
        let fp = cell_fingerprint(bench, params, arch);
        self.ring.read().expect("ring lock").successors(fp).into_iter().next()
    }

    /// Asks every alive shard to shut down gracefully (the supervisor
    /// then waits for the processes to exit).
    pub fn shutdown_shards(&self) {
        for shard in self.shards.iter().filter(|s| s.alive.load(Ordering::SeqCst)) {
            let _ = self.try_forward(shard, &Request::Shutdown, CONTROL_TIMEOUT);
        }
    }
}

fn add_engine(a: EngineStatsWire, b: EngineStatsWire) -> EngineStatsWire {
    EngineStatsWire {
        hits: a.hits + b.hits,
        misses: a.misses + b.misses,
        evictions: a.evictions + b.evictions,
        capacity: a.capacity + b.capacity,
        run_entries: a.run_entries + b.run_entries,
        lint_entries: a.lint_entries + b.lint_entries,
        sim_cycles: a.sim_cycles + b.sim_cycles,
        skipped_cycles: a.skipped_cycles + b.skipped_cycles,
        fault_bypasses: a.fault_bypasses + b.fault_bypasses,
        oblivious_entries: a.oblivious_entries + b.oblivious_entries,
        deadline_fallbacks: a.deadline_fallbacks + b.deadline_fallbacks,
        trace_hits: a.trace_hits + b.trace_hits,
        batched_replays: a.batched_replays + b.batched_replays,
        disk_hits: a.disk_hits + b.disk_hits,
        warm_start_entries: a.warm_start_entries + b.warm_start_entries,
        disk_cold_starts: a.disk_cold_starts + b.disk_cold_starts,
    }
}

/// The routing key for a request: the low word of the engine's cache-key
/// fingerprint for resolvable cells (so routing agrees exactly with what
/// the shard will cache), a stable string fingerprint for unresolvable
/// ones (repeated probes of a bad cell still land on one shard), `None`
/// for unkeyed ops (`sleep`), which round-robin.
pub fn route_fingerprint(req: &Request) -> Option<u64> {
    match req {
        Request::Simulate { bench, params, arch, .. } => {
            Some(cell_fingerprint(bench, params, arch))
        }
        Request::SimulateBatch { bench, params, arch, .. } => {
            Some(cell_fingerprint(bench, params, arch))
        }
        Request::Lint { bench, params, arch } => Some(cell_fingerprint(bench, params, arch)),
        Request::Compare { bench, params } => Some(cell_fingerprint(bench, params, "revel")),
        _ => None,
    }
}

/// Batch and non-batch requests for one cell share a fingerprint (the
/// engine's trace cache makes them reinforce each other on one shard).
fn cell_fingerprint(bench: &str, params: &str, arch: &str) -> u64 {
    match grid::resolve(bench, params, arch) {
        Some((b, cfg)) => engine::key_fingerprint(b, &cfg, false).0,
        None => engine::persist::fingerprint(&format!("{bench}|{params}|{arch}")).0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulate_req(bench: &str, params: &str) -> Request {
        Request::Simulate {
            bench: bench.to_string(),
            params: params.to_string(),
            arch: "revel".to_string(),
            deadline_ms: None,
            max_cycles: None,
            reference_stepper: false,
            fault_seed: None,
            fault_count: None,
            fault_window: None,
        }
    }

    #[test]
    fn keyed_requests_share_a_fingerprint_across_ops() {
        let sim = route_fingerprint(&simulate_req("fft", "n=64")).expect("keyed");
        let lint = route_fingerprint(&Request::Lint {
            bench: "fft".to_string(),
            params: "n=64".to_string(),
            arch: "revel".to_string(),
        })
        .expect("keyed");
        assert_eq!(sim, lint, "lint co-locates with the runs it lints");
        let other = route_fingerprint(&simulate_req("fft", "n=256")).expect("keyed");
        assert_ne!(sim, other, "different cells, different keys");
        assert_eq!(route_fingerprint(&Request::Sleep { ms: 1 }), None, "sleep is unkeyed");
    }

    #[test]
    fn unresolvable_cells_still_route_stably() {
        let a = route_fingerprint(&simulate_req("no-such-bench", "n=1")).expect("keyed");
        let b = route_fingerprint(&simulate_req("no-such-bench", "n=1")).expect("keyed");
        assert_eq!(a, b);
    }

    #[test]
    fn a_fleet_with_no_live_shards_answers_fleet_unavailable() {
        let fleet = Fleet::new("127.0.0.1", &[1, 2, 3]);
        assert_eq!(fleet.alive_count(), 0);
        let resp = fleet.forward(&simulate_req("fft", "n=64"));
        match &resp {
            Response::Error { kind, retry_after_ms, .. } => {
                assert_eq!(kind, "fleet_unavailable");
                assert!(retry_after_ms.is_some(), "the error carries a backoff hint");
            }
            other => panic!("expected fleet_unavailable, got {other:?}"),
        }
        assert!(resp.is_retryable(), "fleet_unavailable is transient by contract");
    }

    #[test]
    fn an_evicted_shard_refuses_mark_up_and_surfaces_in_the_roster() {
        let fleet = Fleet::new("127.0.0.1", &[1, 2]);
        fleet.mark_up(0);
        fleet.mark_up(1);
        fleet.record_restart(0);
        fleet.record_restart(0);
        assert_eq!(fleet.restarts(0), 2);
        fleet.evict(0);
        assert!(fleet.is_evicted(0));
        assert!(!fleet.is_alive(0), "eviction marks the shard down");
        fleet.mark_up(0);
        assert!(!fleet.is_alive(0), "the circuit's verdict is final");
        let roster = fleet.roster();
        assert!(roster[0].evicted && roster[0].restarts == 2, "{roster:?}");
        assert!(!roster[1].evicted && roster[1].alive, "{roster:?}");
    }

    #[test]
    fn liveness_flips_rebalance_the_ring() {
        let fleet = Fleet::new("127.0.0.1", &[1, 2, 3]);
        fleet.mark_up(0);
        fleet.mark_up(1);
        fleet.mark_up(2);
        let fp = route_fingerprint(&simulate_req("fft", "n=64")).expect("keyed");
        let owner = fleet.ring.read().expect("ring").route(fp).expect("route");
        fleet.mark_down(owner);
        let next = fleet.ring.read().expect("ring").route(fp).expect("route");
        assert_ne!(next, owner, "the dead shard's keys fail over");
        fleet.mark_up(owner);
        let back = fleet.ring.read().expect("ring").route(fp).expect("route");
        assert_eq!(back, owner, "a respawned shard reclaims its keys");
    }
}
