//! The shard supervisor: spawns the worker processes, probes them
//! healthy, respawns the dead, and tears the fleet down gracefully.

use super::router::Fleet;
use crate::client::Client;
use crate::protocol::{Request, Response};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Supervisor sweep interval: how quickly a dead shard is noticed.
const TICK: Duration = Duration::from_millis(100);

/// Minimum gap between spawns of one shard (keeps a crash-looping shard
/// from burning a core).
const RESPAWN_BACKOFF: Duration = Duration::from_millis(500);

/// Read timeout on health probes of a freshly spawned shard.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);

/// How long a graceful fleet shutdown waits for a shard process before
/// killing it.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// How a fleet's worker shards are spawned.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of worker shards.
    pub shards: usize,
    /// Host shards bind to (and the router dials), normally loopback.
    pub host: String,
    /// Shard `i` listens on `base_port + 1 + i` (the router itself owns
    /// `base_port`).
    pub base_port: u16,
    /// Worker threads per shard (0 = one per core).
    pub workers: usize,
    /// Bounded-queue capacity per shard.
    pub queue_capacity: usize,
    /// Root of the persistent cache; shard `i` gets `<dir>/shard-i`.
    /// `None` disables the disk tier.
    pub snapshot_dir: Option<PathBuf>,
    /// Memory-cache capacity per shard (`None` keeps the default).
    pub cache_capacity: Option<usize>,
    /// Chaos rate forwarded to each shard (the router runs chaos-free;
    /// faults belong where work executes).
    pub chaos_rate: f64,
    /// Chaos seed base; shard `i` gets `chaos_seed + i`.
    pub chaos_seed: u64,
    /// The `revel_serve` binary to spawn (the router passes its own
    /// `current_exe`; tests pass `CARGO_BIN_EXE_revel_serve`).
    pub binary: PathBuf,
}

impl FleetConfig {
    /// The port shard `id` listens on.
    pub fn shard_port(&self, id: usize) -> u16 {
        self.base_port + 1 + id as u16
    }

    /// The ports of every shard, in id order.
    pub fn shard_ports(&self) -> Vec<u16> {
        (0..self.shards).map(|id| self.shard_port(id)).collect()
    }
}

struct ShardProcess {
    id: usize,
    child: Option<Child>,
    last_spawn: Instant,
}

struct Inner {
    cfg: FleetConfig,
    procs: Mutex<Vec<ShardProcess>>,
    stop: AtomicBool,
}

/// Owns the shard processes. [`Supervisor::start`] spawns them plus a
/// monitor thread that probes each shard healthy (flipping it routable in
/// the [`Fleet`]), notices deaths, and respawns — a respawned shard
/// warm-starts from its persistent tier and reclaims its ring slice once
/// it answers a probe. [`Supervisor::shutdown`] drains the fleet.
pub struct Supervisor {
    fleet: Arc<Fleet>,
    inner: Arc<Inner>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Supervisor {
    /// Spawns every shard process and the monitor thread.
    ///
    /// # Errors
    /// Propagates spawn failures of the initial shard set (later respawn
    /// failures are retried on the next sweep instead).
    pub fn start(fleet: Arc<Fleet>, cfg: FleetConfig) -> std::io::Result<Supervisor> {
        let mut procs = Vec::with_capacity(cfg.shards);
        for id in 0..cfg.shards {
            let child = spawn_shard(&cfg, id)?;
            procs.push(ShardProcess { id, child: Some(child), last_spawn: Instant::now() });
        }
        let inner = Arc::new(Inner { cfg, procs: Mutex::new(procs), stop: AtomicBool::new(false) });
        let monitor = {
            let fleet = Arc::clone(&fleet);
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                while !inner.stop.load(Ordering::SeqCst) {
                    sweep(&fleet, &inner);
                    std::thread::sleep(TICK);
                }
            })
        };
        Ok(Supervisor { fleet, inner, monitor: Mutex::new(Some(monitor)) })
    }

    /// SIGKILLs shard `id` (no drain, no flush — the failure the fleet is
    /// built to survive). Returns false when the shard has no live
    /// process. The monitor notices and respawns after its backoff.
    /// `wipe_snapshot` removes the shard's persistent-cache directory
    /// between the kill and the respawn, so the shard comes back
    /// cache-cold instead of warm-starting from disk (the
    /// `cache_cold_stampede` scenario).
    pub fn kill_shard(&self, id: usize, wipe_snapshot: bool) -> bool {
        let mut procs = self.inner.procs.lock().expect("procs lock");
        let Some(proc_) = procs.iter_mut().find(|p| p.id == id) else { return false };
        let Some(mut child) = proc_.child.take() else { return false };
        let _ = child.kill();
        let _ = child.wait();
        if wipe_snapshot {
            if let Some(dir) = &self.inner.cfg.snapshot_dir {
                let _ = std::fs::remove_dir_all(dir.join(format!("shard-{id}")));
            }
        }
        self.fleet.mark_down(id);
        true
    }

    /// Graceful teardown: stop the monitor, ask every live shard to
    /// drain via the protocol's `shutdown` op, wait bounded, then kill
    /// stragglers. Takes `&self` so a frontend can share the supervisor
    /// with the scripted-kill hook behind an `Arc`; extra calls are
    /// no-ops.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.lock().expect("monitor lock").take() {
            let _ = monitor.join();
        }
        self.fleet.shutdown_shards();
        let mut procs = self.inner.procs.lock().expect("procs lock");
        for proc_ in procs.iter_mut() {
            let Some(mut child) = proc_.child.take() else { continue };
            let deadline = Instant::now() + DRAIN_TIMEOUT;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
            self.fleet.mark_down(proc_.id);
        }
    }
}

/// One monitor pass: reap deaths, respawn (rate-limited), probe
/// not-yet-routable shards healthy.
fn sweep(fleet: &Fleet, inner: &Inner) {
    let mut procs = inner.procs.lock().expect("procs lock");
    for proc_ in procs.iter_mut() {
        if let Some(child) = &mut proc_.child {
            if let Ok(Some(status)) = child.try_wait() {
                eprintln!("revel-serve: shard {} exited ({status}); respawning", proc_.id);
                proc_.child = None;
                fleet.mark_down(proc_.id);
            }
        }
        if proc_.child.is_none() && proc_.last_spawn.elapsed() >= RESPAWN_BACKOFF {
            match spawn_shard(&inner.cfg, proc_.id) {
                Ok(child) => {
                    proc_.child = Some(child);
                    proc_.last_spawn = Instant::now();
                }
                Err(e) => {
                    eprintln!("revel-serve: shard {} respawn failed: {e}", proc_.id);
                    proc_.last_spawn = Instant::now();
                }
            }
        }
        if proc_.child.is_some() && !fleet.is_alive(proc_.id) && probe(inner, proc_.id) {
            fleet.mark_up(proc_.id);
        }
    }
}

/// One health probe: connect and ask; any structured answer means the
/// shard is serving.
fn probe(inner: &Inner, id: usize) -> bool {
    let addr = format!("{}:{}", inner.cfg.host, inner.cfg.shard_port(id));
    let Ok(mut client) = Client::connect(&addr) else { return false };
    let _ = client.set_read_timeout(Some(PROBE_TIMEOUT));
    matches!(client.request(&Request::Health), Ok(Response::Health { .. }))
}

fn spawn_shard(cfg: &FleetConfig, id: usize) -> std::io::Result<Child> {
    let mut cmd = Command::new(&cfg.binary);
    cmd.arg("--host")
        .arg(&cfg.host)
        .arg("--port")
        .arg(cfg.shard_port(id).to_string())
        .arg("--workers")
        .arg(cfg.workers.to_string())
        .arg("--queue")
        .arg(cfg.queue_capacity.to_string())
        .arg("--shard-id")
        .arg(id.to_string());
    if let Some(dir) = &cfg.snapshot_dir {
        cmd.arg("--snapshot-dir").arg(dir.join(format!("shard-{id}")));
    }
    if let Some(cap) = cfg.cache_capacity {
        cmd.arg("--cache-capacity").arg(cap.to_string());
    }
    if cfg.chaos_rate > 0.0 {
        cmd.arg("--chaos")
            .arg(cfg.chaos_rate.to_string())
            .arg("--chaos-seed")
            .arg((cfg.chaos_seed + id as u64).to_string());
    }
    // Shard diagnostics ride the router's stderr; stdout stays quiet.
    cmd.stdout(Stdio::null()).stderr(Stdio::inherit()).stdin(Stdio::null());
    cmd.spawn()
}
