//! The shard supervisor: spawns the worker processes, probes them
//! healthy, respawns the dead with capped exponential backoff, and
//! opens a restart circuit on flapping shards — a shard that keeps
//! dying without ever probing healthy is marked permanently dead and
//! evicted from the ring instead of being respawned forever.

use super::router::Fleet;
use crate::client::Client;
use crate::protocol::{Request, Response};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Supervisor sweep interval: how quickly a dead shard is noticed.
const TICK: Duration = Duration::from_millis(100);

/// First respawn delay after a death; doubles per consecutive respawn
/// up to [`RESPAWN_BACKOFF_CAP`] and resets once the shard probes
/// healthy.
const RESPAWN_BACKOFF_FLOOR: Duration = Duration::from_millis(250);

/// Ceiling of the exponential respawn backoff.
const RESPAWN_BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Default [`FleetConfig::max_restarts`]: consecutive respawns (without
/// an intervening healthy probe) before the circuit opens and the shard
/// is permanently evicted.
pub const DEFAULT_MAX_RESTARTS: u32 = 8;

/// Read timeout on health probes of a freshly spawned shard.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);

/// How long a graceful fleet shutdown waits for a shard process before
/// killing it.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// A failpoint spec the supervisor plants into one shard's environment
/// ([`revel_failpoint::ENV_VAR`]): the torture harness's way of arming
/// crash schedules inside a separate OS process.
#[derive(Debug, Clone)]
pub struct ShardFailpoints {
    /// Which shard is the victim.
    pub shard: usize,
    /// The [`revel_failpoint::arm_spec`] string the shard arms at boot.
    pub spec: String,
    /// `false`: armed only on the initial spawn — the respawn comes back
    /// clean (a transient crash). `true`: re-armed on every respawn —
    /// the shard keeps crashing until the restart circuit evicts it (a
    /// flapping shard).
    pub every_spawn: bool,
}

/// How a fleet's worker shards are spawned.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of worker shards.
    pub shards: usize,
    /// Host shards bind to (and the router dials), normally loopback.
    pub host: String,
    /// Shard `i` listens on `base_port + 1 + i` (the router itself owns
    /// `base_port`).
    pub base_port: u16,
    /// Worker threads per shard (0 = one per core).
    pub workers: usize,
    /// Bounded-queue capacity per shard.
    pub queue_capacity: usize,
    /// Root of the persistent cache; shard `i` gets `<dir>/shard-i`.
    /// `None` disables the disk tier.
    pub snapshot_dir: Option<PathBuf>,
    /// Memory-cache capacity per shard (`None` keeps the default).
    pub cache_capacity: Option<usize>,
    /// Chaos rate forwarded to each shard (the router runs chaos-free;
    /// faults belong where work executes).
    pub chaos_rate: f64,
    /// Chaos seed base; shard `i` gets `chaos_seed + i`.
    pub chaos_seed: u64,
    /// Consecutive respawns without a healthy probe before the restart
    /// circuit opens and the shard is permanently evicted
    /// ([`DEFAULT_MAX_RESTARTS`] by default).
    pub max_restarts: u32,
    /// Failpoints to plant into one shard's environment (torture
    /// harness only; `None` in production).
    pub failpoints: Option<ShardFailpoints>,
    /// The `revel_serve` binary to spawn (the router passes its own
    /// `current_exe`; tests pass `CARGO_BIN_EXE_revel_serve`).
    pub binary: PathBuf,
}

impl FleetConfig {
    /// The port shard `id` listens on.
    pub fn shard_port(&self, id: usize) -> u16 {
        self.base_port + 1 + id as u16
    }

    /// The ports of every shard, in id order.
    pub fn shard_ports(&self) -> Vec<u16> {
        (0..self.shards).map(|id| self.shard_port(id)).collect()
    }
}

struct ShardProcess {
    id: usize,
    child: Option<Child>,
    last_spawn: Instant,
    /// Lifetime respawns (mirrored into the fleet roster).
    restarts: u64,
    /// Consecutive respawns without a healthy probe; at
    /// `cfg.max_restarts` the circuit opens.
    strikes: u32,
    /// Current respawn delay (exponential, capped; resets when the
    /// shard probes healthy).
    backoff: Duration,
    /// Circuit open: permanently dead, evicted from the ring, never
    /// respawned or probed again.
    dead: bool,
}

struct Inner {
    cfg: FleetConfig,
    procs: Mutex<Vec<ShardProcess>>,
    stop: AtomicBool,
}

/// Owns the shard processes. [`Supervisor::start`] spawns them plus a
/// monitor thread that probes each shard healthy (flipping it routable in
/// the [`Fleet`]), notices deaths, and respawns with capped exponential
/// backoff — a respawned shard warm-starts from its persistent tier and
/// reclaims its ring slice once it answers a probe, and a shard that
/// flaps through `max_restarts` respawns without ever probing healthy is
/// permanently evicted so the ring routes around it.
/// [`Supervisor::shutdown`] drains the fleet.
pub struct Supervisor {
    fleet: Arc<Fleet>,
    inner: Arc<Inner>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Supervisor {
    /// Spawns every shard process and the monitor thread.
    ///
    /// # Errors
    /// Propagates spawn failures of the initial shard set (later respawn
    /// failures are retried on the next sweep instead).
    pub fn start(fleet: Arc<Fleet>, cfg: FleetConfig) -> std::io::Result<Supervisor> {
        let mut procs = Vec::with_capacity(cfg.shards);
        for id in 0..cfg.shards {
            let child = spawn_shard(&cfg, id, 0)?;
            procs.push(ShardProcess {
                id,
                child: Some(child),
                last_spawn: Instant::now(),
                restarts: 0,
                strikes: 0,
                backoff: RESPAWN_BACKOFF_FLOOR,
                dead: false,
            });
        }
        let inner = Arc::new(Inner { cfg, procs: Mutex::new(procs), stop: AtomicBool::new(false) });
        let monitor = {
            let fleet = Arc::clone(&fleet);
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                while !inner.stop.load(Ordering::SeqCst) {
                    sweep(&fleet, &inner);
                    std::thread::sleep(TICK);
                }
            })
        };
        Ok(Supervisor { fleet, inner, monitor: Mutex::new(Some(monitor)) })
    }

    /// SIGKILLs shard `id` (no drain, no flush — the failure the fleet is
    /// built to survive). Returns false when the shard has no live
    /// process. The monitor notices and respawns after its backoff.
    /// `wipe_snapshot` removes the shard's persistent-cache directory
    /// between the kill and the respawn, so the shard comes back
    /// cache-cold instead of warm-starting from disk (the
    /// `cache_cold_stampede` scenario).
    pub fn kill_shard(&self, id: usize, wipe_snapshot: bool) -> bool {
        let mut procs = self.inner.procs.lock().expect("procs lock");
        let Some(proc_) = procs.iter_mut().find(|p| p.id == id) else { return false };
        let Some(mut child) = proc_.child.take() else { return false };
        let _ = child.kill();
        let _ = child.wait();
        if wipe_snapshot {
            if let Some(dir) = &self.inner.cfg.snapshot_dir {
                let _ = std::fs::remove_dir_all(dir.join(format!("shard-{id}")));
            }
        }
        self.fleet.mark_down(id);
        true
    }

    /// Graceful teardown: stop the monitor, ask every live shard to
    /// drain via the protocol's `shutdown` op, wait bounded, then kill
    /// stragglers. Takes `&self` so a frontend can share the supervisor
    /// with the scripted-kill hook behind an `Arc`; extra calls are
    /// no-ops.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.lock().expect("monitor lock").take() {
            let _ = monitor.join();
        }
        self.fleet.shutdown_shards();
        let mut procs = self.inner.procs.lock().expect("procs lock");
        for proc_ in procs.iter_mut() {
            let Some(mut child) = proc_.child.take() else { continue };
            let deadline = Instant::now() + DRAIN_TIMEOUT;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
            self.fleet.mark_down(proc_.id);
        }
    }
}

/// One monitor pass: reap deaths, respawn (exponential backoff, circuit
/// at `max_restarts` consecutive strikes), probe not-yet-routable shards
/// healthy.
fn sweep(fleet: &Fleet, inner: &Inner) {
    let mut procs = inner.procs.lock().expect("procs lock");
    for proc_ in procs.iter_mut() {
        if proc_.dead {
            continue;
        }
        if let Some(child) = &mut proc_.child {
            if let Ok(Some(status)) = child.try_wait() {
                eprintln!(
                    "revel-serve: shard {} exited ({status}); respawning in {:?}",
                    proc_.id, proc_.backoff
                );
                proc_.child = None;
                fleet.mark_down(proc_.id);
            }
        }
        if proc_.child.is_none() {
            if proc_.strikes >= inner.cfg.max_restarts {
                eprintln!(
                    "revel-serve: shard {} flapping ({} respawn(s) without a healthy probe); \
                     opening the restart circuit and evicting it from the ring",
                    proc_.id, proc_.strikes
                );
                proc_.dead = true;
                fleet.evict(proc_.id);
                continue;
            }
            if proc_.last_spawn.elapsed() >= proc_.backoff {
                proc_.restarts += 1;
                proc_.strikes += 1;
                fleet.record_restart(proc_.id);
                proc_.backoff = (proc_.backoff * 2).min(RESPAWN_BACKOFF_CAP);
                match spawn_shard(&inner.cfg, proc_.id, proc_.restarts) {
                    Ok(child) => proc_.child = Some(child),
                    Err(e) => {
                        eprintln!("revel-serve: shard {} respawn failed: {e}", proc_.id);
                    }
                }
                proc_.last_spawn = Instant::now();
            }
        }
        if proc_.child.is_some() && !fleet.is_alive(proc_.id) && probe(inner, proc_.id) {
            // A healthy probe closes the strike window: the next death
            // starts the backoff ladder from the floor again.
            proc_.strikes = 0;
            proc_.backoff = RESPAWN_BACKOFF_FLOOR;
            fleet.mark_up(proc_.id);
        }
    }
}

/// One health probe: connect and ask; any structured answer means the
/// shard is serving.
fn probe(inner: &Inner, id: usize) -> bool {
    let addr = format!("{}:{}", inner.cfg.host, inner.cfg.shard_port(id));
    let Ok(mut client) = Client::connect(&addr) else { return false };
    let _ = client.set_read_timeout(Some(PROBE_TIMEOUT));
    matches!(client.request(&Request::Health), Ok(Response::Health { .. }))
}

/// Spawn attempt `spawn_no` (0 = initial) of shard `id`. The
/// `supervisor.respawn` failpoint (context: the fleet's base port) sits
/// at the top so schedules can fail the spawn itself; the configured
/// [`ShardFailpoints`] ride into the child's environment.
fn spawn_shard(cfg: &FleetConfig, id: usize, spawn_no: u64) -> std::io::Result<Child> {
    revel_failpoint::hit_with("supervisor.respawn", || cfg.base_port.to_string())?;
    let mut cmd = Command::new(&cfg.binary);
    cmd.arg("--host")
        .arg(&cfg.host)
        .arg("--port")
        .arg(cfg.shard_port(id).to_string())
        .arg("--workers")
        .arg(cfg.workers.to_string())
        .arg("--queue")
        .arg(cfg.queue_capacity.to_string())
        .arg("--shard-id")
        .arg(id.to_string());
    if let Some(dir) = &cfg.snapshot_dir {
        cmd.arg("--snapshot-dir").arg(dir.join(format!("shard-{id}")));
    }
    if let Some(cap) = cfg.cache_capacity {
        cmd.arg("--cache-capacity").arg(cap.to_string());
    }
    if cfg.chaos_rate > 0.0 {
        cmd.arg("--chaos")
            .arg(cfg.chaos_rate.to_string())
            .arg("--chaos-seed")
            .arg((cfg.chaos_seed + id as u64).to_string());
    }
    // Never let a spec in the frontend's own environment leak into every
    // shard; the victim (and only the victim) gets its plan explicitly.
    cmd.env_remove(revel_failpoint::ENV_VAR);
    if let Some(fp) = &cfg.failpoints {
        if fp.shard == id && (spawn_no == 0 || fp.every_spawn) {
            cmd.env(revel_failpoint::ENV_VAR, &fp.spec);
        }
    }
    // Shard diagnostics ride the router's stderr; stdout stays quiet.
    cmd.stdout(Stdio::null()).stderr(Stdio::inherit()).stdin(Stdio::null());
    cmd.spawn()
}
