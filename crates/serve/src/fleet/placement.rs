//! Consistent-hash placement: the ring that maps cache-key fingerprints
//! to shards.
//!
//! Each shard contributes [`VNODES`] virtual points, hashed from its id
//! with the same process-stable FNV fingerprint the disk tier uses
//! ([`revel_core::engine::persist::fingerprint`]). A key routes to the
//! first point clockwise from its fingerprint. The construction is fully
//! deterministic — every process that knows the alive-shard set computes
//! the identical ring — and it carries the consistent-hashing guarantee:
//! removing a shard reassigns *only* that shard's keys (to their next
//! successors), everything else stays put. That is what makes a shard
//! death survivable mid-replay: the surviving shards keep their hot
//! caches, and the failed shard's keys fan out instead of the whole grid
//! reshuffling.

use revel_core::engine::persist::fingerprint;

/// Virtual nodes per shard: enough that three shards split the keyspace
/// within a few percent of evenly, cheap enough to rebuild on every
/// liveness flip.
pub const VNODES: usize = 64;

/// The hash ring: sorted virtual points, each owned by a shard id.
#[derive(Debug, Clone, Default)]
pub struct Ring {
    /// `(point, shard)` sorted by point; ties broken by the sort (stable
    /// because the build order is deterministic).
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Builds the ring over the given shard ids (typically the alive
    /// set). The same id set always yields the same ring.
    pub fn build(shards: &[usize]) -> Ring {
        let mut points = Vec::with_capacity(shards.len() * VNODES);
        for &shard in shards {
            for vnode in 0..VNODES {
                let (point, _) = fingerprint(&format!("shard-{shard}#vnode-{vnode}"));
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// True when no shard is placed (routing is impossible).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The shard owning `fp`: the first virtual point at or clockwise
    /// after it (wrapping).
    pub fn route(&self, fp: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|&(p, _)| p < fp) % self.points.len();
        Some(self.points[idx].1)
    }

    /// Every distinct shard in ring order starting at `fp`'s owner: the
    /// failover chain (owner first, then successors).
    pub fn successors(&self, fp: u64) -> Vec<usize> {
        let mut order = Vec::new();
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(p, _)| p < fp);
        for i in 0..self.points.len() {
            let shard = self.points[(start + i) % self.points.len()].1;
            if !order.contains(&shard) {
                order.push(shard);
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = Ring::build(&[0, 1, 2]);
        let again = Ring::build(&[0, 1, 2]);
        for i in 0..1000u64 {
            let fp = fingerprint(&format!("key-{i}")).0;
            let owner = ring.route(fp).expect("ring is non-empty");
            assert!(owner < 3);
            assert_eq!(again.route(fp), Some(owner), "same shard set, same ring");
        }
    }

    #[test]
    fn successors_cover_every_shard_once_owner_first() {
        let ring = Ring::build(&[0, 1, 2, 3]);
        let fp = fingerprint("some-key").0;
        let order = ring.successors(fp);
        assert_eq!(order.len(), 4, "every shard appears exactly once: {order:?}");
        assert_eq!(order[0], ring.route(fp).expect("owner"));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn removing_a_shard_moves_only_its_keys() {
        // The consistent-hashing property the fleet's failover story
        // rests on: keys owned by surviving shards do not move when a
        // shard dies.
        let full = Ring::build(&[0, 1, 2]);
        let without_one = Ring::build(&[0, 2]);
        let mut moved = 0usize;
        for i in 0..2000u64 {
            let fp = fingerprint(&format!("cell-{i}")).0;
            let before = full.route(fp).expect("full ring");
            let after = without_one.route(fp).expect("reduced ring");
            if before == 1 {
                moved += 1;
                assert_ne!(after, 1, "dead shard must not own keys");
            } else {
                assert_eq!(before, after, "surviving shards keep their keys");
            }
        }
        assert!(moved > 0, "shard 1 owned some keys before it died");
    }

    #[test]
    fn an_empty_ring_routes_nothing() {
        let ring = Ring::build(&[]);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
        assert!(ring.successors(42).is_empty());
    }

    #[test]
    fn vnodes_spread_the_keyspace() {
        let ring = Ring::build(&[0, 1, 2]);
        let mut counts = [0usize; 3];
        for i in 0..3000u64 {
            counts[ring.route(fingerprint(&format!("k{i}")).0).expect("route")] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(n > 300, "shard {shard} owns a starved slice: {counts:?}");
        }
    }
}
