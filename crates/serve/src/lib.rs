//! # revel-serve — the simulation service
//!
//! A std-only TCP front-end for the REVEL evaluation stack: clients speak a
//! JSON-lines protocol (one request object per line, one response object
//! per line — see [`protocol`] and DESIGN.md §11) to simulate, lint, or
//! compare any cell of the evaluation grid. The server routes every
//! request through the process-wide evaluation engine
//! (`revel_core::engine`), so a warm server answers repeated cells from
//! the bounded run cache at memory speed while cold cells simulate exactly
//! once, even under a thundering herd.
//!
//! Operational properties (the reason this is a crate and not a script):
//!
//! * **Bounded admission.** Requests pass through a bounded MPMC queue
//!   ([`queue::Bounded`]); when it is full the client gets a structured
//!   `overloaded` response immediately — the server never hangs a caller
//!   on an unbounded backlog and never silently drops a request.
//! * **Per-request deadlines.** A `deadline_ms` on a simulate request
//!   threads into [`SimOptions::wall_deadline`] and composes with the
//!   cycle budget: whichever cap fires first surfaces as a structured
//!   `timed_out` response carrying the machine's deadlock snapshot.
//! * **Graceful shutdown.** SIGTERM/ctrl-c (or a `shutdown` request) stops
//!   admission, drains in-flight work, joins every worker, and emits a
//!   final stats line; in-flight clients get their answers.
//!
//! The companion `revel_client` binary doubles as the load generator for
//! the serving benchmark (EXPERIMENTS.md): closed-loop or rate-paced load
//! over the 42-cell evaluation grid with a p50/p90/p99 latency report and
//! the server-side cache hit rate.
//!
//! [`SimOptions::wall_deadline`]: revel_core::sim::SimOptions

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fleet;
pub mod probe;
pub mod protocol;
pub mod queue;
pub mod scenario;
pub mod server;
pub mod signal;

// The JSON layer moved to `revel-traffic` so scenario files and wire
// frames share one parser; the re-export keeps `revel_serve::json` paths
// (and the protocol's internal `crate::json` imports) working unchanged.
pub use revel_traffic::json;
