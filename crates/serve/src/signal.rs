//! Minimal async-signal-safe shutdown flag.
//!
//! The workspace carries no dependencies, so SIGTERM/SIGINT handling is
//! done with a direct `extern "C"` declaration of libc's `signal` (std
//! already links libc on every unix target — this adds no dependency).
//! The handler does the only thing that is async-signal-safe: it stores
//! into an `AtomicBool`, which the server's accept loop polls.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT has been delivered (always false on
/// non-unix targets and before [`install`]).
pub fn shutdown_requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Test/driver hook: raise the flag without a signal.
pub fn request_shutdown() {
    REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // libc: sighandler_t signal(int signum, sighandler_t handler);
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: allocation, locks, and I/O are all
        // forbidden in a signal handler.
        super::REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        let handler: extern "C" fn(i32) = on_signal;
        // SAFETY: `signal` is the C standard library's handler
        // registration; the handler above is async-signal-safe (a single
        // atomic store, no allocation/locks/syscalls).
        unsafe {
            signal(SIGTERM, handler as usize);
            signal(SIGINT, handler as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGTERM/SIGINT handlers that raise the shutdown flag (no-op
/// off unix; the `shutdown` request remains available everywhere).
pub fn install() {
    imp::install();
}
