//! Minimal async-signal-safe shutdown flag.
//!
//! The workspace carries no dependencies, so SIGTERM/SIGINT handling is
//! done with a direct `extern "C"` declaration of libc's `signal` (std
//! already links libc on every unix target — this adds no dependency).
//! The handler does the only thing that is async-signal-safe: it bumps an
//! `AtomicU32`, which the server's accept loop polls.
//!
//! **Escalation:** the first signal requests a graceful drain. A second
//! signal during the drain means the operator wants out *now*: the
//! handler calls `_exit` (async-signal-safe, unlike `exit`) with
//! [`FORCED_EXIT_CODE`] so the supervisor can tell a forced kill from a
//! clean drain (code 0) or a startup failure (code 1).

use std::sync::atomic::{AtomicU32, Ordering};

/// Process exit code for a second SIGTERM/SIGINT during drain.
pub const FORCED_EXIT_CODE: i32 = 3;

static SIGNALS: AtomicU32 = AtomicU32::new(0);

/// True once SIGTERM or SIGINT has been delivered (always false on
/// non-unix targets and before [`install`]).
pub fn shutdown_requested() -> bool {
    SIGNALS.load(Ordering::SeqCst) > 0
}

/// Test/driver hook: raise the flag without a signal.
pub fn request_shutdown() {
    SIGNALS.fetch_add(1, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // libc: sighandler_t signal(int signum, sighandler_t handler);
        fn signal(signum: i32, handler: usize) -> usize;
        // libc: _Noreturn void _exit(int status);
        fn _exit(status: i32) -> !;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only atomics and `_exit` here: allocation, locks, and buffered
        // I/O are all forbidden in a signal handler.
        let prior = SIGNALS_REF.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        if prior >= 1 {
            // Second signal while draining: the operator is done waiting.
            // `_exit` skips atexit/destructors — exactly right, since the
            // drain we are abandoning may hold locks.
            // SAFETY: `_exit` is async-signal-safe per POSIX.
            unsafe { _exit(super::FORCED_EXIT_CODE) }
        }
    }

    // A named alias keeps the handler body free of `super::` path noise.
    use super::SIGNALS as SIGNALS_REF;

    pub fn install() {
        let handler: extern "C" fn(i32) = on_signal;
        // SAFETY: `signal` is the C standard library's handler
        // registration; the handler above is async-signal-safe (atomic
        // ops and `_exit` only, no allocation/locks/buffered I/O).
        unsafe {
            signal(SIGTERM, handler as usize);
            signal(SIGINT, handler as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGTERM/SIGINT handlers that raise the shutdown flag (no-op
/// off unix; the `shutdown` request remains available everywhere). A
/// second signal during the drain force-exits with [`FORCED_EXIT_CODE`].
pub fn install() {
    imp::install();
}
