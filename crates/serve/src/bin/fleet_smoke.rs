//! Fleet smoke harness: boots a shard fleet, replays the CI smoke frames
//! through it, and proves the scale-out tier's acceptance criteria live:
//!
//! 1. **Byte-identity** — every work-plane response through the fleet is
//!    byte-identical to a standalone (pre-fleet) server's answer;
//! 2. **Warm gates** — a warm replay meets the hit-rate and p99 floors;
//! 3. **Kill tolerance** — SIGKILLing a shard mid-replay loses nothing:
//!    every frame is still answered, still byte-identical (failover
//!    re-simulates deterministically);
//! 4. **Warm restart** — the respawned shard reports recovered entries
//!    (`warm_start_entries > 0`) and answers its first request from the
//!    persistent tier (`disk_hits` moves, `misses` does not) before any
//!    simulation completes.
//!
//! ```text
//! fleet_smoke --port 7471 --shards 3 --replay crates/serve/ci/smoke.jsonl
//! ```
//!
//! Exits 0 when every gate passes, 1 with a `GATE FAILED` line otherwise.
//! The router runs in-process (so the harness can SIGKILL a shard through
//! the supervisor); the shards are real `revel_serve` processes.

use revel_serve::client::{fmt_ms, percentile, Client};
use revel_serve::fleet::placement::Ring;
use revel_serve::fleet::router::route_fingerprint;
use revel_serve::fleet::{Fleet, FleetConfig, Supervisor};
use revel_serve::protocol::{
    decode_request, encode_response, read_all_frames, EngineStatsWire, Request, Response,
};
use revel_serve::server::{Server, ServerConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Passes replayed while a shard is killed: enough traffic that the dead
/// shard's keys demonstrably fail over and the respawned shard is hit.
const KILL_PASSES: usize = 6;

/// The running supervisor, stashed so that a failed gate can reap the
/// shard fleet before exiting. Without this a failing CI run would leave
/// orphan shard processes squatting on the smoke ports (and holding the
/// job's stderr pipe open).
static SUPERVISOR: std::sync::Mutex<Option<Supervisor>> = std::sync::Mutex::new(None);

/// Tears the fleet down (if one is running) and exits with `code`.
fn teardown_and_exit(code: i32) -> ! {
    let sup = SUPERVISOR.lock().ok().and_then(|mut slot| slot.take());
    if let Some(sup) = sup {
        sup.shutdown();
    }
    std::process::exit(code)
}

struct Args {
    port: u16,
    shards: usize,
    replay: String,
    snapshot_dir: Option<PathBuf>,
    serve_bin: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut a = Args {
        port: 7471,
        shards: 3,
        replay: "crates/serve/ci/smoke.jsonl".to_string(),
        snapshot_dir: None,
        serve_bin: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val =
            |name: &str| args.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match flag.as_str() {
            "--port" => a.port = parse(&val("--port"), "--port"),
            "--shards" => a.shards = parse(&val("--shards"), "--shards"),
            "--replay" => a.replay = val("--replay"),
            "--snapshot-dir" => a.snapshot_dir = Some(PathBuf::from(val("--snapshot-dir"))),
            "--serve-bin" => a.serve_bin = Some(PathBuf::from(val("--serve-bin"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    if a.shards < 2 {
        usage("--shards needs at least 2 (killing the only shard proves nothing)");
    }
    a
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| usage(&format!("bad value '{s}' for {flag}")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("fleet-smoke: {err}");
    }
    eprintln!(
        "usage: fleet_smoke [--port P] [--shards N] [--replay FILE] [--snapshot-dir DIR] \
         [--serve-bin PATH]"
    );
    std::process::exit(2);
}

fn gate(cond: bool, what: &str) {
    if cond {
        println!("fleet-smoke: ok — {what}");
    } else {
        eprintln!("fleet-smoke: GATE FAILED: {what}");
        teardown_and_exit(1);
    }
}

fn fatal(msg: &str) -> ! {
    eprintln!("fleet-smoke: {msg}");
    teardown_and_exit(1);
}

/// True for ops whose responses must be byte-identical between a
/// standalone server and the fleet (control-plane answers legitimately
/// differ: depth, roster, aggregation).
fn is_work_plane(req: &Request) -> bool {
    matches!(
        req,
        Request::Simulate { .. }
            | Request::SimulateBatch { .. }
            | Request::Lint { .. }
            | Request::Compare { .. }
            | Request::Sleep { .. }
    )
}

/// Replays `frames` once; returns `id -> encoded response frame`,
/// retrying retryable answers (overloaded, fleet_unavailable during a
/// kill window) until a terminal one arrives.
fn replay_once(
    addr: &str,
    frames: &[String],
    latencies: Option<&mut Vec<Duration>>,
) -> HashMap<u64, String> {
    let mut out = HashMap::new();
    let mut client =
        Client::connect(addr).unwrap_or_else(|e| fatal(&format!("connect {addr}: {e}")));
    let mut lat = latencies;
    for frame in frames {
        let t0 = Instant::now();
        let mut attempts = 0u32;
        let (id, resp) = loop {
            match client.request_raw(frame) {
                Ok((_, resp)) if resp.is_retryable() && attempts < 100 => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(resp.retry_after_ms().unwrap_or(10)));
                }
                Ok(ok) => break ok,
                Err(e) => fatal(&format!("replay frame failed against {addr}: {e}")),
            }
        };
        if let Some(lat) = lat.as_deref_mut() {
            lat.push(t0.elapsed());
        }
        out.insert(id, encode_response(id, &resp));
    }
    out
}

fn engine_stats(client: &mut Client) -> EngineStatsWire {
    match client.request(&Request::Stats) {
        Ok(Response::Stats { engine, .. }) => engine,
        other => fatal(&format!("stats request got {other:?}")),
    }
}

fn main() {
    let args = parse_args();
    let frames = {
        let file = std::fs::File::open(&args.replay)
            .unwrap_or_else(|e| fatal(&format!("cannot open {}: {e}", args.replay)));
        read_all_frames(std::io::BufReader::new(file)).unwrap_or_else(|e| fatal(&e.to_string()))
    };
    let decoded: Vec<(u64, Request)> = frames
        .iter()
        .map(|f| decode_request(f).unwrap_or_else(|e| fatal(&format!("bad replay frame: {e}"))))
        .collect();
    let work_ids: Vec<u64> =
        decoded.iter().filter(|(_, r)| is_work_plane(r)).map(|(id, _)| *id).collect();
    gate(!work_ids.is_empty(), "replay file holds work-plane frames");

    // Ground truth: a standalone in-process server (the pre-fleet serving
    // path), same frames, same process-wide deterministic simulator.
    let standalone = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 32,
        ..Default::default()
    })
    .unwrap_or_else(|e| fatal(&format!("bind standalone: {e}")));
    let standalone_addr = standalone.local_addr().expect("local addr").to_string();
    let standalone_thread =
        std::thread::spawn(move || standalone.serve().expect("standalone serves"));
    let reference = replay_once(&standalone_addr, &frames, None);
    let mut c = Client::connect(&standalone_addr).expect("connect for shutdown");
    let _ = c.request(&Request::Shutdown);
    standalone_thread.join().expect("standalone thread");

    // The fleet: in-process router, shard processes, persistent tier.
    let snapshot_dir = args.snapshot_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("revel-fleet-smoke-{}", std::process::id()))
    });
    let serve_bin = args.serve_bin.clone().unwrap_or_else(|| {
        let mut p = std::env::current_exe().expect("own path");
        p.set_file_name("revel_serve");
        p
    });
    let fleet_cfg = FleetConfig {
        shards: args.shards,
        host: "127.0.0.1".to_string(),
        base_port: args.port,
        workers: 2,
        queue_capacity: 32,
        snapshot_dir: Some(snapshot_dir.clone()),
        cache_capacity: None,
        chaos_rate: 0.0,
        chaos_seed: 0,
        max_restarts: revel_serve::fleet::DEFAULT_MAX_RESTARTS,
        failpoints: None,
        binary: serve_bin,
    };
    let mut router = Server::bind(&ServerConfig {
        addr: format!("127.0.0.1:{}", args.port),
        workers: 4,
        queue_capacity: 64,
        ..Default::default()
    })
    .unwrap_or_else(|e| fatal(&format!("bind router on port {}: {e}", args.port)));
    let fleet = Arc::new(Fleet::new(&fleet_cfg.host, &fleet_cfg.shard_ports()));
    let supervisor = Supervisor::start(Arc::clone(&fleet), fleet_cfg)
        .unwrap_or_else(|e| fatal(&format!("spawn shards: {e}")));
    *SUPERVISOR.lock().expect("supervisor slot") = Some(supervisor);
    router.set_fleet(Arc::clone(&fleet));
    let router_addr = format!("127.0.0.1:{}", args.port);
    let router_thread = std::thread::spawn(move || router.serve().expect("router serves"));
    gate(fleet.wait_alive(args.shards, Duration::from_secs(20)), "all shards probed healthy");

    // Gate 1: cold replay through the fleet is byte-identical to the
    // standalone server on every work-plane frame.
    let cold = replay_once(&router_addr, &frames, None);
    let cold_identical = work_ids.iter().all(|id| cold.get(id) == reference.get(id));
    gate(cold_identical, "cold fleet replay byte-identical to the standalone server");

    // Gate 2: warm replay hits the caches and meets the latency floor.
    let mut control =
        Client::connect(&router_addr).unwrap_or_else(|e| fatal(&format!("connect router: {e}")));
    let before = engine_stats(&mut control);
    let mut latencies = Vec::new();
    let warm = replay_once(&router_addr, &frames, Some(&mut latencies));
    let after = engine_stats(&mut control);
    gate(
        work_ids.iter().all(|id| warm.get(id) == reference.get(id)),
        "warm fleet replay byte-identical to the standalone server",
    );
    let d_hits = after.hits.saturating_sub(before.hits);
    let d_misses = after.misses.saturating_sub(before.misses);
    let hit_rate =
        if d_hits + d_misses == 0 { 0.0 } else { d_hits as f64 / (d_hits + d_misses) as f64 };
    println!("fleet-smoke: warm window: {d_hits} hit(s), {d_misses} miss(es) (rate {hit_rate:.3})");
    gate(hit_rate >= 0.80, "warm hit rate >= 0.80");
    let p99 = percentile(&latencies, 99.0);
    println!("fleet-smoke: warm p99 {}", fmt_ms(p99));
    gate(p99 <= Duration::from_millis(250), "warm p99 <= 250ms");

    // Pick the victim: the shard that owns the replay's first cacheable
    // simulate cell (deterministic — the ring is a pure function of the
    // shard set), so the kill demonstrably displaces live keys.
    let ring = Ring::build(&(0..args.shards).collect::<Vec<_>>());
    let victim = decoded
        .iter()
        .find_map(|(_, req)| match req {
            Request::Simulate { bench, max_cycles: None, .. }
                if bench != revel_serve::probe::BENCH_NAME =>
            {
                ring.route(route_fingerprint(req)?)
            }
            _ => None,
        })
        .unwrap_or_else(|| fatal("no cacheable simulate frame in the replay file"));

    // Seed a private cell onto the victim's disk before the kill: a cell
    // the replay never references, sent directly to the shard (bypassing
    // the router). After the respawn nothing can have pre-loaded it into
    // the memory cache, so probing it isolates the disk tier.
    let probe_req = Request::Simulate {
        bench: "fft".to_string(),
        params: "n=64".to_string(),
        arch: "dataflow".to_string(),
        deadline_ms: None,
        max_cycles: None,
        reference_stepper: false,
        fault_seed: None,
        fault_count: None,
        fault_window: None,
    };
    let shard_addr =
        format!("127.0.0.1:{}", fleet.shard_port(victim).expect("victim is in the roster"));
    let mut direct =
        Client::connect(&shard_addr).unwrap_or_else(|e| fatal(&format!("connect shard: {e}")));
    let seeded = direct.request(&probe_req).unwrap_or_else(|e| fatal(&format!("seed: {e}")));
    gate(
        matches!(seeded, Response::Result { .. }),
        "probe cell seeded onto the victim's disk tier",
    );
    drop(direct);
    println!("fleet-smoke: killing shard {victim} mid-replay (SIGKILL)");

    // Gate 3: SIGKILL the victim after the first pass of a multi-pass
    // replay; every frame of every pass is still answered byte-identically.
    let passes_done = AtomicUsize::new(0);
    let kill_results: Vec<HashMap<u64, String>> = std::thread::scope(|s| {
        let replayer = s.spawn(|| {
            (0..KILL_PASSES)
                .map(|_| {
                    let r = replay_once(&router_addr, &frames, None);
                    passes_done.fetch_add(1, Ordering::SeqCst);
                    r
                })
                .collect()
        });
        while passes_done.load(Ordering::SeqCst) < 1 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let killed = SUPERVISOR
            .lock()
            .expect("supervisor slot")
            .as_ref()
            .is_some_and(|sup| sup.kill_shard(victim, false));
        gate(killed, "victim shard had a live process to kill");
        replayer.join().expect("replay thread")
    });
    let all_identical =
        kill_results.iter().all(|pass| work_ids.iter().all(|id| pass.get(id) == reference.get(id)));
    gate(all_identical, "every frame answered byte-identically across the kill");

    // Gate 4: the victim respawns, warm-starts from disk, and serves its
    // first request from the persistent tier without simulating.
    let respawned = {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if fleet.is_alive(victim) {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    };
    gate(respawned, "killed shard respawned and probed healthy");
    let mut direct =
        Client::connect(&shard_addr).unwrap_or_else(|e| fatal(&format!("connect shard: {e}")));
    let before = engine_stats(&mut direct);
    gate(before.warm_start_entries > 0, "respawned shard recovered entries from disk");
    let resp = direct.request(&probe_req).unwrap_or_else(|e| fatal(&format!("probe: {e}")));
    gate(matches!(resp, Response::Result { .. }), "respawned shard answered the probe cell");
    gate(resp == seeded, "disk-served probe byte-identical to the pre-kill answer");
    let after = engine_stats(&mut direct);
    gate(
        after.disk_hits == before.disk_hits + 1,
        "probe was served from the disk tier (disk_hits moved)",
    );
    gate(after.misses == before.misses, "probe ran no simulation (misses unchanged)");

    // Roster sanity through the router: every shard is alive again and
    // carried traffic. (`failed` stays 0 on a supervised kill — the
    // supervisor marks the victim down before the router can trip over
    // it; the failover itself is proven by the byte-identity gate above.)
    match control.request(&Request::FleetStats) {
        Ok(Response::FleetStats { shards }) => {
            for s in &shards {
                println!(
                    "fleet-smoke: shard {} port {} alive={} routed={} failed={}",
                    s.shard, s.port, s.alive, s.routed, s.failed
                );
            }
            gate(shards.len() == args.shards, "fleet_stats reports the full roster");
            gate(shards.iter().all(|s| s.alive), "fleet_stats reports every shard alive");
            gate(shards.iter().all(|s| s.routed > 0), "every shard carried routed traffic");
        }
        other => fatal(&format!("fleet_stats got {other:?}")),
    }

    // Graceful teardown: router drains, shards drain, processes reaped.
    let _ = control.request(&Request::Shutdown);
    let stats = router_thread.join().expect("router thread");
    if let Some(sup) = SUPERVISOR.lock().expect("supervisor slot").take() {
        sup.shutdown();
    }
    println!("fleet-smoke: router final counters: {stats}");
    if args.snapshot_dir.is_none() {
        let _ = std::fs::remove_dir_all(&snapshot_dir);
    }
    println!("fleet-smoke: PASS");
}
