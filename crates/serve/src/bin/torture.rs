//! Failpoint-driven crash-consistency torture harness (DESIGN.md §17).
//!
//! Runs N seeded *schedules*. Each schedule derives a fault plan from its
//! seed ([`revel_failpoint::FailPlan`]), plants it into one victim shard
//! of a fresh fleet via `REVEL_FAILPOINTS`, replays the CI smoke traffic
//! through the router, and gates three invariants:
//!
//! 1. **Byte-identity** — every work-plane reply, across every pass and
//!    every crash, is byte-identical to a standalone server's answer
//!    (which the differential gate pins to `Bench::run`);
//! 2. **Disk integrity** — a crashed-and-respawned shard warm-starts
//!    from its persistent tier: recovered entries serve, damage surfaces
//!    as *structured cold starts*, and no reply is ever served from a
//!    torn record (a torn record changing an answer would break gate 1);
//! 3. **Convergence** — the fleet ends every schedule in a settled
//!    state: the victim back alive (crash plans), untouched (error
//!    plans), or permanently evicted by the restart circuit (flap
//!    plans) with the ring routing around it.
//!
//! ```text
//! torture --port 7481 --shards 2 --schedules 32 --seed 1 \
//!         --replay crates/serve/ci/smoke.jsonl --summary /tmp/torture.sum
//! ```
//!
//! The per-schedule summary lines contain only facts that are pure
//! functions of the seed (victim, plan, mode), so two runs with the same
//! seed produce identical summaries — CI diffs them. Timing-dependent
//! diagnostics (observed restarts, cold-start counts) go to stderr.
//! Exits 0 when every gate passes, 1 otherwise.

use revel_failpoint::{Action, FailPlan};
use revel_serve::client::Client;
use revel_serve::fleet::{Fleet, FleetConfig, ShardFailpoints, Supervisor};
use revel_serve::protocol::{decode_request, encode_response, read_all_frames, Request, Response};
use revel_serve::server::{Server, ServerConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Crash-plan sites: places where a hard abort models power loss at a
/// particularly unkind instruction.
const CRASH_SITES: &[&str] = &[
    "persist.append.mid-write",
    "persist.append.before-flush",
    "serve.reply.pre-write",
    "engine.serve.disk-lookup",
];

/// Error-plan sites: places where an injected `io::Error` must degrade
/// persistence without touching the answer (appends are best-effort).
const EIO_SITES: &[&str] = &["persist.append.before-write", "persist.append.before-flush"];

/// Flap-plan site: aborting *every* reply (probe replies included) makes
/// the victim die on every respawn, which must trip the restart circuit.
const FLAP_SITE: &str = "serve.reply.pre-write";

/// How long a schedule waits for fleet state transitions (boot, respawn,
/// eviction) before declaring the invariant violated.
const SETTLE: Duration = Duration::from_secs(60);

/// The running supervisor, stashed so a failed gate can reap the shard
/// fleet before exiting instead of leaking processes onto the ports.
static SUPERVISOR: std::sync::Mutex<Option<Supervisor>> = std::sync::Mutex::new(None);

fn teardown_and_exit(code: i32) -> ! {
    let sup = SUPERVISOR.lock().ok().and_then(|mut slot| slot.take());
    if let Some(sup) = sup {
        sup.shutdown();
    }
    std::process::exit(code)
}

struct Args {
    port: u16,
    shards: usize,
    schedules: u64,
    seed: u64,
    max_restarts: u32,
    replay: String,
    summary: Option<PathBuf>,
    serve_bin: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut a = Args {
        port: 7481,
        shards: 2,
        schedules: 32,
        seed: 1,
        max_restarts: 2,
        replay: "crates/serve/ci/smoke.jsonl".to_string(),
        summary: None,
        serve_bin: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val =
            |name: &str| args.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match flag.as_str() {
            "--port" => a.port = parse(&val("--port"), "--port"),
            "--shards" => a.shards = parse(&val("--shards"), "--shards"),
            "--schedules" => a.schedules = parse(&val("--schedules"), "--schedules"),
            "--seed" => a.seed = parse(&val("--seed"), "--seed"),
            "--max-restarts" => a.max_restarts = parse(&val("--max-restarts"), "--max-restarts"),
            "--replay" => a.replay = val("--replay"),
            "--summary" => a.summary = Some(PathBuf::from(val("--summary"))),
            "--serve-bin" => a.serve_bin = Some(PathBuf::from(val("--serve-bin"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    if a.shards < 2 {
        usage("--shards needs at least 2 (a fleet of one cannot fail over)");
    }
    a
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| usage(&format!("bad value '{s}' for {flag}")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("torture: {err}");
    }
    eprintln!(
        "usage: torture [--port P] [--shards N] [--schedules N] [--seed S] [--max-restarts N] \
         [--replay FILE] [--summary FILE] [--serve-bin PATH]"
    );
    std::process::exit(2);
}

fn gate(cond: bool, schedule: u64, what: &str) {
    if !cond {
        eprintln!("torture: GATE FAILED (schedule {schedule}): {what}");
        teardown_and_exit(1);
    }
}

fn fatal(msg: &str) -> ! {
    eprintln!("torture: {msg}");
    teardown_and_exit(1);
}

/// Ops whose responses must be byte-identical between a standalone
/// server and the fleet, under every schedule.
fn is_work_plane(req: &Request) -> bool {
    matches!(
        req,
        Request::Simulate { .. }
            | Request::SimulateBatch { .. }
            | Request::Lint { .. }
            | Request::Compare { .. }
            | Request::Sleep { .. }
    )
}

/// Replays `frames` once against `addr`; returns `id -> encoded response
/// frame`, retrying retryable answers (overload, fleet_unavailable
/// during a crash window) until a terminal one arrives.
fn replay_once(addr: &str, frames: &[String]) -> HashMap<u64, String> {
    let mut out = HashMap::new();
    let mut client =
        Client::connect(addr).unwrap_or_else(|e| fatal(&format!("connect {addr}: {e}")));
    for frame in frames {
        let mut attempts = 0u32;
        let (id, resp) = loop {
            match client.request_raw(frame) {
                Ok((_, resp)) if resp.is_retryable() && attempts < 200 => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(resp.retry_after_ms().unwrap_or(10)));
                }
                Ok(ok) => break ok,
                Err(e) => fatal(&format!("replay frame failed against {addr}: {e}")),
            }
        };
        out.insert(id, encode_response(id, &resp));
    }
    out
}

fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let until = Instant::now() + deadline;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= until {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Expected terminal class of a plan — a pure function of the plan, so
/// it is safe to put in the deterministic summary. `flap` plans must end
/// evicted; `error` plans must be survived without a restart; `crash`
/// plans must end converged with every shard alive (the abort fires at
/// most once — whether its site collects enough hits to fire at all can
/// depend on ring placement, so the gate is convergence, not a restart
/// count).
fn mode_of(plan: &FailPlan) -> &'static str {
    match (&plan.action, plan.every_hit) {
        (Action::Abort, true) => "flap",
        (Action::InjectError, _) => "error",
        _ => "crash",
    }
}

/// Same generator as the failpoint crate's plan derivation, used here on
/// an independent stream to pick the victim shard.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One torture schedule: fresh fleet, one armed victim, replay, gates.
/// Returns the deterministic summary line.
#[allow(clippy::too_many_arguments)]
fn run_schedule(
    args: &Args,
    idx: u64,
    frames: &[String],
    work_ids: &[u64],
    reference: &HashMap<u64, String>,
    serve_bin: &std::path::Path,
) -> String {
    let seed = args.seed.wrapping_add(idx);
    let plan = FailPlan::from_seed(seed, CRASH_SITES, EIO_SITES, FLAP_SITE);
    let mode = mode_of(&plan);
    let mut victim_state = seed ^ 0xd6e8_feb8_6659_fd93;
    let victim = (splitmix64(&mut victim_state) % args.shards as u64) as usize;
    let base_port = args.port + (idx as u16) * (args.shards as u16 + 1);
    let snapshot_dir =
        std::env::temp_dir().join(format!("revel-torture-{}-{idx}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot_dir);

    eprintln!(
        "torture: schedule {idx}: seed {seed}, victim shard {victim}, plan '{}' ({mode}), \
         ports {base_port}..{}",
        plan.spec(),
        base_port + args.shards as u16
    );

    let fleet_cfg = FleetConfig {
        shards: args.shards,
        host: "127.0.0.1".to_string(),
        base_port,
        workers: 2,
        queue_capacity: 32,
        snapshot_dir: Some(snapshot_dir.clone()),
        cache_capacity: None,
        chaos_rate: 0.0,
        chaos_seed: 0,
        max_restarts: args.max_restarts,
        failpoints: Some(ShardFailpoints {
            shard: victim,
            spec: plan.spec(),
            every_spawn: plan.every_hit,
        }),
        binary: serve_bin.to_path_buf(),
    };
    let mut router = Server::bind(&ServerConfig {
        addr: format!("127.0.0.1:{base_port}"),
        workers: 4,
        queue_capacity: 64,
        ..Default::default()
    })
    .unwrap_or_else(|e| fatal(&format!("bind router on port {base_port}: {e}")));
    let fleet = Arc::new(Fleet::new(&fleet_cfg.host, &fleet_cfg.shard_ports()));
    let supervisor = Supervisor::start(Arc::clone(&fleet), fleet_cfg)
        .unwrap_or_else(|e| fatal(&format!("spawn shards: {e}")));
    *SUPERVISOR.lock().expect("supervisor slot") = Some(supervisor);
    router.set_fleet(Arc::clone(&fleet));
    let router_addr = format!("127.0.0.1:{base_port}");
    let router_thread = std::thread::spawn(move || router.serve().expect("router serves"));

    // A flap victim dies on its first probe reply, every spawn — it can
    // never be part of the healthy set.
    let expect_up = if mode == "flap" { args.shards - 1 } else { args.shards };
    gate(
        fleet.wait_alive(expect_up, SETTLE),
        idx,
        &format!("{expect_up} shard(s) probed healthy at boot"),
    );

    // Invariant 1, passes A (cold) and B (warm): byte-identity to the
    // standalone reference across whatever the plan does mid-replay.
    for pass in ["cold", "warm"] {
        let got = replay_once(&router_addr, frames);
        gate(
            work_ids.iter().all(|id| got.get(id) == reference.get(id)),
            idx,
            &format!("{pass} replay byte-identical to the standalone server"),
        );
    }

    // Invariant 3: the fleet settles into the mode's terminal state.
    match mode {
        "flap" => {
            gate(
                wait_for(SETTLE, || fleet.is_evicted(victim)),
                idx,
                "flapping victim permanently evicted by the restart circuit",
            );
            let roster = fleet.roster();
            gate(roster[victim].evicted, idx, "roster reports the victim evicted");
            gate(
                roster[victim].restarts == u64::from(args.max_restarts),
                idx,
                "the circuit opened after exactly max_restarts respawns",
            );
        }
        "error" => {
            // An injected io::Error must never kill anything: appends are
            // best-effort, lookups degrade to a miss.
            gate(fleet.is_alive(victim), idx, "error-plan victim still alive");
            gate(!fleet.is_evicted(victim), idx, "error-plan victim not evicted");
            gate(fleet.restarts(victim) == 0, idx, "error-plan victim survived without a restart");
        }
        _ => {
            // Crash plans: the abort fires at most once, so the victim
            // (whether or not its site collected enough hits to die)
            // must end alive, un-evicted, with at most one restart.
            gate(
                wait_for(SETTLE, || fleet.is_alive(victim)),
                idx,
                "crash-plan victim alive after the schedule",
            );
            gate(!fleet.is_evicted(victim), idx, "crash-plan victim not evicted");
            gate(fleet.restarts(victim) <= 1, idx, "a one-shot abort respawns at most once");
        }
    }

    // Invariant 2: when the victim actually died and came back, its disk
    // tier must be serving sane state — recovered entries and structured
    // cold starts only. Gate 1's pass C (below) proves no torn record
    // ever changes an answer; here we prove the tier itself reopened.
    let restarts = fleet.restarts(victim);
    if mode != "flap" && restarts > 0 {
        let shard_addr = format!("127.0.0.1:{}", fleet.shard_port(victim).expect("victim port"));
        let mut direct = Client::connect(&shard_addr)
            .unwrap_or_else(|e| fatal(&format!("connect respawned victim: {e}")));
        match direct.request(&Request::Stats) {
            Ok(Response::Stats { engine, .. }) => {
                eprintln!(
                    "torture: schedule {idx}: victim respawned ({restarts} restart(s)); disk \
                     tier: {} warm entr{}, {} cold start(s)",
                    engine.warm_start_entries,
                    if engine.warm_start_entries == 1 { "y" } else { "ies" },
                    engine.disk_cold_starts
                );
            }
            other => gate(false, idx, &format!("respawned victim answers stats (got {other:?})")),
        }
    } else {
        eprintln!("torture: schedule {idx}: victim restarts observed: {restarts}");
    }

    // Pass C: after convergence, the settled fleet (respawned victim,
    // warm disk tiers, or reduced ring) still answers byte-identically.
    let settled = replay_once(&router_addr, frames);
    gate(
        work_ids.iter().all(|id| settled.get(id) == reference.get(id)),
        idx,
        "settled replay byte-identical to the standalone server",
    );

    // Teardown: drain the router, reap the shards, drop the schedule's
    // disk state.
    let mut control =
        Client::connect(&router_addr).unwrap_or_else(|e| fatal(&format!("connect router: {e}")));
    let _ = control.request(&Request::Shutdown);
    router_thread.join().expect("router thread");
    if let Some(sup) = SUPERVISOR.lock().expect("supervisor slot").take() {
        sup.shutdown();
    }
    let _ = std::fs::remove_dir_all(&snapshot_dir);

    format!(
        "torture: schedule={idx} seed={seed} victim={victim} mode={mode} plan={} \
         shards={} max_restarts={} outcome=ok",
        plan.spec(),
        args.shards,
        args.max_restarts
    )
}

fn main() {
    let args = parse_args();
    let frames = {
        let file = std::fs::File::open(&args.replay)
            .unwrap_or_else(|e| fatal(&format!("cannot open {}: {e}", args.replay)));
        read_all_frames(std::io::BufReader::new(file)).unwrap_or_else(|e| fatal(&e.to_string()))
    };
    let decoded: Vec<(u64, Request)> = frames
        .iter()
        .map(|f| decode_request(f).unwrap_or_else(|e| fatal(&format!("bad replay frame: {e}"))))
        .collect();
    let work_ids: Vec<u64> =
        decoded.iter().filter(|(_, r)| is_work_plane(r)).map(|(id, _)| *id).collect();
    if work_ids.is_empty() {
        fatal("replay file holds no work-plane frames");
    }
    let serve_bin = args.serve_bin.clone().unwrap_or_else(|| {
        let mut p = std::env::current_exe().expect("own path");
        p.set_file_name("revel_serve");
        p
    });

    // Ground truth once: a standalone in-process server, the pre-fleet
    // serving path every schedule must match byte for byte.
    let standalone = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 32,
        ..Default::default()
    })
    .unwrap_or_else(|e| fatal(&format!("bind standalone: {e}")));
    let standalone_addr = standalone.local_addr().expect("local addr").to_string();
    let standalone_thread =
        std::thread::spawn(move || standalone.serve().expect("standalone serves"));
    let reference = replay_once(&standalone_addr, &frames);
    let mut c = Client::connect(&standalone_addr).expect("connect for shutdown");
    let _ = c.request(&Request::Shutdown);
    standalone_thread.join().expect("standalone thread");

    let mut summary = Vec::with_capacity(args.schedules as usize);
    for idx in 0..args.schedules {
        summary.push(run_schedule(&args, idx, &frames, &work_ids, &reference, &serve_bin));
    }

    for line in &summary {
        println!("{line}");
    }
    if let Some(path) = &args.summary {
        std::fs::write(path, summary.join("\n") + "\n")
            .unwrap_or_else(|e| fatal(&format!("write {}: {e}", path.display())));
    }
    println!(
        "torture: PASS — {} schedule(s), {} shard(s) each, zero invariant violations",
        args.schedules, args.shards
    );
}
