//! Load generator and replay client for `revel_serve`.
//!
//! ```text
//! # closed-loop load over the 42-cell evaluation grid, 4 connections, 10 s
//! revel_client --connections 4 --duration 10
//!
//! # rate-paced: 50 requests/second total across 8 connections
//! revel_client --connections 8 --rps 50 --duration 30
//!
//! # replay a canned JSONL request file twice (CI smoke)
//! revel_client --replay ci/smoke.jsonl --passes 2 --assert-hit-rate 0.9
//! ```
//!
//! Prints a p50/p90/p99 latency histogram plus the server-reported engine
//! cache hit rate over the measurement window (from `stats` deltas).
//! `--assert-p99-ms` / `--assert-hit-rate` turn the report into a gate:
//! exit 1 when the floor is missed.

use revel_bench::grid;
use revel_serve::client::{fmt_ms, percentile, Client};
use revel_serve::protocol::{read_all_frames, EngineStatsWire, Request, Response};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    connections: usize,
    rps: f64,
    duration_s: f64,
    replay: Option<String>,
    passes: usize,
    deadline_ms: Option<u64>,
    assert_p99_ms: Option<f64>,
    assert_hit_rate: Option<f64>,
}

fn parse_args() -> Args {
    let mut a = Args {
        addr: String::new(),
        connections: 4,
        rps: 0.0,
        duration_s: 10.0,
        replay: None,
        passes: 1,
        deadline_ms: None,
        assert_p99_ms: None,
        assert_hit_rate: None,
    };
    let mut host = "127.0.0.1".to_string();
    let mut port = 7411u16;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val =
            |name: &str| args.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match flag.as_str() {
            "--host" => host = val("--host"),
            "--port" => port = parse(&val("--port"), "--port"),
            "--connections" => a.connections = parse(&val("--connections"), "--connections"),
            "--rps" => a.rps = parse(&val("--rps"), "--rps"),
            "--duration" => a.duration_s = parse(&val("--duration"), "--duration"),
            "--replay" => a.replay = Some(val("--replay")),
            "--passes" => a.passes = parse(&val("--passes"), "--passes"),
            "--deadline-ms" => a.deadline_ms = Some(parse(&val("--deadline-ms"), "--deadline-ms")),
            "--assert-p99-ms" => {
                a.assert_p99_ms = Some(parse(&val("--assert-p99-ms"), "--assert-p99-ms"));
            }
            "--assert-hit-rate" => {
                a.assert_hit_rate = Some(parse(&val("--assert-hit-rate"), "--assert-hit-rate"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    a.addr = format!("{host}:{port}");
    a.connections = a.connections.max(1);
    a
}

#[derive(Default)]
struct Tally {
    latencies: Mutex<Vec<Duration>>,
    ok: AtomicU64,
    timed_out: AtomicU64,
    overloaded: AtomicU64,
    errors: AtomicU64,
}

impl Tally {
    fn record(&self, started: Instant, resp: &Response) {
        self.latencies.lock().expect("latency lock").push(started.elapsed());
        match resp {
            Response::Overloaded { .. } => self.overloaded.fetch_add(1, Ordering::Relaxed),
            Response::TimedOut { .. } => self.timed_out.fetch_add(1, Ordering::Relaxed),
            Response::Error { .. } => self.errors.fetch_add(1, Ordering::Relaxed),
            _ => self.ok.fetch_add(1, Ordering::Relaxed),
        };
    }
}

fn main() {
    let args = parse_args();
    let mut gate_failures: Vec<String> = Vec::new();

    // The measurement window is bracketed by server-side stats snapshots,
    // so the hit rate reported is *of this run's traffic only*.
    let mut control = Client::connect(&args.addr)
        .unwrap_or_else(|e| fatal(&format!("cannot connect to {}: {e}", args.addr)));
    let before = fetch_engine_stats(&mut control);

    let tally = Tally::default();
    let started = Instant::now();
    if let Some(path) = &args.replay {
        replay(&args, path, &tally);
    } else {
        grid_load(&args, &tally);
    }
    let wall = started.elapsed();

    let after = fetch_engine_stats(&mut control);

    let lat = tally.latencies.lock().expect("latency lock").clone();
    let (p50, p90, p99) = (percentile(&lat, 50.0), percentile(&lat, 90.0), percentile(&lat, 99.0));
    let total = lat.len() as u64;
    println!(
        "revel-client: {} request(s) in {:.2}s over {} connection(s)",
        total,
        wall.as_secs_f64(),
        args.connections
    );
    println!(
        "  outcomes: {} ok, {} timed_out, {} overloaded, {} error(s)",
        tally.ok.load(Ordering::Relaxed),
        tally.timed_out.load(Ordering::Relaxed),
        tally.overloaded.load(Ordering::Relaxed),
        tally.errors.load(Ordering::Relaxed),
    );
    println!("  latency: p50 {}  p90 {}  p99 {}", fmt_ms(p50), fmt_ms(p90), fmt_ms(p99));

    let d_hits = after.hits.saturating_sub(before.hits);
    let d_misses = after.misses.saturating_sub(before.misses);
    let lookups = d_hits + d_misses;
    let hit_rate = if lookups == 0 { 0.0 } else { d_hits as f64 / lookups as f64 };
    println!(
        "  engine cache over this window: {d_hits} hit(s), {d_misses} miss(es) \
         (hit rate {hit_rate:.3}); {} eviction(s) total",
        after.evictions
    );

    if let Some(floor) = args.assert_hit_rate {
        if hit_rate < floor {
            gate_failures.push(format!("hit rate {hit_rate:.3} below floor {floor:.3}"));
        }
    }
    if let Some(ceil_ms) = args.assert_p99_ms {
        let p99_ms = p99.as_secs_f64() * 1e3;
        if p99_ms > ceil_ms {
            gate_failures.push(format!("p99 {p99_ms:.3}ms above ceiling {ceil_ms:.3}ms"));
        }
    }
    if tally.errors.load(Ordering::Relaxed) > 0 {
        gate_failures.push(format!(
            "{} request(s) answered with errors",
            tally.errors.load(Ordering::Relaxed)
        ));
    }
    if !gate_failures.is_empty() {
        for g in &gate_failures {
            eprintln!("revel-client: GATE FAILED: {g}");
        }
        std::process::exit(1);
    }
}

fn fetch_engine_stats(c: &mut Client) -> EngineStatsWire {
    match c.request(&Request::Stats) {
        Ok(Response::Stats { engine, .. }) => engine,
        Ok(other) => fatal(&format!("stats request got {other:?}")),
        Err(e) => fatal(&format!("stats request failed: {e}")),
    }
}

/// Closed-loop (or rate-paced) load over the evaluation grid, round-robin
/// across cells, fanned over `connections` client threads.
fn grid_load(args: &Args, tally: &Tally) {
    let cells = grid::evaluation_grid();
    let reqs: Vec<Request> = cells
        .iter()
        .map(|c| Request::Simulate {
            bench: c.bench.name().to_string(),
            params: c.bench.params(),
            arch: c.arch.to_string(),
            deadline_ms: args.deadline_ms,
            max_cycles: None,
            reference_stepper: false,
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs_f64(args.duration_s);
    // Each connection paces itself so the *total* offered rate is --rps.
    let per_conn_interval = if args.rps > 0.0 {
        Some(Duration::from_secs_f64(args.connections as f64 / args.rps))
    } else {
        None
    };
    std::thread::scope(|s| {
        for conn in 0..args.connections {
            let reqs = &reqs;
            s.spawn(move || {
                let mut client = match Client::connect(&args.addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("revel-client: connection {conn}: {e}");
                        tally.errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                // Stagger starting cells so connections don't convoy.
                let mut i = conn;
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    match client.request(&reqs[i % reqs.len()]) {
                        Ok(resp) => tally.record(t0, &resp),
                        Err(e) => {
                            eprintln!("revel-client: connection {conn}: {e}");
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    i += args.connections;
                    if let Some(interval) = per_conn_interval {
                        let next = t0 + interval;
                        let now = Instant::now();
                        if next > now {
                            std::thread::sleep(next - now);
                        }
                    }
                }
            });
        }
    });
}

/// Replays a canned JSONL request file `passes` times, requests dealt
/// round-robin across the connections within each pass.
fn replay(args: &Args, path: &str, tally: &Tally) {
    let file = std::fs::File::open(path)
        .unwrap_or_else(|e| fatal(&format!("cannot open replay file {path}: {e}")));
    let frames =
        read_all_frames(std::io::BufReader::new(file)).unwrap_or_else(|e| fatal(&e.to_string()));
    if frames.is_empty() {
        fatal(&format!("replay file {path} holds no frames"));
    }
    for _pass in 0..args.passes.max(1) {
        std::thread::scope(|s| {
            for conn in 0..args.connections {
                let frames = &frames;
                s.spawn(move || {
                    let mut client = match Client::connect(&args.addr) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("revel-client: connection {conn}: {e}");
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                    let mut i = conn;
                    while i < frames.len() {
                        let t0 = Instant::now();
                        match client.request_raw(&frames[i]) {
                            Ok((_id, resp)) => tally.record(t0, &resp),
                            Err(e) => {
                                eprintln!("revel-client: connection {conn}: {e}");
                                tally.errors.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                        }
                        i += args.connections;
                    }
                });
            }
        });
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| usage(&format!("bad value '{s}' for {flag}")))
}

fn fatal(msg: &str) -> ! {
    eprintln!("revel-client: {msg}");
    std::process::exit(1);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("revel-client: {err}");
    }
    eprintln!(
        "usage: revel_client [--host H] [--port P] [--connections N] [--rps R] [--duration S]\n\
         \x20                 [--replay FILE] [--passes N] [--deadline-ms MS]\n\
         \x20                 [--assert-p99-ms MS] [--assert-hit-rate F]"
    );
    std::process::exit(2);
}
