//! Load generator and replay client for `revel_serve`.
//!
//! ```text
//! # closed-loop load over the 42-cell evaluation grid, 4 connections, 10 s
//! revel_client --connections 4 --duration 10
//!
//! # rate-paced: 50 requests/second total across 8 connections
//! revel_client --connections 8 --rps 50 --duration 30
//!
//! # replay a canned JSONL request file twice (CI smoke)
//! revel_client --replay ci/smoke.jsonl --passes 2 --assert-hit-rate 0.9
//!
//! # batched: each grid request simulates 16 seeded datasets of its cell
//! revel_client --connections 2 --duration 5 --batch 16
//!
//! # scripted storm: phased scenario file with pinned SLOs (exit 1 on miss)
//! revel_client --scenario ci/scenarios/thundering_herd.json --seed 7
//! ```
//!
//! Prints a p50/p90/p99 latency histogram plus the server-reported engine
//! cache hit rate over the measurement window (from `stats` deltas).
//! `--assert-p99-ms` / `--assert-hit-rate` / `--assert-success-rate` turn
//! the report into a gate: exit 1 when the floor is missed.
//!
//! Rate-paced mode (`--rps`) is open-loop and coordinated-omission
//! correct: every request has an *intended* send time on an absolute
//! arrival grid fixed at start, latency is measured from that intended
//! time, and sends that slip more than 1 ms behind the grid are counted
//! as late (reported, so a saturated generator is visible instead of
//! silently under-offering).
//!
//! Against a `--chaos` server, run with `--retries N`: each connection
//! drives a self-healing `RetryClient` (capped exponential backoff with
//! deterministic jitter, consecutive-failure circuit breaker) so injected
//! faults surface as retries, not failed requests. `--seed` pins every
//! random choice end-to-end — scenario arrivals, workload-mix sampling,
//! and retry jitter (unless `--retry-seed` overrides the latter).

use revel_bench::grid;
use revel_serve::client::{
    fmt_ms, percentile, CircuitBreaker, Client, ClientError, RetryClient, RetryPolicy,
};
use revel_serve::protocol::{decode_request, read_all_frames, EngineStatsWire, Request, Response};
use revel_serve::scenario::{human_table, run, RunOptions};
use revel_traffic::scenario::Scenario;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A rate-paced send this far behind its intended grid slot counts as
/// late (mirrors the scenario engine's default `late_threshold_ms`).
const LATE_THRESHOLD: Duration = Duration::from_millis(1);

struct Args {
    addr: String,
    connections: usize,
    rps: f64,
    duration_s: f64,
    batch: usize,
    replay: Option<String>,
    scenario: Option<String>,
    seed: Option<u64>,
    dump_requests: Option<String>,
    passes: usize,
    deadline_ms: Option<u64>,
    retries: u32,
    backoff_base_ms: u64,
    backoff_cap_ms: u64,
    retry_seed: Option<u64>,
    breaker_threshold: u32,
    breaker_cooldown_ms: u64,
    assert_p99_ms: Option<f64>,
    assert_hit_rate: Option<f64>,
    assert_success_rate: Option<f64>,
    assert_trace_hits: Option<u64>,
    assert_evictions: Option<u64>,
}

impl Args {
    /// The retry-jitter seed: `--retry-seed` wins, else `--seed` pins it
    /// too (one flag reproduces the whole run), else 0.
    fn jitter_seed(&self) -> u64 {
        self.retry_seed.or(self.seed).unwrap_or(0)
    }
}

fn parse_args() -> Args {
    let mut a = Args {
        addr: String::new(),
        connections: 4,
        rps: 0.0,
        duration_s: 10.0,
        batch: 1,
        replay: None,
        scenario: None,
        seed: None,
        dump_requests: None,
        passes: 1,
        deadline_ms: None,
        retries: 1,
        backoff_base_ms: 5,
        backoff_cap_ms: 500,
        retry_seed: None,
        breaker_threshold: 5,
        breaker_cooldown_ms: 200,
        assert_p99_ms: None,
        assert_hit_rate: None,
        assert_success_rate: None,
        assert_trace_hits: None,
        assert_evictions: None,
    };
    let mut host = "127.0.0.1".to_string();
    let mut port = 7411u16;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val =
            |name: &str| args.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match flag.as_str() {
            "--host" => host = val("--host"),
            "--port" => port = parse(&val("--port"), "--port"),
            "--connections" => a.connections = parse(&val("--connections"), "--connections"),
            "--rps" => a.rps = parse_float(&val("--rps"), "--rps", 0.0, f64::MAX),
            "--duration" => {
                a.duration_s = parse_float(&val("--duration"), "--duration", 0.0, f64::MAX)
            }
            "--batch" => a.batch = parse(&val("--batch"), "--batch"),
            "--replay" => a.replay = Some(val("--replay")),
            "--scenario" => a.scenario = Some(val("--scenario")),
            "--seed" => a.seed = Some(parse(&val("--seed"), "--seed")),
            "--dump-requests" => a.dump_requests = Some(val("--dump-requests")),
            "--passes" => a.passes = parse(&val("--passes"), "--passes"),
            "--deadline-ms" => a.deadline_ms = Some(parse(&val("--deadline-ms"), "--deadline-ms")),
            "--retries" => a.retries = parse(&val("--retries"), "--retries"),
            "--backoff-base-ms" => {
                a.backoff_base_ms = parse(&val("--backoff-base-ms"), "--backoff-base-ms");
            }
            "--backoff-cap-ms" => {
                a.backoff_cap_ms = parse(&val("--backoff-cap-ms"), "--backoff-cap-ms");
            }
            "--retry-seed" => a.retry_seed = Some(parse(&val("--retry-seed"), "--retry-seed")),
            "--breaker-threshold" => {
                a.breaker_threshold = parse(&val("--breaker-threshold"), "--breaker-threshold");
            }
            "--breaker-cooldown-ms" => {
                a.breaker_cooldown_ms =
                    parse(&val("--breaker-cooldown-ms"), "--breaker-cooldown-ms");
            }
            "--assert-p99-ms" => {
                a.assert_p99_ms =
                    Some(parse_float(&val("--assert-p99-ms"), "--assert-p99-ms", 0.0, f64::MAX));
            }
            "--assert-hit-rate" => {
                a.assert_hit_rate =
                    Some(parse_float(&val("--assert-hit-rate"), "--assert-hit-rate", 0.0, 1.0));
            }
            "--assert-success-rate" => {
                a.assert_success_rate = Some(parse_float(
                    &val("--assert-success-rate"),
                    "--assert-success-rate",
                    0.0,
                    1.0,
                ));
            }
            "--assert-trace-hits" => {
                a.assert_trace_hits =
                    Some(parse(&val("--assert-trace-hits"), "--assert-trace-hits"));
            }
            "--assert-evictions" => {
                a.assert_evictions = Some(parse(&val("--assert-evictions"), "--assert-evictions"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    a.addr = format!("{host}:{port}");
    a.connections = a.connections.max(1);
    if a.batch == 0 {
        usage("--batch needs at least 1 dataset lane");
    }
    a
}

/// Parses a float flag, rejecting non-finite values and anything outside
/// `[min, max]` **at parse time** — a NaN that reaches the percentile or
/// gate math would otherwise report nonsense (NaN comparisons are all
/// false, so `hit_rate < NaN` silently passes every gate).
fn parse_float(s: &str, flag: &str, min: f64, max: f64) -> f64 {
    let v: f64 = s.parse().unwrap_or_else(|_| usage(&format!("bad value '{s}' for {flag}")));
    if !v.is_finite() || v < min || v > max {
        let bound =
            if max == f64::MAX { format!(">= {min}") } else { format!("in [{min}, {max}]") };
        usage(&format!("{flag} must be finite and {bound}, got '{s}'"));
    }
    v
}

#[derive(Default)]
struct Tally {
    latencies: Mutex<Vec<Duration>>,
    ok: AtomicU64,
    timed_out: AtomicU64,
    overloaded: AtomicU64,
    errors: AtomicU64,
    retries: AtomicU64,
    breaker_opens: AtomicU64,
    late_sends: AtomicU64,
}

impl Tally {
    fn record(&self, started: Instant, resp: &Response) {
        self.latencies.lock().expect("latency lock").push(started.elapsed());
        match resp {
            Response::Overloaded { .. } => self.overloaded.fetch_add(1, Ordering::Relaxed),
            Response::TimedOut { .. } => self.timed_out.fetch_add(1, Ordering::Relaxed),
            Response::Error { .. } => self.errors.fetch_add(1, Ordering::Relaxed),
            _ => self.ok.fetch_add(1, Ordering::Relaxed),
        };
    }

    fn total(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
            + self.timed_out.load(Ordering::Relaxed)
            + self.overloaded.load(Ordering::Relaxed)
            + self.errors.load(Ordering::Relaxed)
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.scenario {
        scenario_mode(&args, path);
    }
    let mut gate_failures: Vec<String> = Vec::new();

    // The measurement window is bracketed by server-side stats snapshots,
    // so the hit rate reported is *of this run's traffic only*.
    let mut control = Client::connect(&args.addr)
        .unwrap_or_else(|e| fatal(&format!("cannot connect to {}: {e}", args.addr)));
    let before = fetch_engine_stats(&mut control);

    let tally = Tally::default();
    let started = Instant::now();
    if let Some(path) = &args.replay {
        replay(&args, path, &tally);
    } else {
        grid_load(&args, &tally);
    }
    let wall = started.elapsed();

    let after = fetch_engine_stats(&mut control);

    let lat = tally.latencies.lock().expect("latency lock").clone();
    let (p50, p90, p99) = (percentile(&lat, 50.0), percentile(&lat, 90.0), percentile(&lat, 99.0));
    let total = tally.total();
    println!(
        "revel-client: {} request(s) in {:.2}s over {} connection(s)",
        total,
        wall.as_secs_f64(),
        args.connections
    );
    println!(
        "  outcomes: {} ok, {} timed_out, {} overloaded, {} error(s)",
        tally.ok.load(Ordering::Relaxed),
        tally.timed_out.load(Ordering::Relaxed),
        tally.overloaded.load(Ordering::Relaxed),
        tally.errors.load(Ordering::Relaxed),
    );
    let success_rate =
        if total == 0 { 0.0 } else { tally.ok.load(Ordering::Relaxed) as f64 / total as f64 };
    println!(
        "  self-healing: {} retry(ies), {} breaker open(s), success rate {success_rate:.3}",
        tally.retries.load(Ordering::Relaxed),
        tally.breaker_opens.load(Ordering::Relaxed),
    );
    println!("  latency: p50 {}  p90 {}  p99 {}", fmt_ms(p50), fmt_ms(p90), fmt_ms(p99));
    if args.rps > 0.0 {
        // Open-loop honesty counter: sends that slipped behind the
        // absolute arrival grid. Latency is measured from the *intended*
        // slot either way (coordinated-omission correction), so late
        // sends inflate the tail instead of hiding it.
        println!(
            "  open-loop pacing: {} send(s) more than {}ms behind the arrival grid",
            tally.late_sends.load(Ordering::Relaxed),
            LATE_THRESHOLD.as_millis(),
        );
    }

    let d_hits = after.hits.saturating_sub(before.hits);
    let d_misses = after.misses.saturating_sub(before.misses);
    let d_evictions = after.evictions.saturating_sub(before.evictions);
    let lookups = d_hits + d_misses;
    let hit_rate = if lookups == 0 { 0.0 } else { d_hits as f64 / lookups as f64 };
    println!(
        "  engine cache over this window: {d_hits} hit(s), {d_misses} miss(es) \
         (hit rate {hit_rate:.3}); {d_evictions} eviction(s) in window, {} total",
        after.evictions
    );
    let d_disk_hits = after.disk_hits.saturating_sub(before.disk_hits);
    if after.warm_start_entries > 0 || d_disk_hits > 0 {
        println!(
            "  persistent tier over this window: {d_disk_hits} disk hit(s); \
             {} warm-start entr(ies), {} cold start(s) total",
            after.warm_start_entries, after.disk_cold_starts
        );
    }

    // Batched requests are served by the timing-trace cache, not the run
    // cache, so their reuse shows up here rather than in the hit rate.
    let d_trace_hits = after.trace_hits.saturating_sub(before.trace_hits);
    let d_replays = after.batched_replays.saturating_sub(before.batched_replays);
    println!(
        "  batched trace cache over this window: {d_trace_hits} hit(s), \
         {d_replays} lane replay(s)"
    );

    if let Some(floor) = args.assert_hit_rate {
        if hit_rate < floor {
            gate_failures.push(format!("hit rate {hit_rate:.3} below floor {floor:.3}"));
        }
    }
    if let Some(floor) = args.assert_trace_hits {
        if d_trace_hits < floor {
            gate_failures.push(format!("{d_trace_hits} trace hit(s) below floor {floor}"));
        }
    }
    if let Some(floor) = args.assert_evictions {
        // Pins eviction behavior against a deliberately small
        // --cache-capacity server: the bounded cache must actually evict.
        if d_evictions < floor {
            gate_failures.push(format!("{d_evictions} eviction(s) below floor {floor}"));
        }
    }
    if let Some(ceil_ms) = args.assert_p99_ms {
        let p99_ms = p99.as_secs_f64() * 1e3;
        if p99_ms > ceil_ms {
            gate_failures.push(format!("p99 {p99_ms:.3}ms above ceiling {ceil_ms:.3}ms"));
        }
    }
    if let Some(floor) = args.assert_success_rate {
        if success_rate < floor {
            gate_failures.push(format!("success rate {success_rate:.3} below floor {floor:.3}"));
        }
    } else if tally.errors.load(Ordering::Relaxed) > 0 {
        // Without an explicit success-rate floor, any error is fatal.
        // Under chaos + retries, the floor replaces this blanket gate (a
        // request can legitimately exhaust its retries).
        gate_failures.push(format!(
            "{} request(s) answered with errors",
            tally.errors.load(Ordering::Relaxed)
        ));
    }
    if !gate_failures.is_empty() {
        for g in &gate_failures {
            eprintln!("revel-client: GATE FAILED: {g}");
        }
        std::process::exit(1);
    }
}

fn fetch_engine_stats(c: &mut Client) -> EngineStatsWire {
    match c.request(&Request::Stats) {
        Ok(Response::Stats { engine, .. }) => engine,
        Ok(other) => fatal(&format!("stats request got {other:?}")),
        Err(e) => fatal(&format!("stats request failed: {e}")),
    }
}

/// Closed-loop (or rate-paced) load over the evaluation grid, round-robin
/// across cells, fanned over `connections` self-healing client threads.
/// Transport failures reconnect, retryable responses back off and retry
/// (per `--retries`), and a connection never aborts the run: errors are
/// tallied and the loop keeps offering load.
fn grid_load(args: &Args, tally: &Tally) {
    let cells = grid::evaluation_grid();
    let reqs: Vec<Request> = cells
        .iter()
        .map(|c| {
            if args.batch > 1 {
                // Batched mode: one request simulates `--batch` seeded
                // datasets of the cell (certified cells replay one timing
                // walk; the rest fall back to full per-seed simulations).
                Request::SimulateBatch {
                    bench: c.bench.name().to_string(),
                    params: c.bench.params(),
                    arch: c.arch.to_string(),
                    seeds: (1..=args.batch as u64).collect(),
                }
            } else {
                Request::Simulate {
                    bench: c.bench.name().to_string(),
                    params: c.bench.params(),
                    arch: c.arch.to_string(),
                    deadline_ms: args.deadline_ms,
                    max_cycles: None,
                    reference_stepper: false,
                    fault_seed: None,
                    fault_count: None,
                    fault_window: None,
                }
            }
        })
        .collect();
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(args.duration_s);
    // Open-loop mode: the arrival grid is fixed at start. Connection c's
    // k-th request is *intended* at start + (c + k·C)/rps, never
    // re-derived from when the previous reply landed — a stalled server
    // cannot shrink the offered load or flatter the tail (coordinated
    // omission). Latency is measured from the intended slot; sends that
    // slip behind the grid are counted.
    let open_loop = args.rps > 0.0;
    std::thread::scope(|s| {
        for conn in 0..args.connections {
            let reqs = &reqs;
            s.spawn(move || {
                // Per-connection jitter stream: deterministic for a fixed
                // --retry-seed (or --seed), decorrelated across connections.
                let policy = RetryPolicy {
                    max_attempts: args.retries.max(1),
                    base_ms: args.backoff_base_ms,
                    cap_ms: args.backoff_cap_ms,
                    seed: args.jitter_seed() ^ (conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                };
                let breaker = CircuitBreaker::new(
                    args.breaker_threshold,
                    Duration::from_millis(args.breaker_cooldown_ms),
                );
                let mut client = RetryClient::new(&args.addr, policy, breaker);
                // Stagger starting cells so connections don't convoy.
                let mut i = conn;
                let mut k = 0u64;
                while Instant::now() < deadline {
                    let intended = if open_loop {
                        let offset = (conn as f64 + k as f64 * args.connections as f64) / args.rps;
                        let slot = start + Duration::from_secs_f64(offset);
                        let now = Instant::now();
                        if slot > now {
                            std::thread::sleep(slot - now);
                        } else if now.duration_since(slot) > LATE_THRESHOLD {
                            tally.late_sends.fetch_add(1, Ordering::Relaxed);
                        }
                        slot
                    } else {
                        Instant::now()
                    };
                    match client.request(&reqs[i % reqs.len()]) {
                        Ok(resp) => tally.record(intended, &resp),
                        Err(ClientError::CircuitOpen) => {
                            // Fail-fast rejection: count it. Closed-loop
                            // lets the cooldown elapse instead of
                            // spinning; open-loop is paced by the grid.
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                            if !open_loop {
                                std::thread::sleep(Duration::from_millis(
                                    args.breaker_cooldown_ms.max(1),
                                ));
                            }
                        }
                        Err(e) => {
                            eprintln!("revel-client: connection {conn}: {e}");
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += args.connections;
                    k += 1;
                }
                tally.retries.fetch_add(client.retries(), Ordering::Relaxed);
                tally.breaker_opens.fetch_add(client.breaker().opened_total(), Ordering::Relaxed);
            });
        }
    });
}

/// `--scenario` mode: parse and validate the file, expand the plan under
/// `--seed` (or the file's seed), execute every phase, print one JSON
/// summary line per phase plus a human table, and exit nonzero listing
/// every violated SLO.
fn scenario_mode(args: &Args, path: &str) -> ! {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fatal(&format!("cannot read scenario file {path}: {e}")));
    let scenario = Scenario::parse(&text).unwrap_or_else(|e| fatal(&e.to_string()));
    let opts = RunOptions {
        addr: args.addr.clone(),
        seed_override: args.seed,
        dump_requests: args.dump_requests.is_some(),
    };
    let report = run(&scenario, &opts).unwrap_or_else(|e| fatal(&e));
    if let Some(dump_path) = &args.dump_requests {
        let mut dump = report.dump.join("\n");
        dump.push('\n');
        std::fs::write(dump_path, dump)
            .unwrap_or_else(|e| fatal(&format!("cannot write request dump {dump_path}: {e}")));
    }
    for (name, summary) in &report.phases {
        println!("{}", summary.json_line(&scenario.name, name));
    }
    println!("{}", report.total.json_line(&scenario.name, "all"));
    println!(
        "revel-client: scenario {} (seed {}): {} phase(s), {} request(s) offered",
        scenario.name,
        report.seed,
        report.phases.len(),
        report.total.offered,
    );
    print!("{}", human_table(&report.phases, &report.total));
    for note in &report.event_notes {
        println!("  event: {note}");
    }
    if report.violations.is_empty() {
        std::process::exit(0);
    }
    for v in &report.violations {
        eprintln!("revel-client: GATE FAILED: {v}");
    }
    std::process::exit(1);
}

/// Replays a canned JSONL request file `passes` times, requests dealt
/// round-robin across the connections within each pass.
fn replay(args: &Args, path: &str, tally: &Tally) {
    let file = std::fs::File::open(path)
        .unwrap_or_else(|e| fatal(&format!("cannot open replay file {path}: {e}")));
    let frames =
        read_all_frames(std::io::BufReader::new(file)).unwrap_or_else(|e| fatal(&e.to_string()));
    if frames.is_empty() {
        fatal(&format!("replay file {path} holds no frames"));
    }
    // With --retries > 1 the replay self-heals like the grid load does:
    // frames are decoded up front (a replay file is trusted input — a
    // frame that doesn't parse is a fatal config error, not load) and
    // driven through a RetryClient per connection.
    let decoded: Option<Vec<Request>> = if args.retries > 1 {
        Some(
            frames
                .iter()
                .map(|f| {
                    decode_request(f)
                        .unwrap_or_else(|e| fatal(&format!("replay frame does not parse: {e}")))
                        .1
                })
                .collect(),
        )
    } else {
        None
    };
    for _pass in 0..args.passes.max(1) {
        std::thread::scope(|s| {
            for conn in 0..args.connections {
                let (frames, decoded) = (&frames, &decoded);
                s.spawn(move || match decoded {
                    Some(reqs) => replay_retrying(args, conn, reqs, tally),
                    None => replay_raw(args, conn, frames, tally),
                });
            }
        });
    }
}

/// The legacy single-shot replay path: raw frames, byte-for-byte, no
/// retries — a transport error aborts the connection.
fn replay_raw(args: &Args, conn: usize, frames: &[String], tally: &Tally) {
    let mut client = match Client::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("revel-client: connection {conn}: {e}");
            tally.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut i = conn;
    while i < frames.len() {
        let t0 = Instant::now();
        match client.request_raw(&frames[i]) {
            Ok((_id, resp)) => tally.record(t0, &resp),
            Err(e) => {
                eprintln!("revel-client: connection {conn}: {e}");
                tally.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        i += args.connections;
    }
}

/// The self-healing replay path: same per-connection retry policy and
/// breaker as the grid load, so a chaos server's injected faults surface
/// as retries rather than failed requests.
fn replay_retrying(args: &Args, conn: usize, reqs: &[Request], tally: &Tally) {
    let policy = RetryPolicy {
        max_attempts: args.retries.max(1),
        base_ms: args.backoff_base_ms,
        cap_ms: args.backoff_cap_ms,
        seed: args.jitter_seed() ^ (conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    };
    let breaker = CircuitBreaker::new(
        args.breaker_threshold,
        Duration::from_millis(args.breaker_cooldown_ms),
    );
    let mut client = RetryClient::new(&args.addr, policy, breaker);
    let mut i = conn;
    while i < reqs.len() {
        let t0 = Instant::now();
        match client.request(&reqs[i]) {
            Ok(resp) => {
                tally.record(t0, &resp);
                i += args.connections;
            }
            Err(ClientError::CircuitOpen) => {
                tally.errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(args.breaker_cooldown_ms.max(1)));
                // Same frame again after the cooldown: a replay must
                // offer every request, even through an open circuit.
            }
            Err(e) => {
                eprintln!("revel-client: connection {conn}: {e}");
                tally.errors.fetch_add(1, Ordering::Relaxed);
                i += args.connections;
            }
        }
    }
    tally.retries.fetch_add(client.retries(), Ordering::Relaxed);
    tally.breaker_opens.fetch_add(client.breaker().opened_total(), Ordering::Relaxed);
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| usage(&format!("bad value '{s}' for {flag}")))
}

fn fatal(msg: &str) -> ! {
    eprintln!("revel-client: {msg}");
    std::process::exit(1);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("revel-client: {err}");
    }
    eprintln!(
        "usage: revel_client [--host H] [--port P] [--connections N] [--rps R] [--duration S]\n\
         \x20                 [--batch N] [--replay FILE] [--passes N] [--deadline-ms MS]\n\
         \x20                 [--scenario FILE] [--seed N] [--dump-requests FILE]\n\
         \x20                 [--retries N] [--backoff-base-ms MS] [--backoff-cap-ms MS]\n\
         \x20                 [--retry-seed SEED] [--breaker-threshold N] [--breaker-cooldown-ms MS]\n\
         \x20                 [--assert-p99-ms MS] [--assert-hit-rate F] [--assert-success-rate F]\n\
         \x20                 [--assert-trace-hits N] [--assert-evictions N]"
    );
    std::process::exit(2);
}
