//! The REVEL simulation server.
//!
//! ```text
//! revel_serve                          # 127.0.0.1:7411, one worker/core
//! revel_serve --port 7500 --workers 2 --queue 16 --cache-capacity 256
//! revel_serve --chaos 0.1 --chaos-seed 7   # inject worker faults (10%)
//! ```
//!
//! Speaks the JSON-lines protocol of `revel_serve::protocol` (DESIGN.md
//! §11). SIGTERM/ctrl-c (or a `shutdown` request) drains in-flight work
//! and exits 0 with a final stats line on stderr; a second signal during
//! the drain force-exits with code 3. `--chaos R` makes each worker
//! deterministically fail a fraction `R` of jobs (panic / delay /
//! fault-plan simulation) so client retry logic can be drilled.

use revel_serve::server::{Server, ServerConfig};
use revel_serve::signal;

fn main() {
    let mut cfg = ServerConfig::default();
    let mut host = "127.0.0.1".to_string();
    let mut port = 7411u16;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val =
            |name: &str| args.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match a.as_str() {
            "--host" => host = val("--host"),
            "--port" => port = parse(&val("--port"), "--port"),
            "--workers" => cfg.workers = parse(&val("--workers"), "--workers"),
            "--queue" => cfg.queue_capacity = parse(&val("--queue"), "--queue"),
            "--chaos" => cfg.chaos_rate = parse(&val("--chaos"), "--chaos"),
            "--chaos-seed" => cfg.chaos_seed = parse(&val("--chaos-seed"), "--chaos-seed"),
            "--cache-capacity" => {
                revel_core::engine::set_cache_capacity(parse(
                    &val("--cache-capacity"),
                    "--cache-capacity",
                ));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    cfg.addr = format!("{host}:{port}");

    signal::install();
    let server = match Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("revel-serve: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().map(|a| a.to_string()).unwrap_or(cfg.addr.clone());
    let chaos = if cfg.chaos_rate > 0.0 {
        format!(", chaos rate {} seed {}", cfg.chaos_rate, cfg.chaos_seed)
    } else {
        String::new()
    };
    eprintln!(
        "revel-serve: listening on {addr} ({} worker(s), queue capacity {}, cache capacity {}{chaos})",
        if cfg.workers == 0 { revel_core::engine::jobs() } else { cfg.workers },
        cfg.queue_capacity,
        revel_core::engine::cache_capacity(),
    );
    match server.serve() {
        Ok(stats) => {
            eprintln!("revel-serve: shutdown — {stats}");
            eprintln!("revel-serve: {}", revel_core::engine::stats());
        }
        Err(e) => {
            eprintln!("revel-serve: fatal: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| usage(&format!("bad value '{s}' for {flag}")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("revel-serve: {err}");
    }
    eprintln!(
        "usage: revel_serve [--host H] [--port P] [--workers N] [--queue N] [--cache-capacity N] \
         [--chaos RATE] [--chaos-seed SEED]"
    );
    std::process::exit(2);
}
