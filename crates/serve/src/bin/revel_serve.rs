//! The REVEL simulation server.
//!
//! ```text
//! revel_serve                          # 127.0.0.1:7411, one worker/core
//! revel_serve --port 7500 --workers 2 --queue 16 --cache-capacity 256
//! revel_serve --chaos 0.1 --chaos-seed 7   # inject worker faults (10%)
//! revel_serve --snapshot-dir /var/cache/revel   # persistent result cache
//! revel_serve --shards 3 --snapshot-dir dir    # scale-out fleet frontend
//! ```
//!
//! Speaks the JSON-lines protocol of `revel_serve::protocol` (DESIGN.md
//! §11). SIGTERM/ctrl-c (or a `shutdown` request) drains in-flight work
//! and exits 0 with a final stats line on stderr; a second signal during
//! the drain force-exits with code 3. `--chaos R` makes each worker
//! deterministically fail a fraction `R` of jobs (panic / delay /
//! fault-plan simulation) so client retry logic can be drilled.
//!
//! `--shards N` turns this process into a fleet frontend (DESIGN.md §15):
//! it spawns N single-shard copies of itself on the next N ports, routes
//! work to them by cache-key fingerprint, respawns any that die, and
//! drains them on shutdown. With `--snapshot-dir`, each shard keeps a
//! disk-backed result cache under `<dir>/shard-<i>` and warm-starts from
//! it after a crash.

use revel_serve::fleet::{Fleet, FleetConfig, Supervisor, DEFAULT_MAX_RESTARTS};
use revel_serve::server::{Server, ServerConfig};
use revel_serve::signal;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Fault-injection sites arm from the environment before anything
    // else runs, so a supervisor can target a shard it is about to
    // spawn (DESIGN.md §17).
    match revel_failpoint::init_from_env() {
        Ok(0) => {}
        Ok(n) => {
            eprintln!("revel-serve: {n} failpoint(s) armed from ${}", revel_failpoint::ENV_VAR)
        }
        Err(e) => {
            eprintln!("revel-serve: bad ${}: {e}", revel_failpoint::ENV_VAR);
            std::process::exit(2);
        }
    }
    let mut cfg = ServerConfig::default();
    let mut host = "127.0.0.1".to_string();
    let mut port = 7411u16;
    let mut shards = 0usize;
    let mut snapshot_dir: Option<PathBuf> = None;
    let mut cache_capacity: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val =
            |name: &str| args.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match a.as_str() {
            "--host" => host = val("--host"),
            "--port" => port = parse(&val("--port"), "--port"),
            "--workers" => cfg.workers = parse(&val("--workers"), "--workers"),
            "--queue" => cfg.queue_capacity = parse(&val("--queue"), "--queue"),
            "--chaos" => cfg.chaos_rate = parse(&val("--chaos"), "--chaos"),
            "--chaos-seed" => cfg.chaos_seed = parse(&val("--chaos-seed"), "--chaos-seed"),
            "--cache-capacity" => {
                cache_capacity = Some(parse(&val("--cache-capacity"), "--cache-capacity"));
            }
            "--conn-timeout" => {
                cfg.conn_timeout =
                    Duration::from_secs(parse(&val("--conn-timeout"), "--conn-timeout"));
            }
            "--shards" => shards = parse(&val("--shards"), "--shards"),
            "--shard-id" => cfg.shard_id = Some(parse(&val("--shard-id"), "--shard-id")),
            "--snapshot-dir" => snapshot_dir = Some(PathBuf::from(val("--snapshot-dir"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    cfg.addr = format!("{host}:{port}");
    if shards > 0 && cfg.shard_id.is_some() {
        usage("--shards (frontend) and --shard-id (worker) are mutually exclusive");
    }
    if let Some(cap) = cache_capacity {
        revel_core::engine::set_cache_capacity(cap);
    }
    // The frontend of a fleet never simulates; the disk tier belongs to
    // the shards (each gets its own subdirectory via the supervisor).
    if shards == 0 {
        if let Some(dir) = &snapshot_dir {
            match revel_core::engine::enable_persistence(dir) {
                Ok(warm) => {
                    eprintln!(
                        "revel-serve: persistent cache at {} ({} entr{} warm, {} cold start(s))",
                        dir.display(),
                        warm.entries,
                        if warm.entries == 1 { "y" } else { "ies" },
                        warm.cold_starts.len(),
                    );
                    for cold in &warm.cold_starts {
                        eprintln!("revel-serve: cold start: {cold}");
                    }
                }
                Err(e) => {
                    eprintln!("revel-serve: cannot open snapshot dir {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
    }

    signal::install();
    let mut server = match Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("revel-serve: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().map(|a| a.to_string()).unwrap_or(cfg.addr.clone());
    let bound_port = server.local_addr().map(|a| a.port()).unwrap_or(port);

    // Fleet mode: spawn the shards and route instead of executing.
    let supervisor = if shards > 0 {
        let fleet_cfg = FleetConfig {
            shards,
            host: host.clone(),
            base_port: bound_port,
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            snapshot_dir: snapshot_dir.clone(),
            cache_capacity,
            chaos_rate: cfg.chaos_rate,
            chaos_seed: cfg.chaos_seed,
            max_restarts: DEFAULT_MAX_RESTARTS,
            failpoints: None,
            binary: std::env::current_exe().unwrap_or_else(|e| {
                eprintln!("revel-serve: cannot locate own binary: {e}");
                std::process::exit(1);
            }),
        };
        let fleet = Arc::new(Fleet::new(&host, &fleet_cfg.shard_ports()));
        let sup = match Supervisor::start(Arc::clone(&fleet), fleet_cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("revel-serve: cannot spawn shards: {e}");
                std::process::exit(1);
            }
        };
        server.set_fleet(fleet);
        // Scenario runs script shard kills over the wire; the hook hands
        // them to this supervisor (SIGKILL + optional snapshot wipe).
        let sup = Arc::new(sup);
        let hook_sup = Arc::clone(&sup);
        server.set_kill_hook(Box::new(move |id, wipe| hook_sup.kill_shard(id, wipe)));
        Some(sup)
    } else {
        None
    };

    let chaos = if cfg.chaos_rate > 0.0 {
        format!(", chaos rate {} seed {}", cfg.chaos_rate, cfg.chaos_seed)
    } else {
        String::new()
    };
    let role = match (shards, cfg.shard_id) {
        (n, _) if n > 0 => format!(", fleet frontend over {n} shard(s)"),
        (_, Some(id)) => format!(", shard {id}"),
        _ => String::new(),
    };
    eprintln!(
        "revel-serve: listening on {addr} ({} worker(s), queue capacity {}, cache capacity {}{chaos}{role})",
        if cfg.workers == 0 { revel_core::engine::jobs() } else { cfg.workers },
        cfg.queue_capacity,
        revel_core::engine::cache_capacity(),
    );
    let result = server.serve();
    if let Some(sup) = supervisor {
        sup.shutdown();
    }
    match result {
        Ok(stats) => {
            // Fold the segment log into a compact snapshot while the exit
            // is clean; a crashed process just replays the log instead.
            if let Err(e) = revel_core::engine::persist_snapshot() {
                eprintln!("revel-serve: snapshot failed: {e}");
            }
            eprintln!("revel-serve: shutdown — {stats}");
            eprintln!("revel-serve: {}", revel_core::engine::stats());
        }
        Err(e) => {
            eprintln!("revel-serve: fatal: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| usage(&format!("bad value '{s}' for {flag}")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("revel-serve: {err}");
    }
    eprintln!(
        "usage: revel_serve [--host H] [--port P] [--workers N] [--queue N] [--cache-capacity N] \
         [--chaos RATE] [--chaos-seed SEED] [--conn-timeout SECS] [--shards N] [--shard-id I] \
         [--snapshot-dir DIR]"
    );
    std::process::exit(2);
}
